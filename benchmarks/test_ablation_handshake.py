"""Ablation: three-way vs four-way DATA handshake inside PCMAC.

Isolates the contribution of removing the ACK (the paper's answer to
sender-side ACK collisions) from the contribution of the control channel.
The four-way variant keeps everything else — power selection, admission,
PCN broadcasts — identical.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import markdown_table
from repro.experiments.ablations import run_handshake_ablation

from benchmarks.conftest import bench_scenario


def test_handshake_ablation(benchmark, scale_banner, capsys):
    results = benchmark.pedantic(
        lambda: run_handshake_ablation(bench_scenario()),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print(f"\n=== Ablation: three-way vs four-way DATA handshake {scale_banner}")
        print(
            markdown_table(
                ["handshake", "thr [kbps]", "delay [ms]", "PDR",
                 "ack timeouts", "implicit retx"],
                [
                    [
                        name,
                        round(r.throughput_kbps, 1),
                        round(r.avg_delay_ms, 1),
                        round(r.delivery_ratio, 3),
                        int(r.mac_totals["ack_timeouts"]),
                        int(r.mac_totals["implicit_retransmits"]),
                    ]
                    for name, r in results.items()
                ],
            )
        )
    three, four = results["three_way"], results["four_way"]
    # The defining structural difference: under the three-way handshake only
    # routing unicasts (RREPs) carry ACKs, so ACK traffic nearly vanishes;
    # under the four-way handshake every DATA is acknowledged.
    assert three.mac_totals["ack_sent"] < 0.2 * three.mac_totals["data_sent"]
    assert four.mac_totals["ack_sent"] > 0.5 * four.mac_totals["data_sent"]
    assert four.mac_totals["implicit_retransmits"] == 0
    # Removing the ACK shortens the exchange: delay should not get worse.
    assert three.avg_delay_ms <= four.avg_delay_ms * 1.10
    # Both remain functional protocols.
    assert three.delivery_ratio > 0.3
    assert four.delivery_ratio > 0.3

