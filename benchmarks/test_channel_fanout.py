"""Transmit fan-out benchmarks: brute scan vs spatial index vs SoA pass.

Measures the cost of ``Channel.transmit`` (fan-out plus dispatch of the
scheduled signal edges) over the shared ``bench_grid`` sweep — classic
sizes N ∈ {10, 50, 200, 800} plus the mega-scale columns N ∈ {2000,
10000} — for two placement regimes:

* **sparse** — 5·10⁻⁶ nodes/m²: a handful of radios per interference disk,
  the regime the spatial index targets (fan-out should approach O(degree)).
* **dense** — 5·10⁻⁵ nodes/m², the paper's Section IV density: most of the
  field is inside one 3×3 cell block, so the index's win comes from the
  epoch gain cache and the struct-of-arrays vector pass rather than culling.

Radios are inert sinks so the numbers isolate the channel (the radio state
machine is benchmarked separately in ``test_engine_microbench.py``).
``tools/bench_phy.py`` reuses these builders to dump the cross-PR
perf-trajectory file ``BENCH_phy.json``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from bench_grid import DENSITIES, MEGA_SIZES, SIZES, TX_SAMPLE

from repro.config import PhyConfig
from repro.mobility.static import StaticMobility
from repro.phy.channel import Channel
from repro.phy.frame import PhyFrame
from repro.phy.propagation import TwoRayGround
from repro.sim.kernel import Simulator

PHY = PhyConfig()


class _SinkRadio:
    """Inert duck-typed radio: absorbs signal edges at zero cost."""

    __slots__ = ("sim", "node_id", "mobility")

    def __init__(self, sim: Simulator, node_id: int, mobility) -> None:
        self.sim = sim
        self.node_id = node_id
        self.mobility = mobility

    @property
    def position(self):
        return self.mobility.position_at(self.sim.now)

    def begin_tx(self, frame) -> None:
        pass

    def signal_start(self, frame, power) -> None:
        pass

    def signal_end(self, frame_id) -> None:
        pass


def build_fanout_world(
    n: int,
    density: float,
    spatial: bool,
    seed: int = 7,
    *,
    fanout: str = "scalar",
    scheduler: str = "heap",
    pool_events: bool = False,
):
    """A static world of ``n`` sink radios at the given node density.

    The keyword knobs mirror the ``engine`` registry slot so the bench can
    A/B the vectorized core: ``fanout="soa"`` turns on the struct-of-arrays
    pass (requires ``spatial``), ``scheduler="calendar"`` swaps the kernel's
    binary heap for the calendar queue, ``pool_events`` recycles transient
    ``Event`` objects through the kernel freelist.
    """
    side = math.sqrt(n / density)
    sim = Simulator(scheduler=scheduler, pool_events=pool_events)
    chan = Channel(
        sim,
        TwoRayGround(),
        interference_floor_w=PHY.interference_floor_w,
        spatial_index=spatial,
        max_tx_power_w=PHY.max_power_w,
        fanout=fanout,
    )
    rng = np.random.default_rng(seed)
    radios = []
    for i in range(n):
        pos = (float(rng.uniform(0.0, side)), float(rng.uniform(0.0, side)))
        radio = _SinkRadio(sim, i, StaticMobility(pos))
        chan.attach(radio)
        radios.append(radio)
    return sim, chan, radios


def make_frame() -> PhyFrame:
    return PhyFrame(
        payload=None,
        size_bytes=100,
        bitrate_bps=2e6,
        plcp_s=0.0,
        tx_power_w=PHY.max_power_w,
        src=0,
        frame_id=1,
    )


def fanout_round(sim: Simulator, chan: Channel, srcs, frame: PhyFrame) -> None:
    """One measured unit: TX_SAMPLE transmissions plus edge dispatch."""
    for src in srcs:
        chan.transmit(src, frame)
    sim.run_until(sim.now + 1.0)


#: mode name -> (spatial_index, fanout) for the world builder.
MODES = {
    "brute": (False, "scalar"),
    "indexed": (True, "scalar"),
    "soa": (True, "soa"),
}


def build_mode_world(n: int, density: float, mode: str, seed: int = 7):
    """A fan-out world configured for one named bench mode."""
    spatial, fanout = MODES[mode]
    return build_fanout_world(n, density, spatial, seed, fanout=fanout)


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("placement", sorted(DENSITIES))
@pytest.mark.parametrize("n", SIZES)
def test_transmit_fanout(benchmark, n, placement, mode):
    sim, chan, radios = build_mode_world(n, DENSITIES[placement], mode)
    srcs = radios[:TX_SAMPLE]
    frame = make_frame()
    benchmark.group = f"fanout-{placement}-n{n}"
    benchmark(fanout_round, sim, chan, srcs, frame)


@pytest.mark.parametrize("mode", ("indexed", "soa"))
@pytest.mark.parametrize("placement", sorted(DENSITIES))
@pytest.mark.parametrize("n", MEGA_SIZES)
def test_transmit_fanout_mega(benchmark, n, placement, mode):
    """Mega-scale columns: spatial index vs the SoA vector pass.

    The brute O(N) scan is omitted here — at N = 10 000 it is the
    pathology the vectorized core exists to avoid, and timing it adds
    minutes without information (its classic-size scaling is linear).
    """
    sim, chan, radios = build_mode_world(n, DENSITIES[placement], mode)
    srcs = radios[:TX_SAMPLE]
    frame = make_frame()
    benchmark.group = f"fanout-mega-{placement}-n{n}"
    benchmark(fanout_round, sim, chan, srcs, frame)


@pytest.mark.parametrize("placement", sorted(DENSITIES))
@pytest.mark.parametrize("n", (10, 200))
def test_indexed_schedule_matches_brute(n, placement):
    """Correctness guard: the bench worlds obey the equivalence contract.

    Runs under ``--benchmark-disable`` too, so CI's smoke step exercises the
    builders and both fan-out paths even when timing is off.
    """
    from tests.phy.test_channel_equivalence import assert_equivalent

    side = math.sqrt(n / DENSITIES[placement])
    assert_equivalent(seed=7, n=n, side_m=side, mobile=False, tx_count=30)
