"""Power-level ↔ range table bench (paper Section IV's implicit table).

Recomputes the decode range of each of the paper's ten power levels under
the two-ray ground model and checks them against the published 40–250 m
values, plus the 250 m / 550 m decode/sensing geometry at maximum power.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import markdown_table
from repro.experiments.ranges import max_power_ranges, power_level_table


@pytest.fixture(scope="module")
def rows():
    return power_level_table()


def test_power_level_table_reproduction(rows, capsys):
    with capsys.disabled():
        print("\n=== Power level ↔ decode range table (paper Section IV)")
        print(
            markdown_table(
                ["P [mW]", "paper [m]", "ours [m]", "sense [m]", "err %"],
                [
                    [
                        r.power_mw,
                        r.paper_range_m,
                        round(r.computed_range_m, 1),
                        round(r.sensing_range_m, 1),
                        round(r.relative_error * 100, 1),
                    ]
                    for r in rows
                ],
            )
        )
    assert len(rows) == 10
    for row in rows:
        assert row.relative_error < 0.10, f"{row.power_mw} mW off the table"
    # All but the smallest level land within 1 %.
    assert sum(1 for r in rows if r.relative_error < 0.01) >= 9


def test_max_power_geometry():
    decode, sense = max_power_ranges()
    assert decode == pytest.approx(250.0, rel=0.001)
    assert sense == pytest.approx(550.0, rel=0.001)


def test_ranges_runtime_benchmark(benchmark):
    rows = benchmark(power_level_table)
    assert len(rows) == 10
