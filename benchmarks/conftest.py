"""Benchmark harness configuration.

Every figure/table bench runs at a reduced scale by default so the suite
finishes in CI time; set ``REPRO_FULL=1`` for the paper's full Section IV
configuration (50 nodes, 400 s, 8 loads — expect a long run).

The benches print the regenerated rows/series next to the digitised paper
values: pytest-benchmark's timing numbers measure the *simulator*, while the
printed tables carry the *reproduction*.
"""

from __future__ import annotations

import os

import pytest

from repro.config import MobilityConfig, ScenarioConfig, TrafficConfig

#: Full paper scale requested via the environment.
FULL_SCALE = os.environ.get("REPRO_FULL", "") not in ("", "0")


def bench_scenario(**overrides) -> ScenarioConfig:
    """The bench-scale (or full-scale) scenario configuration.

    The quick scale keeps the paper's *node density* (5·10⁻⁵ nodes/m²) on a
    smaller field — density, not node count, is what produces the
    asymmetric-link phenomenology the figures depend on.  The full scale is
    the paper's 50 nodes on 1000 m × 1000 m; its simulated horizon is 40 s
    rather than the paper's 400 s (documented in EXPERIMENTS.md — the
    protocols reach steady state within seconds).
    """
    if FULL_SCALE:
        defaults = dict(node_count=50, duration_s=40.0, seed=1)
        traffic = TrafficConfig(flow_count=10)
        mobility = MobilityConfig()
    else:
        defaults = dict(node_count=25, duration_s=25.0, seed=1)
        traffic = TrafficConfig(flow_count=6)
        mobility = MobilityConfig(field_width_m=707.0, field_height_m=707.0)
    defaults["traffic"] = traffic
    defaults["mobility"] = mobility
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def bench_loads() -> tuple[float, ...]:
    """Offered-load sweep points [kbps]."""
    if FULL_SCALE:
        return (300, 400, 500, 600, 700, 800, 900, 1000)
    return (300, 500, 700)


def bench_seeds() -> tuple[int, ...]:
    """Replication seeds."""
    return (1, 2, 3) if FULL_SCALE else (1, 2)


@pytest.fixture(scope="session")
def scale_banner() -> str:
    """Printable banner describing the active scale."""
    cfg = bench_scenario()
    return (
        f"[{'FULL' if FULL_SCALE else 'quick'} scale: {cfg.node_count} nodes, "
        f"{cfg.duration_s:.0f}s, {cfg.traffic.flow_count} flows, "
        f"loads={bench_loads()}, seeds={bench_seeds()}]"
    )
