"""Figure 8 bench: aggregate network throughput vs offered load.

Regenerates the paper's Figure 8 series for all four MAC protocols, prints
the paper-vs-measured table and ASCII chart, and asserts the reproduction's
*shape* claims:

* PCMAC achieves the highest mean throughput across the sweep (the paper's
  headline: ~8–10 % over basic 802.11 at saturation);
* at least one naive power-control scheme trails basic 802.11 — the
  asymmetric-link penalty;
* every protocol's delivered throughput stays below the offered load
  (sanity: nothing manufactures packets).

The pytest-benchmark timing covers the full sweep (the deliverable being
measured *is* the experiment harness).
"""

from __future__ import annotations

from repro.analysis.plotting import ascii_chart
from repro.analysis.report import paper_vs_measured
from repro.experiments.figure8 import FIGURE8_LOADS_KBPS, PAPER_FIG8_KBPS, PROTOCOLS
from repro.experiments.sweep import run_load_sweep

from benchmarks.conftest import bench_loads, bench_scenario, bench_seeds


def interp_paper(series, targets, xs=FIGURE8_LOADS_KBPS):
    """Linear interpolation of a digitised paper curve onto bench loads."""
    out = []
    for t in targets:
        t = min(max(t, xs[0]), xs[-1])
        for i in range(len(xs) - 1):
            if xs[i] <= t <= xs[i + 1]:
                frac = (t - xs[i]) / (xs[i + 1] - xs[i])
                out.append(series[i] + frac * (series[i + 1] - series[i]))
                break
    return out


def run_sweep():
    return run_load_sweep(
        bench_scenario(), PROTOCOLS, bench_loads(), seeds=bench_seeds()
    )


def test_figure8_reproduction(benchmark, scale_banner, capsys):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    loads = list(bench_loads())
    measured = sweep.throughput_series()
    paper = {p: interp_paper(PAPER_FIG8_KBPS[p], loads) for p in PROTOCOLS}

    with capsys.disabled():
        print(f"\n=== Figure 8: aggregate throughput vs offered load {scale_banner}")
        print(paper_vs_measured("load [kbps]", loads, paper, measured))
        chart = {p: (loads, measured[p]) for p in PROTOCOLS}
        print(ascii_chart(chart, title="Figure 8 (measured)",
                          x_label="offered load [kbps]",
                          y_label="throughput [kbps]"))

    mean = {p: sum(measured[p]) / len(measured[p]) for p in PROTOCOLS}
    # Headline claim: PCMAC on top (2 % slack for seed noise).
    assert mean["pcmac"] >= 0.98 * max(mean.values())
    assert mean["pcmac"] > mean["scheme1"]
    assert mean["pcmac"] > mean["scheme2"]
    # Asymmetric links make the naive schemes pay relative to basic.
    assert min(mean["scheme1"], mean["scheme2"]) < mean["basic"]
    # Conservation: delivered ≤ offered at every point.
    for p in PROTOCOLS:
        for load, thr in zip(loads, measured[p]):
            assert thr <= load * 1.02
