"""Ablation: power-control channel bandwidth (paper: 500 kbps).

The control rate sets the PCN airtime (48 bits + sync preamble) and with it
the collision window on the control channel.  Slower channels advertise
tolerances later and lose more PCNs; the paper's 500 kbps should sit on the
flat part of the curve.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import markdown_table
from repro.experiments.ablations import run_control_rate_ablation

from benchmarks.conftest import bench_scenario

RATES_KBPS = (100, 250, 500, 1000)


def test_control_rate_ablation(benchmark, scale_banner, capsys):
    results = benchmark.pedantic(
        lambda: run_control_rate_ablation(bench_scenario(), RATES_KBPS),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print(f"\n=== Ablation: control channel bandwidth {scale_banner}")
        print(
            markdown_table(
                ["rate [kbps]", "thr [kbps]", "delay [ms]", "PDR"],
                [
                    [
                        rate,
                        round(r.throughput_kbps, 1),
                        round(r.avg_delay_ms, 1),
                        round(r.delivery_ratio, 3),
                    ]
                    for rate, r in results.items()
                ],
            )
        )
    for rate, result in results.items():
        assert result.delivery_ratio > 0.3, f"{rate} kbps collapsed"
    # The paper's operating point is not pathological: 500 kbps performs
    # within 15% of the best rate tried.
    best = max(r.throughput_kbps for r in results.values())
    assert results[500].throughput_kbps >= 0.85 * best

