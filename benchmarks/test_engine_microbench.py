"""Microbenchmarks of the simulator substrate (the NS-2 replacement).

These are honest pytest-benchmark measurements (many rounds) of the three
hot paths profiling identified: event queue churn, propagation gain, and
radio signal bookkeeping.  They guard against performance regressions that
would make the paper-scale sweeps impractical.
"""

from __future__ import annotations

import pytest

from repro.phy.frame import PhyFrame
from repro.phy.propagation import TwoRayGround
from repro.sim.event import EventQueue
from repro.sim.kernel import Simulator
from tests.conftest import make_radio


def test_event_queue_push_pop(benchmark):
    def churn():
        q = EventQueue()
        for k in range(1000):
            q.push(float(k % 97), lambda: None)
        n = 0
        while q.pop() is not None:
            n += 1
        return n

    assert benchmark(churn) == 1000


def test_kernel_event_dispatch(benchmark):
    def dispatch():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5000:
                sim.schedule_in(0.001, tick)

        sim.schedule_in(0.001, tick)
        sim.run_until(10.0)
        return count[0]

    assert benchmark(dispatch) == 5000


def test_two_ray_gain(benchmark):
    model = TwoRayGround()

    def gains():
        total = 0.0
        for d in range(1, 1000):
            total += model.gain_at(float(d))
        return total

    assert benchmark(gains) > 0


def test_radio_signal_churn(benchmark):
    sim = Simulator()
    radio = make_radio(sim, 0, (0.0, 0.0))

    def churn():
        for k in range(500):
            f = PhyFrame(
                payload=None,
                size_bytes=100,
                bitrate_bps=1e6,
                plcp_s=0.0,
                tx_power_w=0.1,
                src=1,
            )
            radio.signal_start(f, 1e-9)
            radio.signal_end(f.frame_id)
        return radio.stats["rx_ok"]

    assert benchmark(churn) > 0
