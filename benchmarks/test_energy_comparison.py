"""Energy-efficiency comparison across the four MAC protocols.

Not a paper figure — the paper's focus is capacity — but its related-work
section frames power control as a battery-life technique ([4], [5], [16]),
so the harness reports the energy side too: transmit energy per delivered
payload bit, total energy, and the control/payload airtime split.

Expected shape: the power-controlled protocols transmit far less energy per
delivered bit than basic 802.11 (levels 1–9 are 3.7×–282× cheaper than the
maximum), and PCMAC additionally saves the ACK airtime.
"""

from __future__ import annotations

from repro.experiments.scenario import build_network
from repro.metrics.summary import efficiency_table, summarise_efficiency

from benchmarks.conftest import bench_scenario

PROTOCOLS = ("basic", "pcmac", "scheme1", "scheme2")


def run_all():
    return {p: build_network(bench_scenario(), p).run() for p in PROTOCOLS}


def test_energy_comparison(benchmark, scale_banner, capsys):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n=== Energy efficiency comparison {scale_banner}")
        print(efficiency_table(results))

    eff = {p: summarise_efficiency(r) for p, r in results.items()}
    # Power control transmits dramatically less energy per delivered bit.
    assert eff["pcmac"].energy_per_bit_j < 0.7 * eff["basic"].energy_per_bit_j
    assert eff["scheme2"].energy_per_bit_j < eff["basic"].energy_per_bit_j
    # Every protocol spends the bulk of its airtime on payload, not control.
    for p in PROTOCOLS:
        assert 0.0 < eff[p].control_airtime_fraction < 0.6
    # DATA transmissions per delivery ≥ 1 (multihop + retransmissions).
    for p in PROTOCOLS:
        assert eff[p].data_tx_per_delivery >= 1.0
