"""Ablation: PCMAC's noise-tolerance margin coefficient (paper: 0.7).

Sweeps the fraction of an advertised tolerance a contender may consume.
Small values over-defer (wasted airtime); 1.0 leaves no headroom for noise
fluctuation or simultaneous contenders.  The paper fixes 0.7 by fiat; this
bench charts the trade-off it sits on.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import markdown_table
from repro.experiments.ablations import run_margin_ablation

from benchmarks.conftest import bench_scenario

COEFFICIENTS = (0.5, 0.7, 0.9, 1.0)


def test_margin_ablation(benchmark, scale_banner, capsys):
    results = benchmark.pedantic(
        lambda: run_margin_ablation(bench_scenario(), COEFFICIENTS),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print(f"\n=== Ablation: admission margin coefficient {scale_banner}")
        print(
            markdown_table(
                ["coefficient", "thr [kbps]", "delay [ms]", "PDR", "blocks"],
                [
                    [
                        c,
                        round(r.throughput_kbps, 1),
                        round(r.avg_delay_ms, 1),
                        round(r.delivery_ratio, 3),
                        int(r.mac_totals["admission_blocks"]),
                    ]
                    for c, r in results.items()
                ],
            )
        )
    # All variants must remain functional; the exact optimum is scenario
    # dependent — the reproduction claim is only that the protocol is not
    # knife-edge sensitive around the paper's 0.7.
    for coeff, result in results.items():
        assert result.delivery_ratio > 0.3, f"margin {coeff} collapsed"
    thr = [r.throughput_kbps for r in results.values()]
    assert max(thr) / min(thr) < 1.5, "unexpected knife-edge sensitivity"

