"""Ablation: does PCMAC's advantage survive a different propagation model?

The paper evaluates only under NS-2's two-ray ground model.  This bench
re-runs PCMAC vs basic 802.11 under log-distance path loss with several
exponents.  The absolute numbers shift (ranges shrink as the exponent
grows); the reproduction claim is that the protocol ordering — PCMAC at
least matching basic — is not an artefact of the ``1/d⁴`` branch.
"""

from __future__ import annotations

from repro.analysis.report import markdown_table
from repro.experiments.ablations import run_propagation_ablation

from benchmarks.conftest import bench_scenario

EXPONENTS = (2.4, 2.7)


def test_propagation_ablation(benchmark, scale_banner, capsys):
    results = benchmark.pedantic(
        lambda: run_propagation_ablation(bench_scenario(), EXPONENTS),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print(f"\n=== Ablation: log-distance propagation {scale_banner}")
        print(
            markdown_table(
                ["protocol", "exponent", "thr [kbps]", "delay [ms]", "PDR"],
                [
                    [
                        proto,
                        exp,
                        round(r.throughput_kbps, 1),
                        round(r.avg_delay_ms, 1),
                        round(r.delivery_ratio, 3),
                    ]
                    for (proto, exp), r in results.items()
                ],
            )
        )
    for exponent in EXPONENTS:
        basic = results[("basic", exponent)]
        pcmac = results[("pcmac", exponent)]
        # Both must remain functional networks under the foreign model...
        assert basic.delivery_ratio > 0.2, f"basic collapsed at n={exponent}"
        assert pcmac.delivery_ratio > 0.2, f"pcmac collapsed at n={exponent}"
        # ...and power control must not become a liability.
        assert pcmac.throughput_kbps >= 0.9 * basic.throughput_kbps
