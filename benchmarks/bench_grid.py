"""Shared N × density grid for the PHY/engine benchmarks.

Single source of truth for the network sizes and placement densities the
fan-out microbench (``benchmarks/test_channel_fanout.py``), the PHY
trajectory dump (``tools/bench_phy.py``) and the whole-run engine dump
(``tools/bench_engine.py``) all sweep.  Keeping the grid in one module
means a new size column (e.g. the mega-scale rows) lands in every
consumer at once instead of drifting per file.

* ``DENSITIES`` — nodes per square metre.  ``sparse`` (5·10⁻⁶) is the
  regime the spatial index targets (a handful of radios per interference
  disk); ``dense`` (5·10⁻⁵) is the paper's Section IV density where most
  of the field shares one 3×3 cell block.
* ``SIZES`` — the classic microbench columns.
* ``MEGA_SIZES`` — the 2 000/10 000-node worlds the vectorized (SoA)
  fan-out and calendar-queue scheduler exist for; split out so quick CI
  smokes can sweep ``SIZES`` only.
"""

from __future__ import annotations

#: Placement regimes, nodes per square metre.
DENSITIES: dict[str, float] = {"sparse": 5e-6, "dense": 5e-5}

#: Classic network sizes swept by every fan-out benchmark column.
SIZES: tuple[int, ...] = (10, 50, 200, 800)

#: Mega-scale sizes: exercised only by the vectorized-core benchmarks.
MEGA_SIZES: tuple[int, ...] = (2000, 10000)

#: The full sweep, classic then mega.
ALL_SIZES: tuple[int, ...] = SIZES + MEGA_SIZES

#: Transmitters sampled per measured round.
TX_SAMPLE: int = 16
