"""Figure 9 bench: average end-to-end delay vs offered load.

Shape claims asserted:

* PCMAC has the lowest mean delay across the sweep ("packet delay in PCMAC
  is the shortest");
* delays grow with offered load for every protocol ("in all protocols, the
  end to end delay increases with the load");
* the naive power-control schemes wait longer than PCMAC everywhere.
"""

from __future__ import annotations

from repro.analysis.plotting import ascii_chart
from repro.analysis.report import paper_vs_measured
from repro.experiments.figure8 import PROTOCOLS
from repro.experiments.figure9 import PAPER_FIG9_MS
from repro.experiments.sweep import run_load_sweep

from benchmarks.conftest import bench_loads, bench_scenario, bench_seeds
from benchmarks.test_fig8_throughput import interp_paper


def run_sweep():
    return run_load_sweep(
        bench_scenario(), PROTOCOLS, bench_loads(), seeds=bench_seeds()
    )


def test_figure9_reproduction(benchmark, scale_banner, capsys):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    loads = list(bench_loads())
    measured = sweep.delay_series()
    paper = {p: interp_paper(PAPER_FIG9_MS[p], loads) for p in PROTOCOLS}

    with capsys.disabled():
        print(f"\n=== Figure 9: end-to-end delay vs offered load {scale_banner}")
        print(paper_vs_measured("load [kbps]", loads, paper, measured))
        chart = {p: (loads, measured[p]) for p in PROTOCOLS}
        print(ascii_chart(chart, title="Figure 9 (measured)",
                          x_label="offered load [kbps]",
                          y_label="delay [ms]"))

    mean = {p: sum(measured[p]) / len(measured[p]) for p in PROTOCOLS}
    # PCMAC waits the least (2 % slack for seed noise).
    assert mean["pcmac"] <= 1.02 * min(mean.values())
    assert mean["pcmac"] < mean["scheme1"]
    assert mean["pcmac"] < mean["scheme2"]
    # Delay grows with load: final point above first for every protocol.
    for p in PROTOCOLS:
        assert measured[p][-1] > measured[p][0]
