"""Campaign runner bench: serial vs parallel vs cached wall-clock.

Times the same small protocol × load × seed grid three ways:

* ``jobs=1`` — the serial baseline (what the pre-campaign sweep code did);
* ``jobs=N`` — the multiprocessing pool (N = up to 4 workers);
* cached    — a second invocation against a warm result store (pure hits).

Prints one ``BENCH`` line with the three numbers and the parallel speedup
so the trajectory of the runner is recorded alongside the figure benches.
Determinism is asserted, not just timed: the pooled results must equal the
serial ones field-for-field (wallclock aside).
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict

from repro.campaign.runner import run_specs
from repro.campaign.spec import Campaign
from repro.campaign.store import ResultStore
from repro.config import MobilityConfig, ScenarioConfig, TrafficConfig


def bench_grid() -> Campaign:
    """A 2-protocol × 2-load × 2-seed grid, sized so one cell takes ~1 s."""
    base = ScenarioConfig(
        node_count=16,
        duration_s=15.0,
        traffic=TrafficConfig(flow_count=4),
        mobility=MobilityConfig(field_width_m=566.0, field_height_m=566.0),
    )
    return Campaign.build(base, ("basic", "pcmac"), (300.0, 500.0), (1, 2))


def _strip_wallclock(result) -> dict:
    fields = asdict(result)
    fields.pop("wallclock_s")
    return fields


def test_campaign_runner_scaling(benchmark, tmp_path, capsys):
    campaign = bench_grid()
    specs = campaign.specs()
    # At least 2 workers so the pool path (not the serial shortcut) is what
    # gets timed, even on single-core CI runners.
    jobs = max(2, min(4, os.cpu_count() or 1))

    t0 = time.perf_counter()
    serial = run_specs(specs, jobs=1)
    t_serial = time.perf_counter() - t0

    store = ResultStore(tmp_path / "store")
    parallel = benchmark.pedantic(
        lambda: run_specs(specs, jobs=jobs, store=store), rounds=1, iterations=1
    )
    t_parallel = parallel.wallclock_s

    t0 = time.perf_counter()
    cached = run_specs(specs, jobs=jobs, store=store)
    t_cached = time.perf_counter() - t0

    # Cross-process determinism: pool output == serial output.
    assert set(serial.results) == set(parallel.results)
    for key in serial.results:
        assert _strip_wallclock(serial.results[key]) == (
            _strip_wallclock(parallel.results[key])
        )
    assert cached.executed == 0
    assert cached.cached == len(specs)

    with capsys.disabled():
        speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
        print(
            f"\nBENCH campaign_runner cells={len(specs)} jobs={jobs} "
            f"serial={t_serial:.2f}s parallel={t_parallel:.2f}s "
            f"cached={t_cached * 1000:.1f}ms speedup={speedup:.2f}x"
        )
