"""Ablation: power-history record lifetime (paper: 3 seconds).

Short lifetimes forget gains before reuse (constant cold-start at maximum
power, wasting the power-control benefit); long lifetimes trust stale gains
under mobility (under-powered frames, CTS timeouts, escalations).  At 3 m/s
the paper's 3 s corresponds to ≤ 9 m of drift — about one power class.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import markdown_table
from repro.experiments.ablations import run_history_expiry_ablation

from benchmarks.conftest import bench_scenario

EXPIRIES_S = (0.5, 3.0, 10.0)


def test_history_expiry_ablation(benchmark, scale_banner, capsys):
    results = benchmark.pedantic(
        lambda: run_history_expiry_ablation(bench_scenario(), EXPIRIES_S),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print(f"\n=== Ablation: power history expiry {scale_banner}")
        print(
            markdown_table(
                ["expiry [s]", "thr [kbps]", "delay [ms]", "PDR", "escalations"],
                [
                    [
                        e,
                        round(r.throughput_kbps, 1),
                        round(r.avg_delay_ms, 1),
                        round(r.delivery_ratio, 3),
                        int(r.mac_totals["power_escalations"]),
                    ]
                    for e, r in results.items()
                ],
            )
        )
    for expiry, result in results.items():
        assert result.delivery_ratio > 0.3, f"expiry {expiry}s collapsed"
    thr = {e: r.throughput_kbps for e, r in results.items()}
    # The paper's 3 s should not be badly dominated by either extreme.
    assert thr[3.0] >= 0.85 * max(thr.values())

