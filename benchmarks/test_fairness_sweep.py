"""Fairness-vs-separation bench (the paper's challenge (3), quantified).

Sweeps the gap between a low-power pair and a maximum-power pair through
the asymmetric-link window and prints the Jain fairness per protocol.  The
assertion: inside the suppression window, PCMAC's fairness stays above
Scheme 2's — the protocol keeps its Section III promise.
"""

from __future__ import annotations

from repro.analysis.report import markdown_table
from repro.experiments.fairness_experiment import run_fairness_sweep

GAPS = (100.0, 210.0, 320.0)


def test_fairness_sweep(benchmark, capsys):
    points = benchmark.pedantic(
        lambda: run_fairness_sweep(gaps_m=GAPS), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n=== Fairness vs pair separation (Figure 4 generalised)")
        print(
            markdown_table(
                ["protocol", "gap [m]", "Jain", "A→B PDR", "C→D PDR"],
                [
                    [
                        p.protocol,
                        p.gap_m,
                        round(p.fairness, 3),
                        round(p.short_pair_pdr, 3),
                        round(p.long_pair_pdr, 3),
                    ]
                    for p in points
                ],
            )
        )
    by = {(p.protocol, p.gap_m): p for p in points}
    # The suppression window: C outside the low-power sensing radius but
    # within interference range of B (gap 210 m in this geometry).
    window = 210.0
    assert by[("pcmac", window)].fairness > by[("scheme2", window)].fairness
    assert by[("pcmac", window)].short_pair_pdr > 0.7
    assert by[("scheme2", window)].short_pair_pdr < 0.5
    # With the pairs tightly coupled, carrier sense keeps everyone honest.
    for protocol in ("basic", "scheme2", "pcmac"):
        assert by[(protocol, 100.0)].fairness > 0.9
