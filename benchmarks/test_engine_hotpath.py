"""Whole-run engine hot-path benchmarks (the BENCH_engine.json companions).

Where ``test_engine_microbench.py`` times isolated substrate pieces, these
measure the paths the run-loop turbocharge targeted, at whole-run or
storm scale:

* fused vs reference kernel loop over an identical event storm;
* MAC-style timer churn (arm, usually cancel, re-arm) including the lazy-
  cancel compaction the churn relies on;
* tracing emit cost for disabled categories (the near-zero-cost contract);
* a complete small paper scenario, end to end.

CI runs these once with ``--benchmark-disable`` so the code cannot rot;
locally ``python -m pytest benchmarks/test_engine_hotpath.py`` gives honest
pytest-benchmark numbers.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import ScenarioConfig
from repro.experiments.scenario import build_network
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

# ---------------------------------------------------------------------------
# Kernel loop
# ---------------------------------------------------------------------------


def _event_storm(sim: Simulator, chains: int = 50, length: int = 100) -> int:
    """Self-rescheduling chains — the kernel loop with trivial handlers."""
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < chains * length:
            sim.schedule_in(0.001, tick)

    for k in range(chains):
        sim.schedule(0.0005 * k, tick)
    sim.run_until(1e9)
    return count[0]


@pytest.mark.parametrize("fused", [True, False], ids=["fused", "reference"])
def test_kernel_loop_event_storm(benchmark, fused):
    def storm():
        return _event_storm(Simulator(fused=fused))

    # The last in-flight tick of each chain still fires after the threshold
    # crossing, so the total lands slightly above chains*length.
    assert benchmark(storm) >= 5000


def test_kernel_cancel_heavy_storm(benchmark):
    """Set-and-cancel timer pattern: exercises lazy cancel + compaction."""

    def churn():
        sim = Simulator()
        fired = [0]

        def work():
            fired[0] += 1
            # Arm a timeout, then immediately cancel it (the MAC pattern:
            # almost every timeout is cancelled by the response arriving).
            ev = sim.schedule_in(10.0, work)
            sim.cancel(ev)
            if fired[0] < 3000:
                sim.schedule_in(0.001, work)

        sim.schedule(0.0, work)
        sim.run_until(1e9)
        return fired[0]

    assert benchmark(churn) == 3000


def test_tracer_disabled_emit_overhead(benchmark):
    """The fast-path contract: counting a disabled category is ~one int add."""
    tracer = Tracer()
    handle = tracer.handle("phy.tx")

    def emits():
        for _ in range(10_000):
            handle.count += 1
            if handle.store:  # never true here — no dict/record allocation
                handle.record(0.0, 0, frame=1)
        return handle.count

    assert benchmark(emits) > 0


# ---------------------------------------------------------------------------
# Whole run
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol", ["basic", "pcmac"])
def test_whole_run_small_scenario(benchmark, protocol):
    """End-to-end events/sec on a small paper scenario (N=10, 4 s)."""
    cfg = replace(ScenarioConfig(), node_count=10, duration_s=4.0, seed=7)

    def run():
        net = build_network(cfg, protocol, mobile=False)
        net.sim.run_until(cfg.duration_s)
        return net.sim.events_executed

    events = benchmark(run)
    assert events > 1000
