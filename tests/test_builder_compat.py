"""NetworkBuilder tests: legacy-shim bit-identity, components, validation.

The headline regression: ``build_network(cfg, protocol, ...)`` is now a thin
shim translating its keywords onto a :class:`ScenarioSpec`; results through
the shim must be **bit-identical** to the declarative path (same floats,
same event counts, same per-flow summaries) for every legacy keyword
combination.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.builder import NetworkBuilder
from repro.config import MobilityConfig, ScenarioConfig, TrafficConfig
from repro.experiments.scenario import build_network
from repro.phy.propagation import LogDistanceShadowing
from repro.registry import ParamError, UnknownComponentError
from repro.scenariospec import ComponentSpec, ScenarioSpec


def small_cfg(**overrides) -> ScenarioConfig:
    defaults = dict(
        node_count=8,
        duration_s=5.0,
        seed=2,
        traffic=TrafficConfig(flow_count=2, offered_load_bps=100e3),
        mobility=MobilityConfig(field_width_m=350.0, field_height_m=350.0),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def strip_wallclock(result):
    """Wallclock is the only legitimately non-deterministic field."""
    return replace(result, wallclock_s=0.0)


CHAIN_POSITIONS = ((0.0, 0.0), (100.0, 0.0), (310.0, 0.0), (550.0, 0.0))


class TestShimBitIdentity:
    @pytest.mark.parametrize("protocol", ["basic", "pcmac", "scheme1", "scheme2"])
    def test_mobile_default_scenario(self, protocol):
        legacy = build_network(small_cfg(), protocol).run()
        spec = ScenarioSpec(cfg=small_cfg(), mac=protocol)
        declarative = NetworkBuilder(spec).build().run()
        assert strip_wallclock(legacy) == strip_wallclock(declarative)

    @pytest.mark.parametrize("protocol", ["basic", "pcmac"])
    def test_static_chain_with_every_override(self, protocol):
        cfg = ScenarioConfig(
            node_count=4,
            duration_s=8.0,
            seed=11,
            traffic=TrafficConfig(flow_count=2, offered_load_bps=900e3),
            mobility=MobilityConfig(speed_mps=0.0),
        )
        legacy = build_network(
            cfg,
            protocol,
            positions=list(CHAIN_POSITIONS),
            mobile=False,
            routing="static",
            flow_pairs=[(0, 1), (2, 3)],
        ).run()
        spec = ScenarioSpec(
            cfg=cfg,
            mac=protocol,
            placement=ComponentSpec("explicit", positions=CHAIN_POSITIONS),
            mobility="static",
            routing="static",
            flow_pairs=((0, 1), (2, 3)),
        )
        declarative = NetworkBuilder(spec).build().run()
        assert strip_wallclock(legacy) == strip_wallclock(declarative)

    def test_propagation_override(self):
        model = LogDistanceShadowing(exponent=3.0)
        legacy = build_network(small_cfg(), "basic", propagation=model).run()
        spec = ScenarioSpec.from_legacy(small_cfg(), "basic", propagation=model)
        declarative = NetworkBuilder(spec).build().run()
        assert strip_wallclock(legacy) == strip_wallclock(declarative)

    def test_shim_attaches_the_spec(self):
        net = build_network(small_cfg(), "basic")
        assert net.spec is not None
        assert net.spec.mac.name == "basic"
        assert net.spec.key() == ScenarioSpec(cfg=small_cfg(), mac="basic").key()


class TestNewComponentsEndToEnd:
    """The extension point: data-only components, zero builder changes."""

    def test_grid_placement_runs(self):
        spec = ScenarioSpec(cfg=small_cfg(), placement="grid", mobility="static")
        net = spec.build()
        xs = {p[0] for p in (n.position for n in net.nodes)}
        assert len(xs) <= 3  # 8 nodes -> 3-column grid
        result = net.run()
        assert result.events_executed > 0

    def test_cluster_placement_runs_and_is_seed_deterministic(self):
        spec = ScenarioSpec(
            cfg=small_cfg(),
            placement=ComponentSpec("cluster", clusters=2, spread_m=40.0),
        )
        a = spec.build()
        b = spec.build()
        assert [n.position for n in a.nodes] == [n.position for n in b.nodes]
        width = small_cfg().mobility.field_width_m
        for node in a.nodes:
            x, y = node.position
            assert 0.0 <= x <= width and 0.0 <= y <= width

    def test_line_placement_params(self):
        spec = ScenarioSpec(
            cfg=small_cfg(),
            placement=ComponentSpec("line", spacing_m=50.0),
            mobility="static",
        )
        net = spec.build()
        assert [n.position for n in net.nodes] == [
            (i * 50.0, 0.0) for i in range(8)
        ]

    def test_poisson_traffic_runs_and_differs_from_cbr(self):
        base = small_cfg()
        cbr = ScenarioSpec(cfg=base, traffic="cbr").run()
        poisson = ScenarioSpec(cfg=base, traffic="poisson").run()
        assert poisson.events_executed > 0
        # Same mean rate, different arrival process: schedules must differ.
        assert poisson.events_executed != cbr.events_executed

    def test_data_only_scenario_key_independent_of_call_site(self):
        spec = ScenarioSpec(
            cfg=small_cfg(), placement="grid", traffic="poisson", mobility="static"
        )
        json_spec = ScenarioSpec.from_json(spec.to_json())
        assert json_spec.key() == spec.key()
        assert strip_wallclock(NetworkBuilder(spec).build().run()) == strip_wallclock(
            NetworkBuilder(json_spec).build().run()
        )


class TestBuilderValidation:
    def test_unknown_mac_component(self):
        with pytest.raises(UnknownComponentError, match="pcmac"):
            ScenarioSpec(cfg=small_cfg(), mac="csma-cd").build()

    def test_unknown_component_via_legacy_shim(self):
        with pytest.raises(ValueError):
            build_network(small_cfg(), "csma-cd")

    def test_bad_param_names_offending_key(self):
        spec = ScenarioSpec(
            cfg=small_cfg(), placement=ComponentSpec("cluster", clusterz=3)
        )
        with pytest.raises(ParamError, match="clusterz"):
            spec.build()

    def test_static_routing_requires_immobile_nodes(self):
        spec = ScenarioSpec(cfg=small_cfg(), routing="static")  # waypoint default
        with pytest.raises(ValueError, match="immobile"):
            spec.build()

    def test_out_of_range_flow_pair(self):
        spec = ScenarioSpec(cfg=small_cfg(), flow_pairs=((0, 8),))
        with pytest.raises(ValueError, match=r"\(0, 8\) out of range"):
            spec.build()
        spec = ScenarioSpec(cfg=small_cfg(), flow_pairs=((-1, 2),))
        with pytest.raises(ValueError, match="out of range"):
            spec.build()

    def test_wrong_position_count(self):
        spec = ScenarioSpec(
            cfg=small_cfg(),
            placement=ComponentSpec("explicit", positions=((0.0, 0.0),)),
        )
        with pytest.raises(ValueError, match="1 positions"):
            spec.build()

    def test_validation_happens_before_construction(self):
        # A bad param in the *traffic* slot (built last) must still fail
        # fast, before any node or channel exists.
        spec = ScenarioSpec(
            cfg=small_cfg(), traffic=ComponentSpec("cbr", burst=4)
        )
        with pytest.raises(ParamError, match="burst"):
            NetworkBuilder(spec).build()
