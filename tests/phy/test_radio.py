"""Radio tests: locking, SINR corruption, capture, carrier sense, EIFS flag.

These drive radios directly through ``signal_start`` / ``signal_end`` with
hand-computed powers, so every decode rule is pinned individually.
"""

from __future__ import annotations

import pytest

from repro.phy.frame import PhyFrame
from repro.phy.radio import Radio, RadioError
from tests.conftest import make_radio

RX = 3.652e-10  # decode threshold
CS = 1.559e-11  # carrier-sense threshold
NOISE = 1e-13


class Listener:
    """Records every radio callback."""

    def __init__(self):
        self.events = []

    def on_carrier_busy(self):
        self.events.append(("busy",))

    def on_carrier_idle(self, failed):
        self.events.append(("idle", failed))

    def on_rx_start(self, frame):
        self.events.append(("rx_start", frame.frame_id))

    def on_rx_end(self, frame, ok, rx_power_w):
        self.events.append(("rx_end", frame.frame_id, ok))

    def on_tx_end(self, frame):
        self.events.append(("tx_end", frame.frame_id))

    def of(self, kind):
        return [e for e in self.events if e[0] == kind]


def frame(src=1, size=100, rate=1e6, power=0.1) -> PhyFrame:
    return PhyFrame(
        payload=None,
        size_bytes=size,
        bitrate_bps=rate,
        plcp_s=0.0,
        tx_power_w=power,
        src=src,
    )


@pytest.fixture
def radio(sim):
    r = make_radio(sim, 0, (0.0, 0.0))
    listener = Listener()
    r.listener = listener
    return r


class TestLocking:
    def test_decodable_frame_locks_and_succeeds(self, sim, radio):
        f = frame()
        radio.signal_start(f, RX * 10)
        assert radio.receiving
        assert radio.lock_power_w == RX * 10
        radio.signal_end(f.frame_id)
        assert radio.listener.of("rx_end") == [("rx_end", f.frame_id, True)]

    def test_below_threshold_does_not_lock(self, sim, radio):
        f = frame()
        radio.signal_start(f, RX * 0.9)
        assert not radio.receiving
        radio.signal_end(f.frame_id)
        assert radio.listener.of("rx_end") == []

    def test_rx_start_callback(self, sim, radio):
        f = frame()
        radio.signal_start(f, RX * 10)
        assert radio.listener.of("rx_start") == [("rx_start", f.frame_id)]

    def test_second_frame_cannot_steal_lock(self, sim, radio):
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX * 1000)
        radio.signal_start(f2, RX * 10)  # decodable but receiver is occupied
        assert radio.lock_power_w == RX * 1000
        assert radio.stats["rx_unlockable"] == 1


class TestSinrCorruption:
    def test_weak_interference_does_not_corrupt(self, sim, radio):
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX * 1000)
        # Interference 1/100 of signal: SINR ~100 >> 10.
        radio.signal_start(f2, RX * 10)
        radio.signal_end(f2.frame_id)
        radio.signal_end(f1.frame_id)
        assert radio.listener.of("rx_end") == [("rx_end", f1.frame_id, True)]

    def test_strong_interference_corrupts(self, sim, radio):
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX * 10)
        # Equal-power interferer: SINR ~1 < 10 → corrupted.
        radio.signal_start(f2, RX * 10)
        radio.signal_end(f2.frame_id)
        radio.signal_end(f1.frame_id)
        assert radio.listener.of("rx_end") == [("rx_end", f1.frame_id, False)]

    def test_corruption_latches_even_after_interference_ends(self, sim, radio):
        """A mid-frame SINR dip is fatal no matter how the frame ends."""
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX * 10)
        radio.signal_start(f2, RX * 10)
        radio.signal_end(f2.frame_id)  # interference gone...
        radio.signal_end(f1.frame_id)  # ...but the symbols were lost
        assert radio.listener.of("rx_end")[0][2] is False

    def test_sinr_boundary_exactly_at_capture_threshold(self, sim, radio):
        """SINR exactly at C_p decodes (the paper's ≥ relation)."""
        f1, f2 = frame(src=1), frame(src=2)
        signal = RX * 100
        radio.signal_start(f1, signal)
        # Pick interference so SINR == capture exactly: I = S/10 − noise.
        interference = signal / 10.0 - NOISE
        radio.signal_start(f2, interference)
        radio.signal_end(f2.frame_id)
        radio.signal_end(f1.frame_id)
        assert radio.listener.of("rx_end")[0][2] is True

    def test_drowned_at_start_never_locks(self, sim, radio):
        """Decodable power but SINR below capture at arrival: failed attempt."""
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX * 10)  # locks
        radio.signal_end(f1.frame_id)
        # Now an undecodable-power background hum plus a decodable frame.
        hum = frame(src=3)
        radio.signal_start(hum, RX * 5)  # locks again? yes — it is decodable
        assert radio.receiving


class TestHalfDuplex:
    def test_cannot_tx_while_tx(self, sim, radio):
        radio.begin_tx(frame(src=0))
        with pytest.raises(RadioError):
            radio.begin_tx(frame(src=0))

    def test_tx_end_fires(self, sim, radio):
        f = frame(src=0, size=100, rate=1e6)
        radio.begin_tx(f)
        sim.run_until(1.0)
        assert radio.listener.of("tx_end") == [("tx_end", f.frame_id)]
        assert not radio.transmitting

    def test_deaf_while_transmitting(self, sim, radio):
        radio.begin_tx(frame(src=0))
        incoming = frame(src=1)
        radio.signal_start(incoming, RX * 100)
        assert not radio.receiving  # energy tracked, but no lock
        radio.signal_end(incoming.frame_id)
        assert radio.listener.of("rx_end") == []

    def test_tx_aborts_ongoing_lock_silently(self, sim, radio):
        incoming = frame(src=1)
        radio.signal_start(incoming, RX * 100)
        assert radio.receiving
        radio.begin_tx(frame(src=0))
        assert not radio.receiving
        assert radio.stats["rx_aborted_by_tx"] == 1
        radio.signal_end(incoming.frame_id)
        assert radio.listener.of("rx_end") == []  # no confusing callback


class TestCarrierSense:
    def test_busy_edge_at_cs_threshold(self, sim, radio):
        f = frame()
        radio.signal_start(f, CS * 1.01)
        assert radio.carrier_busy
        assert radio.listener.of("busy") == [("busy",)]

    def test_below_cs_threshold_not_busy(self, sim, radio):
        f = frame()
        radio.signal_start(f, CS * 0.5)
        assert not radio.carrier_busy
        assert radio.listener.of("busy") == []

    def test_aggregate_sub_cs_signals_become_busy(self, sim, radio):
        """Many sub-threshold signals can sum past the CS threshold."""
        frames = [frame(src=i) for i in range(3)]
        for f in frames:
            radio.signal_start(f, CS * 0.5)
        assert radio.carrier_busy

    def test_idle_edge_when_energy_clears(self, sim, radio):
        f = frame()
        radio.signal_start(f, CS * 2)
        radio.signal_end(f.frame_id)
        assert not radio.carrier_busy
        assert len(radio.listener.of("idle")) == 1

    def test_own_tx_is_busy(self, sim, radio):
        radio.begin_tx(frame(src=0))
        assert radio.carrier_busy

    def test_total_power_resets_cleanly(self, sim, radio):
        """Float drift dies when the air goes quiet."""
        frames = [frame(src=i) for i in range(10)]
        for f in frames:
            radio.signal_start(f, 1.7e-12)
        for f in frames:
            radio.signal_end(f.frame_id)
        assert radio.total_power_w == 0.0


class TestEifsFlag:
    def test_clean_decode_reports_not_failed(self, sim, radio):
        f = frame()
        radio.signal_start(f, RX * 100)
        radio.signal_end(f.frame_id)
        assert radio.listener.of("idle") == [("idle", False)]

    def test_sensed_but_undecodable_reports_failed(self, sim, radio):
        """Carrier-sensing-zone energy → EIFS (paper Section II)."""
        f = frame()
        radio.signal_start(f, CS * 5)  # sensed, not decodable
        radio.signal_end(f.frame_id)
        assert radio.listener.of("idle") == [("idle", True)]

    def test_collision_reports_failed(self, sim, radio):
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX * 10)
        radio.signal_start(f2, RX * 10)
        radio.signal_end(f1.frame_id)
        radio.signal_end(f2.frame_id)
        idle = radio.listener.of("idle")
        assert idle and idle[0][1] is True

    def test_own_tx_alone_reports_not_failed(self, sim, radio):
        radio.begin_tx(frame(src=0))
        sim.run_until(1.0)
        assert radio.listener.of("idle") == [("idle", False)]


class TestInterferenceAccounting:
    def test_interference_excludes_lock(self, sim, radio):
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX * 100)
        radio.signal_start(f2, RX * 2)
        assert radio.interference_w == pytest.approx(NOISE + RX * 2)

    def test_interference_is_noise_floor_when_quiet(self, sim, radio):
        assert radio.interference_w == pytest.approx(NOISE)

    def test_sinr_of_excludes_own_power(self, sim, radio):
        f1 = frame(src=1)
        radio.signal_start(f1, 2e-10)
        assert radio.sinr_of(2e-10) == pytest.approx(2e-10 / NOISE, rel=1e-6)
