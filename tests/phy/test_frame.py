"""PhyFrame airtime tests."""

from __future__ import annotations

import pytest

from repro.phy.frame import PhyFrame


def make_frame(**overrides):
    kwargs = dict(
        payload=None,
        size_bytes=512,
        bitrate_bps=2e6,
        plcp_s=192e-6,
        tx_power_w=0.2818,
        src=0,
    )
    kwargs.update(overrides)
    return PhyFrame(**kwargs)


class TestDuration:
    def test_includes_plcp_and_payload(self):
        f = make_frame()
        assert f.duration_s == pytest.approx(192e-6 + 4096 / 2e6)

    def test_control_frame_at_basic_rate(self):
        f = make_frame(size_bytes=20, bitrate_bps=1e6)
        assert f.duration_s == pytest.approx(192e-6 + 160e-6)

    def test_longer_payload_longer_airtime(self):
        assert make_frame(size_bytes=1024).duration_s > make_frame().duration_s


class TestValidation:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            make_frame(size_bytes=0)

    def test_rejects_zero_bitrate(self):
        with pytest.raises(ValueError):
            make_frame(bitrate_bps=0.0)

    def test_rejects_zero_power(self):
        with pytest.raises(ValueError):
            make_frame(tx_power_w=0.0)

    def test_frame_ids_unique(self):
        assert make_frame().frame_id != make_frame().frame_id
