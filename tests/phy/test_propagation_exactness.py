"""The ``bulk_exact`` contract: scalar vs numpy propagation bit-identity.

``Channel``'s SoA fan-out schedules received powers straight from
``gain_at_many`` when the model advertises ``bulk_exact = True``; a single
ulp of divergence between the scalar and bulk paths would break the
bit-identity guarantee the differential suite enforces on whole
``ExperimentResult``s.  These tests pin the contract at its source:

* :class:`FreeSpace` and :class:`TwoRayGround` — exact equality on a wide
  log-spaced distance sweep, plus adversarial points (the clamp boundary,
  the two-ray crossover and its float neighbours).
* :class:`LogDistanceShadowing` — declared inexact; we assert it *stays*
  declared inexact and that bulk results remain within the ~1-ulp
  tolerance the channel's cull-only usage relies upon.
* :func:`distance` — the scalar helper must match the equivalent numpy
  expression bit-for-bit (the reason it is not ``math.hypot``).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.phy.propagation import (
    MIN_DISTANCE_M,
    FreeSpace,
    LogDistanceShadowing,
    TwoRayGround,
    distance,
)

MODELS_EXACT = [
    pytest.param(FreeSpace(), id="free_space"),
    pytest.param(TwoRayGround(), id="two_ray"),
    pytest.param(
        TwoRayGround(frequency_hz=2.4e9, height_tx_m=1.0, height_rx_m=2.0,
                     system_loss=1.2),
        id="two_ray_24ghz",
    ),
]


def _sweep(model) -> np.ndarray:
    """Distances covering clamp, both branches, and branch boundaries."""
    pts = list(np.geomspace(1e-3, 5e4, 400))
    pts += [0.0, MIN_DISTANCE_M, MIN_DISTANCE_M * (1 + 1e-15)]
    cross = getattr(model, "crossover_m", None)
    if cross is not None:
        pts += [cross, math.nextafter(cross, 0.0), math.nextafter(cross, math.inf)]
    return np.asarray(pts, dtype=float)


class TestBulkExactModels:
    @pytest.mark.parametrize("model", MODELS_EXACT)
    def test_flag_is_set(self, model):
        assert model.bulk_exact is True

    @pytest.mark.parametrize("model", MODELS_EXACT)
    def test_bulk_matches_scalar_bitwise(self, model):
        d = _sweep(model)
        bulk = model.gain_at_many(d)
        scalar = np.array([model.gain_at(float(x)) for x in d])
        # == on floats is exactly the bit-identity we promise (no NaNs here).
        mismatch = np.nonzero(bulk != scalar)[0]
        assert mismatch.size == 0, (
            f"{type(model).__name__}: {mismatch.size} bulk/scalar mismatches, "
            f"first at d={d[mismatch[0]]!r}: "
            f"{bulk[mismatch[0]].hex()} != {scalar[mismatch[0]].hex()}"
        )

    @pytest.mark.parametrize("model", MODELS_EXACT)
    def test_bulk_matches_base_class_loop(self, model):
        """The closed-form override equals the base fromiter fallback."""
        d = _sweep(model)
        base = super(type(model), model).gain_at_many(d)
        assert np.array_equal(model.gain_at_many(d), base)

    def test_two_ray_continuous_at_crossover(self):
        model = TwoRayGround()
        c = model.crossover_m
        below = model.gain_at(math.nextafter(c, 0.0))
        at = model.gain_at(c)
        assert at == pytest.approx(below, rel=1e-12)


class TestInexactModelContract:
    def test_log_distance_stays_declared_inexact(self):
        # If someone flips this flag the channel would start scheduling
        # powers from a path that is NOT bit-identical — fail loudly.
        assert LogDistanceShadowing().bulk_exact is False

    @pytest.mark.parametrize(
        "model",
        [
            pytest.param(LogDistanceShadowing(), id="default"),
            pytest.param(LogDistanceShadowing(exponent=4.0, shadowing_db=3.0),
                         id="exp4_shadowed"),
        ],
    )
    def test_log_distance_within_cull_tolerance(self, model):
        d = _sweep(model)
        bulk = model.gain_at_many(d)
        scalar = np.array([model.gain_at(float(x)) for x in d])
        # The channel culls with floor*(1-1e-9); require far tighter here.
        np.testing.assert_allclose(bulk, scalar, rtol=1e-12)


class TestDistanceHelper:
    def test_matches_numpy_expression_bitwise(self):
        rng = np.random.default_rng(7)
        ax, ay = rng.uniform(0, 5000, 500), rng.uniform(0, 5000, 500)
        bx, by = rng.uniform(0, 5000, 500), rng.uniform(0, 5000, 500)
        dx, dy = ax - bx, ay - by
        bulk = np.sqrt(dx * dx + dy * dy)
        scalar = np.array(
            [distance((x1, y1), (x2, y2))
             for x1, y1, x2, y2 in zip(ax, ay, bx, by)]
        )
        assert np.array_equal(bulk, scalar)

    def test_symmetric(self):
        # (rx - src) vs (src - rx) is exact negation; dx*dx is identical.
        a, b = (12.34, 56.78), (90.12, 3.456)
        assert distance(a, b) == distance(b, a)
