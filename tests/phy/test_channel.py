"""Channel tests: fan-out, gain filtering, propagation delay."""

from __future__ import annotations

import pytest

from repro.phy.frame import PhyFrame
from repro.units import SPEED_OF_LIGHT
from tests.conftest import make_channel, make_radio
from tests.phy.test_radio import Listener

RX = 3.652e-10


def frame(src, power=0.2818, size=100, rate=1e6) -> PhyFrame:
    return PhyFrame(
        payload=None,
        size_bytes=size,
        bitrate_bps=rate,
        plcp_s=0.0,
        tx_power_w=power,
        src=src,
    )


class TestFanOut:
    def test_in_range_receiver_decodes(self, sim):
        chan = make_channel(sim)
        tx = make_radio(sim, 0, (0.0, 0.0))
        rx = make_radio(sim, 1, (100.0, 0.0))
        lis = Listener()
        rx.listener = lis
        chan.attach(tx)
        chan.attach(rx)
        chan.transmit(tx, frame(src=0))
        sim.run_until(1.0)
        assert lis.of("rx_end") and lis.of("rx_end")[0][2] is True

    def test_out_of_decode_range_does_not_decode(self, sim):
        chan = make_channel(sim)
        tx = make_radio(sim, 0, (0.0, 0.0))
        rx = make_radio(sim, 1, (300.0, 0.0))  # beyond 250 m decode
        lis = Listener()
        rx.listener = lis
        chan.attach(tx)
        chan.attach(rx)
        chan.transmit(tx, frame(src=0))
        sim.run_until(1.0)
        assert lis.of("rx_end") == []
        # But it is inside the 550 m sensing zone → busy/idle edges occurred.
        assert lis.of("busy") and lis.of("idle")

    def test_below_interference_floor_is_culled(self, sim):
        chan = make_channel(sim)
        tx = make_radio(sim, 0, (0.0, 0.0))
        far = make_radio(sim, 1, (5000.0, 0.0))
        lis = Listener()
        far.listener = lis
        chan.attach(tx)
        chan.attach(far)
        chan.transmit(tx, frame(src=0, power=1e-3))
        assert sim.pending_events == 1  # only the transmitter's tx-end
        sim.run_until(1.0)
        assert lis.events == []

    def test_transmitter_does_not_hear_itself(self, sim):
        chan = make_channel(sim)
        tx = make_radio(sim, 0, (0.0, 0.0))
        lis = Listener()
        tx.listener = lis
        chan.attach(tx)
        chan.transmit(tx, frame(src=0))
        sim.run_until(1.0)
        assert lis.of("rx_end") == []

    def test_multiple_receivers_all_reached(self, sim):
        chan = make_channel(sim)
        tx = make_radio(sim, 0, (0.0, 0.0))
        listeners = []
        chan.attach(tx)
        for k in range(5):
            rx = make_radio(sim, k + 1, (50.0 + 10 * k, 0.0))
            lis = Listener()
            rx.listener = lis
            listeners.append(lis)
            chan.attach(rx)
        chan.transmit(tx, frame(src=0))
        sim.run_until(1.0)
        for lis in listeners:
            assert lis.of("rx_end")[0][2] is True


class TestPropagationDelay:
    def test_leading_edge_arrives_after_distance_over_c(self, sim):
        chan = make_channel(sim)
        tx = make_radio(sim, 0, (0.0, 0.0))
        rx = make_radio(sim, 1, (150.0, 0.0))
        arrivals = []
        lis = Listener()
        lis.on_rx_start = lambda f: arrivals.append(sim.now)
        rx.listener = lis
        chan.attach(tx)
        chan.attach(rx)
        chan.transmit(tx, frame(src=0))
        sim.run_until(1.0)
        assert arrivals == [pytest.approx(150.0 / SPEED_OF_LIGHT)]

    def test_delay_can_be_disabled(self, sim):
        chan = make_channel(sim, model_propagation_delay=False)
        tx = make_radio(sim, 0, (0.0, 0.0))
        rx = make_radio(sim, 1, (150.0, 0.0))
        arrivals = []
        lis = Listener()
        lis.on_rx_start = lambda f: arrivals.append(sim.now)
        rx.listener = lis
        chan.attach(tx)
        chan.attach(rx)
        chan.transmit(tx, frame(src=0))
        sim.run_until(1.0)
        assert arrivals == [0.0]


class TestHiddenTerminalPhysics:
    def test_two_hidden_senders_collide_at_receiver(self, sim):
        """The classic hidden-terminal geometry on raw radios."""
        chan = make_channel(sim)
        a = make_radio(sim, 0, (0.0, 0.0))
        b = make_radio(sim, 1, (200.0, 0.0))     # receiver in the middle
        c = make_radio(sim, 2, (400.0, 0.0))     # hidden from A (400 m apart... sensed)
        lis = Listener()
        b.listener = lis
        for r in (a, b, c):
            chan.attach(r)
        chan.transmit(a, frame(src=0))
        chan.transmit(c, frame(src=2))
        sim.run_until(1.0)
        ends = lis.of("rx_end")
        # B locked onto one of the overlapping frames and it was corrupted.
        assert len(ends) == 1
        assert ends[0][2] is False


class TestQueries:
    def test_gain_symmetry(self, sim):
        chan = make_channel(sim)
        a = make_radio(sim, 0, (0.0, 0.0))
        b = make_radio(sim, 1, (123.0, 45.0))
        chan.attach(a)
        chan.attach(b)
        assert chan.gain_now(a, b) == pytest.approx(chan.gain_now(b, a))

    def test_rx_power_now(self, sim):
        chan = make_channel(sim)
        a = make_radio(sim, 0, (0.0, 0.0))
        b = make_radio(sim, 1, (250.0, 0.0))
        chan.attach(a)
        chan.attach(b)
        assert chan.rx_power_now(a, b, 0.2818) == pytest.approx(RX, rel=0.01)

    def test_attach_twice_rejected(self, sim):
        chan = make_channel(sim)
        a = make_radio(sim, 0, (0.0, 0.0))
        chan.attach(a)
        with pytest.raises(ValueError):
            chan.attach(a)

    def test_detach(self, sim):
        chan = make_channel(sim)
        a = make_radio(sim, 0, (0.0, 0.0))
        chan.attach(a)
        chan.detach(a)
        assert a not in chan.radios


def _spatial_kwargs(spatial):
    if not spatial:
        return {}
    return {"spatial_index": True, "max_tx_power_w": 0.2818}


class TestDetachSemantics:
    """Documented contract: detach stops future fan-out, not in-flight edges."""

    @pytest.mark.parametrize("spatial", [False, True])
    def test_detach_mid_frame_still_delivers_inflight_signal(self, sim, spatial):
        chan = make_channel(sim, **_spatial_kwargs(spatial))
        tx = make_radio(sim, 0, (0.0, 0.0))
        rx = make_radio(sim, 1, (100.0, 0.0))
        lis = Listener()
        rx.listener = lis
        chan.attach(tx)
        chan.attach(rx)
        f = frame(src=0)
        chan.transmit(tx, f)
        # Detach strictly inside the frame's airtime: the already-scheduled
        # signal_start has fired, the signal_end is still in flight.
        sim.schedule(f.duration_s / 2.0, lambda: chan.detach(rx))
        sim.run_until(1.0)
        assert rx not in chan.radios
        ends = lis.of("rx_end")
        assert len(ends) == 1 and ends[0][2] is True
        # The trailing edge arrived, so the radio's interference bookkeeping
        # is balanced (no stuck arrival energy).
        assert rx.total_power_w == 0.0

    @pytest.mark.parametrize("spatial", [False, True])
    def test_detached_radio_misses_subsequent_frames(self, sim, spatial):
        chan = make_channel(sim, **_spatial_kwargs(spatial))
        tx = make_radio(sim, 0, (0.0, 0.0))
        rx = make_radio(sim, 1, (100.0, 0.0))
        lis = Listener()
        rx.listener = lis
        chan.attach(tx)
        chan.attach(rx)
        chan.detach(rx)
        chan.transmit(tx, frame(src=0))
        sim.run_until(1.0)
        assert lis.events == []

    @pytest.mark.parametrize("spatial", [False, True])
    def test_detach_before_leading_edge_still_delivers(self, sim, spatial):
        """Even the leading edge is 'in flight' once transmit() returned."""
        chan = make_channel(sim, **_spatial_kwargs(spatial))
        tx = make_radio(sim, 0, (0.0, 0.0))
        rx = make_radio(sim, 1, (100.0, 0.0))
        lis = Listener()
        rx.listener = lis
        chan.attach(tx)
        chan.attach(rx)
        chan.transmit(tx, frame(src=0))
        chan.detach(rx)  # same instant, before the propagation delay elapses
        sim.run_until(1.0)
        ends = lis.of("rx_end")
        assert len(ends) == 1 and ends[0][2] is True
