"""Propagation model tests — including the paper's range geometry."""

from __future__ import annotations

import dataclasses
import math
import pickle

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import PAPER_POWER_LEVELS_W, PAPER_POWER_RANGES_M, PhyConfig
from repro.phy.propagation import (
    MIN_DISTANCE_M,
    FreeSpace,
    LogDistanceShadowing,
    TwoRayGround,
    distance,
    model_from_config,
)


class TestDistance:
    def test_euclidean(self):
        assert distance((0, 0), (3, 4)) == 5.0

    def test_zero(self):
        assert distance((1, 1), (1, 1)) == 0.0


class TestFreeSpace:
    def test_inverse_square_law(self):
        m = FreeSpace()
        assert m.gain_at(100.0) / m.gain_at(200.0) == pytest.approx(4.0)

    def test_gain_positive_and_below_unity(self):
        m = FreeSpace()
        g = m.gain_at(10.0)
        assert 0.0 < g < 1.0

    def test_range_for_inverts_gain(self):
        m = FreeSpace()
        p_tx = 0.001
        d = m.range_for(p_tx, 1e-10)
        assert p_tx * m.gain_at(d) == pytest.approx(1e-10, rel=1e-9)

    def test_clamps_tiny_distances(self):
        m = FreeSpace()
        assert m.gain_at(0.0) == m.gain_at(MIN_DISTANCE_M)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            FreeSpace().range_for(0.0, 1e-10)


class TestTwoRayGround:
    def test_crossover_location(self):
        m = TwoRayGround()
        # d_c = 4π·ht·hr/λ ≈ 86.1 m for the WaveLAN configuration.
        assert m.crossover_m == pytest.approx(86.14, abs=0.1)

    def test_continuous_at_crossover(self):
        m = TwoRayGround()
        dc = m.crossover_m
        below = m.gain_at(dc * 0.999999)
        above = m.gain_at(dc * 1.000001)
        assert below == pytest.approx(above, rel=1e-4)

    def test_fourth_power_law_beyond_crossover(self):
        m = TwoRayGround()
        assert m.gain_at(200.0) / m.gain_at(400.0) == pytest.approx(16.0)

    def test_paper_decode_range_at_max_power(self):
        """281.8 mW reaches exactly the NS-2 RXThresh at 250 m."""
        cfg = PhyConfig()
        m = TwoRayGround()
        assert m.range_for(cfg.max_power_w, cfg.rx_threshold_w) == pytest.approx(
            250.0, rel=0.001
        )

    def test_paper_sensing_range_at_max_power(self):
        """281.8 mW reaches exactly the NS-2 CSThresh at 550 m."""
        cfg = PhyConfig()
        m = TwoRayGround()
        assert m.range_for(cfg.max_power_w, cfg.cs_threshold_w) == pytest.approx(
            550.0, rel=0.001
        )

    @pytest.mark.parametrize(
        "power_w,expected_m", list(zip(PAPER_POWER_LEVELS_W, PAPER_POWER_RANGES_M))
    )
    def test_paper_power_level_table(self, power_w, expected_m):
        """Every paper power level reproduces its published decode range."""
        cfg = PhyConfig()
        m = TwoRayGround()
        computed = m.range_for(power_w, cfg.rx_threshold_w)
        # The paper says "roughly correspond"; all levels land within 10 %
        # (most within 1 %; the 1 mW level computes 43.2 m vs "roughly 40 m").
        assert computed == pytest.approx(expected_m, rel=0.10)

    def test_range_for_spans_both_branches(self):
        m = TwoRayGround()
        cfg = PhyConfig()
        # 1 mW resolves on the Friis branch (< 86 m)...
        assert m.range_for(1e-3, cfg.rx_threshold_w) < m.crossover_m
        # ...while 4.8 mW resolves just beyond the crossover.
        assert m.range_for(4.8e-3, cfg.rx_threshold_w) > m.crossover_m

    @given(st.floats(min_value=1.0, max_value=2000.0))
    def test_property_gain_monotone_decreasing(self, d):
        m = TwoRayGround()
        assert m.gain_at(d) >= m.gain_at(d * 1.5)

    @given(
        st.floats(min_value=1e-4, max_value=10.0),
        st.floats(min_value=1e-13, max_value=1e-6),
    )
    def test_property_range_roundtrip(self, p_tx, threshold):
        m = TwoRayGround()
        d = m.range_for(p_tx, threshold)
        if d > MIN_DISTANCE_M:
            assert p_tx * m.gain_at(d) == pytest.approx(threshold, rel=1e-6)

    def test_gain_uses_positions(self):
        m = TwoRayGround()
        assert m.gain((0, 0), (100, 0)) == m.gain_at(100.0)


class TestLogDistanceShadowing:
    def test_matches_friis_with_exponent_two(self):
        lds = LogDistanceShadowing(exponent=2.0, reference_m=1.0)
        fs = FreeSpace()
        assert lds.gain_at(50.0) == pytest.approx(fs.gain_at(50.0), rel=1e-9)

    def test_higher_exponent_attenuates_faster(self):
        soft = LogDistanceShadowing(exponent=2.0)
        hard = LogDistanceShadowing(exponent=4.0)
        assert hard.gain_at(100.0) < soft.gain_at(100.0)

    def test_shadowing_offset_scales_gain(self):
        base = LogDistanceShadowing(shadowing_db=0.0)
        up = LogDistanceShadowing(shadowing_db=10.0)
        assert up.gain_at(100.0) == pytest.approx(10.0 * base.gain_at(100.0))

    def test_range_roundtrip(self):
        m = LogDistanceShadowing(exponent=3.1)
        d = m.range_for(0.01, 1e-10)
        assert 0.01 * m.gain_at(d) == pytest.approx(1e-10, rel=1e-6)


class TestModelFromConfig:
    def test_builds_two_ray_with_config_values(self):
        cfg = PhyConfig()
        m = model_from_config(cfg)
        assert isinstance(m, TwoRayGround)
        assert m.frequency_hz == cfg.frequency_hz
        assert m.height_tx_m == cfg.antenna_height_tx_m


class TestPrecomputedFields:
    """Hoisted constants must not change dataclass semantics or results."""

    MODELS = (
        FreeSpace(),
        TwoRayGround(),
        LogDistanceShadowing(shadowing_db=4.0),
        TwoRayGround(frequency_hz=2.4e9, height_tx_m=2.0, system_loss=1.2),
    )

    def test_frozen_hashable_equal(self):
        for m in self.MODELS:
            clone = type(m)(**{f.name: getattr(m, f.name)
                               for f in dataclasses.fields(m)})
            assert clone == m
            assert hash(clone) == hash(m)
            with pytest.raises(dataclasses.FrozenInstanceError):
                m.frequency_hz = 1.0

    def test_replace_recomputes_derived_constants(self):
        m = dataclasses.replace(TwoRayGround(), frequency_hz=2.4e9)
        assert m.wavelength_m == pytest.approx(3e8 / 2.4e9, rel=1e-3)
        assert m.crossover_m == pytest.approx(
            4.0 * math.pi * 1.5 * 1.5 / m.wavelength_m
        )

    def test_pickle_round_trip(self):
        for m in self.MODELS:
            clone = pickle.loads(pickle.dumps(m))
            assert clone == m
            for d in (1.0, 50.0, 100.0, 400.0):
                assert clone.gain_at(d) == m.gain_at(d)

    def test_wavelength_and_crossover_match_direct_formulas(self):
        m = TwoRayGround()
        lam = 299792458.0 / 914e6
        assert m.wavelength_m == pytest.approx(lam)
        assert m.crossover_m == pytest.approx(4.0 * math.pi * 1.5 * 1.5 / lam)


class TestGainAtMany:
    """The numpy bulk path matches the scalar path to within 1 ulp.

    (Bit-exactness is not guaranteed: ``d**4`` and ``x**2.7`` go through
    CPython's libm pow in the scalar path but numpy's pow in the bulk path.
    The channel hot path only ever uses the scalar ``gain_at``.)
    """

    DISTANCES = [0.0, 0.005, MIN_DISTANCE_M, 1.0, 40.0, 86.0, 86.2, 100.0,
                 250.0, 550.0, 5000.0]

    @pytest.mark.parametrize(
        "model",
        [FreeSpace(), TwoRayGround(), LogDistanceShadowing(shadowing_db=-3.0)],
        ids=lambda m: type(m).__name__,
    )
    def test_matches_scalar_within_ulp(self, model):
        bulk = model.gain_at_many(self.DISTANCES)
        scalar = [model.gain_at(d) for d in self.DISTANCES]
        assert bulk.shape == (len(self.DISTANCES),)
        np.testing.assert_allclose(bulk, scalar, rtol=5e-16, atol=0.0)

    def test_preserves_shape(self):
        d = np.array([[10.0, 100.0], [250.0, 1000.0]])
        out = TwoRayGround().gain_at_many(d)
        assert out.shape == (2, 2)
        assert out[0, 1] == TwoRayGround().gain_at(100.0)

    def test_straddles_crossover_branches(self):
        m = TwoRayGround()
        d = np.array([m.crossover_m * 0.5, m.crossover_m * 2.0])
        out = m.gain_at_many(d)
        # Below the crossover: Friis; above: ground reflection.
        assert out[0] == m._friis.gain_at(d[0])
        assert out[1] == pytest.approx(
            m.gain_tx * m.gain_rx * 1.5**4 / d[1] ** 4
        )

    @given(st.floats(min_value=0.0, max_value=1e5, allow_nan=False))
    def test_property_scalar_bulk_agree(self, d):
        m = TwoRayGround()
        np.testing.assert_allclose(
            m.gain_at_many([d])[0], m.gain_at(d), rtol=5e-16, atol=0.0
        )
