"""Power level table and needed-power estimator tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import PAPER_POWER_LEVELS_W, PhyConfig
from repro.phy.power import PowerLevelTable, needed_tx_power
from repro.phy.propagation import TwoRayGround


@pytest.fixture
def table() -> PowerLevelTable:
    return PowerLevelTable(PAPER_POWER_LEVELS_W)


class TestTableConstruction:
    def test_paper_table_has_ten_levels(self, table):
        assert len(table) == 10

    def test_min_max(self, table):
        assert table.min_w == pytest.approx(1e-3)
        assert table.max_w == pytest.approx(281.8e-3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PowerLevelTable(())

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            PowerLevelTable((2e-3, 1e-3))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PowerLevelTable((0.0, 1e-3))

    def test_index_of(self, table):
        assert table.index_of(1e-3) == 0
        with pytest.raises(ValueError):
            table.index_of(5e-3)


class TestSelection:
    def test_exact_level_selected(self, table):
        assert table.select(15e-3) == 15e-3

    def test_rounds_up_between_levels(self, table):
        assert table.select(5e-3) == 7.25e-3

    def test_clamps_above_max(self, table):
        assert table.select(1.0) == table.max_w

    def test_below_min_selects_min(self, table):
        assert table.select(1e-9) == table.min_w

    def test_rejects_nonpositive(self, table):
        with pytest.raises(ValueError):
            table.select(0.0)

    @given(st.floats(min_value=1e-9, max_value=1.0))
    def test_property_selected_covers_needed(self, needed):
        table = PowerLevelTable(PAPER_POWER_LEVELS_W)
        chosen = table.select(needed)
        # The selected level meets the requirement unless it exceeds the
        # table maximum (clamped, per the paper's escalation-to-max rule).
        assert chosen >= min(needed, table.max_w)

    @given(st.floats(min_value=1e-9, max_value=280e-3))
    def test_property_selection_is_tight(self, needed):
        """No lower level would also satisfy the requirement."""
        table = PowerLevelTable(PAPER_POWER_LEVELS_W)
        chosen = table.select(needed)
        idx = table.index_of(chosen)
        if idx > 0:
            assert table.levels_w[idx - 1] < needed


class TestStepUp:
    def test_steps_one_class(self, table):
        assert table.step_up(1e-3) == 2e-3

    def test_from_between_levels(self, table):
        assert table.step_up(5e-3) == 7.25e-3

    def test_saturates_at_max(self, table):
        assert table.step_up(table.max_w) == table.max_w

    def test_is_max(self, table):
        assert table.is_max(table.max_w)
        assert table.is_max(1.0)
        assert not table.is_max(75.8e-3)

    def test_escalation_reaches_max_in_finite_steps(self, table):
        """Paper Step 2: repeated one-class escalation terminates at max."""
        p = table.min_w
        for _ in range(len(table)):
            p = table.step_up(p)
        assert p == table.max_w


class TestNeededTxPower:
    def test_inverts_observed_gain(self):
        # Frame sent at 100 mW observed at 1e-9 W: gain 1e-8.  Reaching a
        # 3.652e-10 threshold needs 36.52 mW.
        needed = needed_tx_power(1e-9, 0.1, 3.652e-10)
        assert needed == pytest.approx(3.652e-2)

    def test_margin_scales_linearly(self):
        base = needed_tx_power(1e-9, 0.1, 3.652e-10, margin=1.0)
        doubled = needed_tx_power(1e-9, 0.1, 3.652e-10, margin=2.0)
        assert doubled == pytest.approx(2.0 * base)

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            needed_tx_power(0.0, 0.1, 1e-10)
        with pytest.raises(ValueError):
            needed_tx_power(1e-9, 0.0, 1e-10)
        with pytest.raises(ValueError):
            needed_tx_power(1e-9, 0.1, 0.0)

    def test_rejects_margin_below_one(self):
        with pytest.raises(ValueError):
            needed_tx_power(1e-9, 0.1, 1e-10, margin=0.5)

    @given(
        st.floats(min_value=1e-12, max_value=1e-3),
        st.floats(min_value=1e-3, max_value=0.3),
    )
    def test_property_needed_power_reaches_threshold(self, observed, tx_used):
        """Transmitting at the estimate exactly meets the threshold."""
        threshold = 3.652e-10
        needed = needed_tx_power(observed, tx_used, threshold)
        gain = observed / tx_used
        assert needed * gain == pytest.approx(threshold, rel=1e-9)


class TestDerivedTables:
    def test_decode_ranges_ascend_with_power(self):
        cfg = PhyConfig()
        table = PowerLevelTable(cfg.power_levels_w)
        ranges = table.decode_ranges(TwoRayGround(), cfg.rx_threshold_w)
        assert ranges == sorted(ranges)
        assert ranges[-1] == pytest.approx(250.0, rel=0.001)

    def test_sensing_exceeds_decode_everywhere(self):
        cfg = PhyConfig()
        table = PowerLevelTable(cfg.power_levels_w)
        model = TwoRayGround()
        decode = table.decode_ranges(model, cfg.rx_threshold_w)
        sense = table.sensing_ranges(model, cfg.cs_threshold_w)
        assert all(s > d for s, d in zip(sense, decode))

    def test_level_for_distance_covers(self):
        cfg = PhyConfig()
        table = PowerLevelTable(cfg.power_levels_w)
        model = TwoRayGround()
        level = table.level_for_distance(100.0, model, cfg.rx_threshold_w)
        # A 100 m link needs the 7.25 mW level per the paper's table.
        assert level == pytest.approx(7.25e-3)

    def test_level_for_distance_beyond_reach_returns_max(self):
        cfg = PhyConfig()
        table = PowerLevelTable(cfg.power_levels_w)
        assert table.level_for_distance(
            400.0, TwoRayGround(), cfg.rx_threshold_w
        ) == table.max_w
