"""Spatial-index channel vs brute-force oracle: exact schedule equivalence.

The grid-indexed fan-out (``Channel(spatial_index=True)``) must produce the
*exact* event schedule of the brute-force all-radios scan — same arrival
times, same received powers (bit-identical floats), same delivery order —
for any placement, any mobility, any transmission pattern.  These tests
build two mirrored worlds (identically seeded mobility, identical
transmission scripts), run both, and compare the recorded signal-edge logs
with plain ``==``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MobilityConfig, PhyConfig
from repro.mobility.static import StaticMobility
from repro.mobility.waypoint import RandomWaypoint
from repro.phy.channel import Channel
from repro.phy.frame import PhyFrame
from repro.phy.propagation import TwoRayGround
from repro.sim.kernel import Simulator

PHY = PhyConfig()
MAX_POWER_W = PHY.max_power_w
SPEED_MPS = 30.0  # fast nodes stress reindexing within a short horizon
HORIZON_S = 20.0


class RecordingRadio:
    """Duck-typed radio that logs every signal edge it is handed."""

    def __init__(self, sim, node_id, mobility, log):
        self.sim = sim
        self.node_id = node_id
        self.mobility = mobility
        self.log = log

    @property
    def position(self):
        return self.mobility.position_at(self.sim.now)

    def begin_tx(self, frame):
        pass

    def signal_start(self, frame, power):
        self.log.append(("start", self.sim.now, self.node_id, frame.frame_id, power))

    def signal_end(self, frame_id):
        self.log.append(("end", self.sim.now, self.node_id, frame_id))


def build_world(seed, n, side_m, mobile, spatial_index, fanout="scalar"):
    """One (sim, channel, radios, log) world; same seed ⇒ same world."""
    sim = Simulator()
    chan = Channel(
        sim,
        TwoRayGround(),
        interference_floor_w=PHY.interference_floor_w,
        spatial_index=spatial_index,
        max_tx_power_w=MAX_POWER_W,
        max_speed_mps=SPEED_MPS if mobile else 0.0,
        reindex_interval_s=0.5,
        fanout=fanout,
    )
    rng = np.random.default_rng(seed)
    mob_cfg = MobilityConfig(
        speed_mps=SPEED_MPS, pause_s=0.2, field_width_m=side_m, field_height_m=side_m
    )
    log: list = []
    radios = []
    for i in range(n):
        pos = (float(rng.uniform(0.0, side_m)), float(rng.uniform(0.0, side_m)))
        if mobile:
            mob = RandomWaypoint(np.random.default_rng(seed * 1009 + i), mob_cfg, pos)
        else:
            mob = StaticMobility(pos)
        radio = RecordingRadio(sim, i, mob, log)
        chan.attach(radio)
        radios.append(radio)
    return sim, chan, radios, log


def make_script(seed, n, tx_count):
    """A reproducible transmission script: (time, src, power, size, fid)."""
    rng = np.random.default_rng(seed ^ 0xBEEF)
    times = np.sort(rng.uniform(0.0, HORIZON_S, size=tx_count))
    levels = PHY.power_levels_w
    return [
        (
            float(times[k]),
            int(rng.integers(0, n)),
            float(levels[int(rng.integers(0, len(levels)))]),
            int(rng.integers(20, 600)),
            k + 1,
        )
        for k in range(tx_count)
    ]


def run_script(seed, n, side_m, mobile, spatial_index, script, fanout="scalar"):
    sim, chan, radios, log = build_world(seed, n, side_m, mobile, spatial_index, fanout)
    for t, src, power, size, fid in script:
        frame = PhyFrame(
            payload=None,
            size_bytes=size,
            bitrate_bps=2e6,
            plcp_s=0.0,
            tx_power_w=power,
            src=src,
            frame_id=fid,
        )
        sim.schedule(t, lambda s=radios[src], f=frame: chan.transmit(s, f))
    sim.run_until(HORIZON_S + 10.0)
    return chan, log


def assert_equivalent(seed, n, side_m, mobile, tx_count=40, require_events=False):
    script = make_script(seed, n, tx_count)
    _, brute = run_script(seed, n, side_m, mobile, False, script)
    _, indexed = run_script(seed, n, side_m, mobile, True, script)
    _, soa = run_script(seed, n, side_m, mobile, True, script, fanout="soa")
    assert brute == indexed
    # The struct-of-arrays vector pass must be bit-identical to the oracle
    # too (TwoRayGround declares bulk_exact — see repro.phy.propagation).
    assert brute == soa
    if require_events:
        # These geometries are dense enough that an all-empty log would mean
        # the equality assertion above was vacuous.
        assert brute


class TestScheduleEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(2, 40),
        side_m=st.sampled_from([300.0, 1000.0, 3000.0]),
    )
    def test_static_random_worlds(self, seed, n, side_m):
        assert_equivalent(seed, n, side_m, mobile=False)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(2, 30),
        side_m=st.sampled_from([500.0, 2000.0]),
    )
    def test_mobile_random_worlds(self, seed, n, side_m):
        assert_equivalent(seed, n, side_m, mobile=True)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_dense_static_seeds(self, seed):
        assert_equivalent(
            seed, n=50, side_m=1000.0, mobile=False, tx_count=80, require_events=True
        )

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sparse_mobile_seeds(self, seed):
        assert_equivalent(
            seed, n=60, side_m=5000.0, mobile=True, tx_count=80, require_events=True
        )

    @pytest.mark.parametrize("seed", [1, 2])
    def test_dense_block_static_seeds(self, seed):
        """Candidate blocks exceed ``_SOA_MIN`` so the vector pass engages.

        The smaller worlds above stay below the SoA minimum block size and
        therefore only cover its scalar fallback; this geometry packs ≥ 64
        static radios into the 3×3 cell blocks around most transmitters.
        """
        assert_equivalent(
            seed, n=150, side_m=1500.0, mobile=False, tx_count=60,
            require_events=True,
        )

    def test_unattached_transmitter_matches_brute(self):
        seed, n, side = 9, 10, 800.0
        logs = []
        for flag in (False, True):
            sim, chan, radios, log = build_world(seed, n, side, False, flag)
            lone = RecordingRadio(sim, 99, StaticMobility((side / 2, side / 2)), log)
            frame = PhyFrame(
                payload=None, size_bytes=100, bitrate_bps=2e6, plcp_s=0.0,
                tx_power_w=MAX_POWER_W, src=99, frame_id=1,
            )
            chan.transmit(lone, frame)
            sim.run_until(1.0)
            logs.append(log)
        assert logs[0] == logs[1] and logs[0]

    def test_detach_and_reattach_sequence_matches_brute(self):
        seed, n, side = 5, 12, 900.0
        logs = []
        for flag in (False, True):
            sim, chan, radios, log = build_world(seed, n, side, False, flag)

            def fire(src, fid, when, s=sim, c=chan, r=radios):
                frame = PhyFrame(
                    payload=None, size_bytes=200, bitrate_bps=2e6, plcp_s=0.0,
                    tx_power_w=MAX_POWER_W, src=src, frame_id=fid,
                )
                s.schedule(when, lambda: c.transmit(r[src], frame))

            fire(0, 1, 0.5)
            sim.schedule(1.0, lambda: chan.detach(radios[3]))
            fire(1, 2, 1.5)  # radio 3 must not hear this
            sim.schedule(2.0, lambda: chan.attach(radios[3]))
            fire(2, 3, 2.5)  # radio 3 hears again, now last in attach order
            sim.run_until(5.0)
            logs.append(log)
        assert logs[0] == logs[1] and logs[0]


class TestGainCacheInvalidation:
    """The epoch cache must never serve a gain computed at a stale position."""

    def _world(self, mobile):
        return build_world(seed=21, n=2, side_m=400.0, mobile=mobile,
                           spatial_index=True)

    def _transmit_at(self, sim, chan, src, t, fid):
        frame = PhyFrame(
            payload=None, size_bytes=100, bitrate_bps=2e6, plcp_s=0.0,
            tx_power_w=MAX_POWER_W, src=src.node_id, frame_id=fid,
        )
        sim.schedule(t, lambda: chan.transmit(src, frame))

    def test_waypoint_movement_invalidates_cached_gain(self):
        sim, chan, radios, log = self._world(mobile=True)
        # Identically seeded replicas of both trajectories give the oracle
        # gains (sampled in time order — waypoint queries are monotonic).
        mob_cfg = MobilityConfig(speed_mps=SPEED_MPS, pause_s=0.2,
                                 field_width_m=400.0, field_height_m=400.0)
        replicas = [
            RandomWaypoint(
                np.random.default_rng(21 * 1009 + i), mob_cfg,
                radios[i].mobility._last_pos,
            )
            for i in (0, 1)
        ]
        prop = TwoRayGround()
        tx_times = (0.1, 5.0, 12.0)
        expected = [
            MAX_POWER_W
            * prop.gain(replicas[0].position_at(t), replicas[1].position_at(t))
            for t in tx_times
        ]
        for fid, t in enumerate(tx_times, start=1):
            self._transmit_at(sim, chan, radios[0], t, fid)
        sim.run_until(HORIZON_S)
        starts = [e for e in log if e[0] == "start" and e[2] == 1]
        assert len(starts) == 3
        assert [e[4] for e in starts] == expected
        # The node genuinely moved between transmissions, so the powers
        # must differ — a stale cache would repeat the first value.
        powers = [e[4] for e in starts]
        assert len(set(powers)) == 3

    def test_static_world_caches_each_link_once(self):
        sim, chan, radios, log = self._world(mobile=False)
        for fid, t in enumerate((0.1, 1.0, 2.0, 3.0), start=1):
            self._transmit_at(sim, chan, radios[0], t, fid)
        sim.run_until(10.0)
        starts = [e for e in log if e[0] == "start"]
        assert len(starts) == 4
        assert len({e[4] for e in starts}) == 1  # same link, same gain
        # One ordered-pair cache entry, computed once, valid forever:
        # src_seq 0 at epoch 0 → {rx_seq 1: (epoch 0, gain, dist)}.
        assert set(chan._gains) == {0}
        src_epoch, links = chan._gains[0]
        assert src_epoch == 0
        assert set(links) == {1} and links[1][0] == 0

    def test_source_movement_evicts_its_cached_links(self):
        """A moving source's stale links are dropped, not accumulated."""
        sim, chan, radios, log = self._world(mobile=True)
        tx_times = (0.1, 5.0, 12.0)
        for fid, t in enumerate(tx_times, start=1):
            self._transmit_at(sim, chan, radios[0], t, fid)
        sim.run_until(HORIZON_S)
        assert len([e for e in log if e[0] == "start"]) == 3
        # The source moved between every transmission, so the cache holds
        # only the *latest* epoch's links — one per current candidate, with
        # no stale-epoch residue.
        src_epoch, links = chan._gains[0]
        assert src_epoch == radios[0].mobility.epoch
        assert len(links) == 1  # the single co-located receiver, once

    def test_pause_legs_keep_epoch_and_reuse_cache(self):
        mob = RandomWaypoint(
            np.random.default_rng(3),
            MobilityConfig(speed_mps=3.0, pause_s=3.0),
            (100.0, 100.0),
        )
        mob.position_at(0.0)
        e0 = mob.epoch
        mob.position_at(1.0)  # still inside the initial 3 s pause
        assert mob.epoch == e0
        mob.position_at(10.0)  # moving now
        assert mob.epoch > e0


class TestSpatialIndexGuards:
    """The index fails loudly whenever its culling guarantee would not hold."""

    def _channel(self, max_speed=0.0):
        sim = Simulator()
        return sim, Channel(
            sim,
            TwoRayGround(),
            interference_floor_w=PHY.interference_floor_w,
            spatial_index=True,
            max_tx_power_w=MAX_POWER_W,
            max_speed_mps=max_speed,
        )

    def test_attach_rejects_mobility_faster_than_channel_bound(self):
        sim, chan = self._channel(max_speed=3.0)
        mob_cfg = MobilityConfig(speed_mps=3.0, pause_s=1.0)
        ok = RecordingRadio(
            sim, 0,
            RandomWaypoint(np.random.default_rng(1), mob_cfg, (0.0, 0.0)),
            [],
        )
        chan.attach(ok)  # exactly at the bound: allowed
        fast = RecordingRadio(
            sim, 1,
            RandomWaypoint(np.random.default_rng(2), mob_cfg, (5.0, 5.0),
                           speed_range=(1.0, 9.0)),
            [],
        )
        with pytest.raises(ValueError, match="max_speed_mps"):
            chan.attach(fast)
        assert fast not in chan.radios

    def test_attach_rejects_radio_without_mobility_model(self):
        sim, chan = self._channel()

        class BareRadio:
            node_id = 0
            position = (0.0, 0.0)

        with pytest.raises(ValueError, match="no mobility model"):
            chan.attach(BareRadio())

    def test_transmit_rejects_power_above_channel_bound(self):
        sim, chan = self._channel()
        radio = RecordingRadio(sim, 0, StaticMobility((0.0, 0.0)), [])
        chan.attach(radio)
        frame = PhyFrame(
            payload=None, size_bytes=10, bitrate_bps=2e6, plcp_s=0.0,
            tx_power_w=MAX_POWER_W * 2.0, src=0, frame_id=1,
        )
        with pytest.raises(ValueError, match="max_tx_power_w"):
            chan.transmit(radio, frame)

    def test_spatial_index_requires_max_tx_power(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="max_tx_power_w"):
            Channel(sim, TwoRayGround(), spatial_index=True)
