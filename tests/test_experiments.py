"""Experiment harness tests: builder, sweep, ranges, determinism."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import MobilityConfig, ScenarioConfig, TrafficConfig
from repro.experiments.ranges import max_power_ranges, power_level_table
from repro.experiments.scenario import MAC_REGISTRY, build_network
from repro.experiments.sweep import run_load_sweep


def small_cfg(**overrides) -> ScenarioConfig:
    defaults = dict(
        node_count=8,
        duration_s=6.0,
        seed=2,
        traffic=TrafficConfig(flow_count=2, offered_load_bps=100e3),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestBuilder:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            build_network(small_cfg(), "csma-cd")

    def test_rejects_static_routing_with_mobility(self):
        with pytest.raises(ValueError):
            build_network(small_cfg(), "basic", routing="static", mobile=True)

    def test_rejects_wrong_position_count(self):
        with pytest.raises(ValueError):
            build_network(small_cfg(), "basic", positions=[(0, 0)])

    def test_registry_covers_the_paper_protocols(self):
        assert set(MAC_REGISTRY) == {"basic", "pcmac", "scheme1", "scheme2"}

    def test_pcmac_gets_control_channel(self):
        net = build_network(small_cfg(), "pcmac")
        assert net.control_channel is not None
        assert len(net.control_channel.radios) == 8

    def test_non_pcmac_has_no_control_channel(self):
        net = build_network(small_cfg(), "basic")
        assert net.control_channel is None

    def test_flow_pairs_distinct_and_valid(self):
        net = build_network(small_cfg(), "basic")
        assert len(net.flow_pairs) == 2
        for src, dst in net.flow_pairs:
            assert src != dst
            assert 0 <= src < 8
            assert 0 <= dst < 8

    def test_explicit_flow_pairs_honoured(self):
        net = build_network(small_cfg(), "basic", flow_pairs=[(0, 1), (2, 3)])
        assert net.flow_pairs == [(0, 1), (2, 3)]


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = build_network(small_cfg(), "pcmac").run()
        b = build_network(small_cfg(), "pcmac").run()
        assert a.throughput_kbps == b.throughput_kbps
        assert a.avg_delay_ms == b.avg_delay_ms
        assert a.events_executed == b.events_executed

    def test_different_seeds_differ(self):
        a = build_network(small_cfg(seed=1), "basic").run()
        b = build_network(small_cfg(seed=99), "basic").run()
        # Placement/mobility/flows all change: byte-identical results would
        # indicate the seed is ignored.
        assert (a.throughput_kbps, a.events_executed) != (
            b.throughput_kbps,
            b.events_executed,
        )

    def test_common_random_numbers_across_protocols(self):
        """Same seed → same placement and flow endpoints for every arm."""
        a = build_network(small_cfg(), "basic")
        b = build_network(small_cfg(), "pcmac")
        assert a.flow_pairs == b.flow_pairs
        assert [n.position for n in a.nodes] == [n.position for n in b.nodes]


class TestRunResult:
    def test_result_fields_populated(self):
        result = build_network(small_cfg(), "basic").run()
        assert result.protocol == "basic"
        assert result.duration_s > 0
        assert result.sent > 0
        assert 0.0 <= result.delivery_ratio <= 1.0
        assert result.events_executed > 0
        assert result.wallclock_s > 0

    def test_throughput_bounded_by_offered_load(self):
        result = build_network(small_cfg(), "basic").run()
        assert result.throughput_kbps <= 100.0 * 1.05

    def test_row_renders(self):
        result = build_network(small_cfg(), "basic").run()
        row = result.row()
        assert "basic" in row
        assert "thr=" in row


@pytest.mark.slow
class TestSweep:
    """Full protocol × load × seed sweeps — the slowest scenario tests here.

    Deselected from the tier-1 default; the campaign runner tests cover the
    grid expansion and result assembly with smaller simulations.
    """

    def test_grid_is_complete(self):
        sweep = run_load_sweep(
            small_cfg(duration_s=4.0),
            ["basic", "pcmac"],
            [50.0, 100.0],
            seeds=(1, 2),
        )
        assert set(sweep.results) == {
            ("basic", 50.0),
            ("basic", 100.0),
            ("pcmac", 50.0),
            ("pcmac", 100.0),
        }
        for runs in sweep.results.values():
            assert len(runs) == 2

    def test_series_extraction(self):
        sweep = run_load_sweep(
            small_cfg(duration_s=4.0), ["basic"], [50.0, 100.0], seeds=(1,)
        )
        thr = sweep.throughput_series()
        dly = sweep.delay_series()
        assert len(thr["basic"]) == 2
        assert len(dly["basic"]) == 2

    def test_offered_load_is_applied(self):
        sweep = run_load_sweep(
            small_cfg(duration_s=4.0), ["basic"], [50.0, 100.0], seeds=(1,)
        )
        runs_50 = sweep.results[("basic", 50.0)]
        runs_100 = sweep.results[("basic", 100.0)]
        assert runs_100[0].sent > runs_50[0].sent


class TestRanges:
    def test_table_rows_match_levels(self):
        rows = power_level_table()
        assert [round(r.power_mw, 2) for r in rows] == [
            1.0, 2.0, 3.45, 4.8, 7.25, 10.6, 15.0, 36.6, 75.8, 281.8,
        ]

    def test_max_power_geometry(self):
        decode, sense = max_power_ranges()
        assert decode == pytest.approx(250.0, rel=0.001)
        assert sense == pytest.approx(550.0, rel=0.001)

    def test_sensing_always_exceeds_decoding(self):
        for row in power_level_table():
            assert row.sensing_range_m > row.computed_range_m
