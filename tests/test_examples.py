"""Smoke tests: every shipped example must run and print its story.

The examples are part of the public deliverable; running them in CI keeps
them honest against API drift.  Each is imported as a module and its
``main()`` invoked with a trimmed configuration via monkeypatching where the
full run would be slow.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    @pytest.mark.parametrize(
        "name",
        ["quickstart", "asymmetric_link", "spatial_reuse", "mobile_aodv"],
    )
    def test_example_file_present(self, name):
        assert (EXAMPLES_DIR / f"{name}.py").is_file()


class TestExamplesRun:
    @pytest.mark.slow
    def test_asymmetric_link_runs(self, capsys):
        mod = load_example("asymmetric_link")
        # Shorten the scenario: patch the runner's duration via run().
        results = {p: mod.run(p) for p in ("scheme2", "pcmac")}
        _, flows_s2 = results["scheme2"]
        _, flows_pc = results["pcmac"]
        assert flows_pc[0].delivery_ratio > flows_s2[0].delivery_ratio

    @pytest.mark.slow
    def test_spatial_reuse_runs(self):
        mod = load_example("spatial_reuse")
        basic = mod.run("basic")
        pcmac = mod.run("pcmac")
        assert pcmac.throughput_kbps > basic.throughput_kbps

    def test_quickstart_main_prints_table(self, capsys, monkeypatch):
        mod = load_example("quickstart")
        # Trim the scenario so the smoke test stays fast.
        import repro

        original = repro.ScenarioConfig

        def small_config(**kwargs):
            kwargs["node_count"] = 10
            kwargs["duration_s"] = 5.0
            return original(**kwargs)

        monkeypatch.setattr(mod, "ScenarioConfig", small_config)
        mod.main()
        out = capsys.readouterr().out
        for proto in ("basic", "pcmac", "scheme1", "scheme2"):
            assert proto in out

    def test_mobile_aodv_main_prints_routing_stats(self, capsys, monkeypatch):
        mod = load_example("mobile_aodv")
        import repro

        original = repro.ScenarioConfig

        def small_config(**kwargs):
            kwargs["node_count"] = 12
            kwargs["duration_s"] = 5.0
            return original(**kwargs)

        monkeypatch.setattr(mod, "ScenarioConfig", small_config)
        monkeypatch.setattr(sys, "argv", ["mobile_aodv.py", "pcmac"])
        mod.main()
        out = capsys.readouterr().out
        assert "aodv" in out
        assert "tx energy" in out
