"""Smoke tests: every shipped example must run and print its story.

The examples are part of the public deliverable; running them in CI keeps
them honest against API drift.  Each is imported as a module and its
``main()`` invoked with a trimmed configuration via monkeypatching where the
full run would be slow.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    @pytest.mark.parametrize(
        "name",
        ["quickstart", "asymmetric_link", "spatial_reuse", "mobile_aodv"],
    )
    def test_example_file_present(self, name):
        assert (EXAMPLES_DIR / f"{name}.py").is_file()

    @pytest.mark.parametrize(
        "name",
        [
            "grid_poisson.spec.json",
            "battery_lifetime.spec.json",
            "dense_capture.spec.json",
        ],
    )
    def test_spec_file_present(self, name):
        assert (EXAMPLES_DIR / name).is_file()


class TestDenseCaptureSpec:
    """The SINR-reception example stays honest."""

    def load(self):
        from repro.scenariospec import ScenarioSpec

        return ScenarioSpec.load(EXAMPLES_DIR / "dense_capture.spec.json")

    def test_spec_declares_the_sinr_scenario(self):
        from repro.scenariospec import ScenarioSpec

        spec = self.load()
        assert spec.reception.name == "sinr"
        assert spec.placement.name == "cluster"
        assert spec.mobility.name == "static"
        assert ScenarioSpec.from_json(spec.to_json()).key() == spec.key()

    def test_run_classifies_drops(self):
        result = self.load().run()
        totals = result.mac_totals
        drops = (
            totals["rx_drop_collision"]
            + totals["rx_drop_capture_lost"]
            + totals["rx_drop_below_sensitivity"]
        )
        assert drops > 0
        assert result.received > 0


class TestBatteryLifetimeSpec:
    """The docs/scenarios.md walkthrough artifact stays honest."""

    def load(self):
        from repro.scenariospec import ScenarioSpec

        return ScenarioSpec.load(EXAMPLES_DIR / "battery_lifetime.spec.json")

    def test_spec_declares_the_tutorial_scenario(self):
        spec = self.load()
        assert spec.mac.name == "pcmac"
        assert spec.placement.name == "line"
        assert spec.energy.name == "wavelan"
        assert dict(spec.energy.params)["battery_j"] == 30.0
        assert spec.flow_pairs == ((0, 5),)
        # Round-trips and hashes like any campaign cell.
        from repro.scenariospec import ScenarioSpec

        assert ScenarioSpec.from_json(spec.to_json()).key() == spec.key()

    def test_runs_to_battery_exhaustion(self):
        spec = self.load()
        result = spec.run()
        report = result.energy
        assert report is not None
        # 30 J at ≥ 1.15 W idle draw cannot survive the 40 s horizon.
        assert len(report.deaths) == spec.cfg.node_count
        assert report.first_death_s < report.last_death_s < spec.cfg.duration_s
        # The relays carry the chain's TX+RX load and die first; the sink
        # (node 5, mostly idle) outlives everyone.
        by_id = {n.node_id: n for n in report.nodes}
        assert max(by_id, key=lambda i: by_id[i].died_at_s) == 5
        assert by_id[2].died_at_s < by_id[5].died_at_s
        # Delivery happened before the lights went out.
        assert result.received > 0


class TestExamplesRun:
    @pytest.mark.slow
    def test_asymmetric_link_runs(self, capsys):
        mod = load_example("asymmetric_link")
        # Shorten the scenario: patch the runner's duration via run().
        results = {p: mod.run(p) for p in ("scheme2", "pcmac")}
        _, flows_s2 = results["scheme2"]
        _, flows_pc = results["pcmac"]
        assert flows_pc[0].delivery_ratio > flows_s2[0].delivery_ratio

    @pytest.mark.slow
    def test_spatial_reuse_runs(self):
        mod = load_example("spatial_reuse")
        basic = mod.run("basic")
        pcmac = mod.run("pcmac")
        assert pcmac.throughput_kbps > basic.throughput_kbps

    def test_quickstart_main_prints_table(self, capsys, monkeypatch):
        mod = load_example("quickstart")
        # Trim the scenario so the smoke test stays fast.
        import repro

        original = repro.ScenarioConfig

        def small_config(**kwargs):
            kwargs["node_count"] = 10
            kwargs["duration_s"] = 5.0
            return original(**kwargs)

        monkeypatch.setattr(mod, "ScenarioConfig", small_config)
        mod.main()
        out = capsys.readouterr().out
        for proto in ("basic", "pcmac", "scheme1", "scheme2"):
            assert proto in out

    def test_mobile_aodv_main_prints_routing_stats(self, capsys, monkeypatch):
        mod = load_example("mobile_aodv")
        import repro

        original = repro.ScenarioConfig

        def small_config(**kwargs):
            kwargs["node_count"] = 12
            kwargs["duration_s"] = 5.0
            return original(**kwargs)

        monkeypatch.setattr(mod, "ScenarioConfig", small_config)
        monkeypatch.setattr(sys, "argv", ["mobile_aodv.py", "pcmac"])
        mod.main()
        out = capsys.readouterr().out
        assert "aodv" in out
        assert "tx energy" in out
