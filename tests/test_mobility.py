"""Mobility model and placement tests."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import MobilityConfig
from repro.mobility.placement import grid_positions, line_positions, uniform_positions
from repro.mobility.static import StaticMobility
from repro.mobility.waypoint import RandomWaypoint


class TestStatic:
    def test_position_constant(self):
        m = StaticMobility((3.0, 4.0))
        assert m.position_at(0.0) == (3.0, 4.0)
        assert m.position_at(1e6) == (3.0, 4.0)


class TestRandomWaypoint:
    def cfg(self, **overrides) -> MobilityConfig:
        kwargs = dict(speed_mps=3.0, pause_s=3.0, field_width_m=1000.0,
                      field_height_m=1000.0)
        kwargs.update(overrides)
        return MobilityConfig(**kwargs)

    def test_initial_pause_keeps_start_position(self):
        m = RandomWaypoint(np.random.default_rng(1), self.cfg(), (10.0, 20.0))
        assert m.position_at(0.0) == (10.0, 20.0)
        assert m.position_at(2.9) == (10.0, 20.0)

    def test_moves_after_pause(self):
        m = RandomWaypoint(np.random.default_rng(1), self.cfg(), (10.0, 20.0))
        later = m.position_at(10.0)
        assert later != (10.0, 20.0)

    def test_speed_bounds_displacement(self):
        """Between any two query times the node moves at most speed·Δt."""
        m = RandomWaypoint(np.random.default_rng(2), self.cfg(), (500.0, 500.0))
        prev = m.position_at(0.0)
        for step in range(1, 400):
            t = step * 0.5
            cur = m.position_at(t)
            moved = math.hypot(cur[0] - prev[0], cur[1] - prev[1])
            assert moved <= 3.0 * 0.5 + 1e-9
            prev = cur

    def test_stays_in_field(self):
        m = RandomWaypoint(np.random.default_rng(3), self.cfg(), (500.0, 500.0))
        for step in range(1000):
            x, y = m.position_at(step * 1.0)
            assert 0.0 <= x <= 1000.0
            assert 0.0 <= y <= 1000.0

    def test_deterministic_given_rng_seed(self):
        a = RandomWaypoint(np.random.default_rng(7), self.cfg(), (1.0, 2.0))
        b = RandomWaypoint(np.random.default_rng(7), self.cfg(), (1.0, 2.0))
        for t in (0.0, 5.0, 17.3, 120.0):
            assert a.position_at(t) == b.position_at(t)

    def test_zero_speed_never_moves(self):
        m = RandomWaypoint(
            np.random.default_rng(1), self.cfg(speed_mps=0.0), (10.0, 20.0)
        )
        assert m.position_at(1e5) == (10.0, 20.0)

    def test_speed_range_draws_within_bounds(self):
        m = RandomWaypoint(
            np.random.default_rng(4),
            self.cfg(),
            (0.0, 0.0),
            speed_range=(1.0, 5.0),
        )
        # Sample positions densely; implied speeds must stay ≤ 5 m/s.
        prev = m.position_at(0.0)
        for step in range(1, 200):
            t = step * 0.5
            cur = m.position_at(t)
            moved = math.hypot(cur[0] - prev[0], cur[1] - prev[1])
            assert moved <= 5.0 * 0.5 + 1e-9
            prev = cur

    # ------------------------------------------------- pause/boundary edges

    def test_initial_pause_boundary_is_exact(self):
        """The node is pinned at the start until exactly ``pause_s``."""
        m = RandomWaypoint(np.random.default_rng(8), self.cfg(), (50.0, 60.0))
        assert m.position_at(3.0 - 1e-9) == (50.0, 60.0)
        # At the boundary itself the move leg has fraction 0 — still there.
        assert m.position_at(3.0) == (50.0, 60.0)
        # Strictly inside the move leg the node has left the start.
        assert m.position_at(3.5) != (50.0, 60.0)

    def test_pause_holds_position_at_waypoint(self):
        """During a pause leg the position equals the reached waypoint."""
        m = RandomWaypoint(np.random.default_rng(9), self.cfg(), (500.0, 500.0))
        # Advance into the first move leg, then read its schedule.
        m.position_at(3.1)
        assert not m._paused
        arrival, dest = m._t1, m._p1
        # Throughout the following pause the node sits exactly at dest.
        for dt in (0.0, 1.0, 2.999):
            assert m.position_at(arrival + dt) == dest

    def test_zero_pause_chains_move_legs(self):
        m = RandomWaypoint(
            np.random.default_rng(10), self.cfg(pause_s=0.0), (500.0, 500.0)
        )
        # With pause_s = 0 the initial pause is empty; the node is moving
        # from t = 0 and its trajectory stays inside the field.
        for step in range(2000):
            x, y = m.position_at(step * 0.5)
            assert 0.0 <= x <= 1000.0
            assert 0.0 <= y <= 1000.0

    def test_waypoints_respect_rectangular_field(self):
        """A non-square field bounds each axis independently."""
        cfg = self.cfg(field_width_m=800.0, field_height_m=50.0)
        m = RandomWaypoint(np.random.default_rng(11), cfg, (400.0, 25.0))
        for step in range(3000):
            x, y = m.position_at(step * 1.0)
            assert 0.0 <= x <= 800.0
            assert 0.0 <= y <= 50.0

    def test_query_before_current_leg_clamps_to_leg_start(self):
        """Lazy legs cannot rewind: an earlier query pins to the leg start."""
        m = RandomWaypoint(np.random.default_rng(12), self.cfg(), (0.0, 0.0))
        m.position_at(100.0)  # advance well past several legs
        leg_start = m._p0
        assert m.position_at(0.0) == leg_start

    def test_long_horizon_containment_many_seeds(self):
        """Trajectories never escape the field over hours of model time."""
        for seed in range(5):
            m = RandomWaypoint(
                np.random.default_rng(seed), self.cfg(), (500.0, 500.0)
            )
            for t in range(0, 7200, 60):
                x, y = m.position_at(float(t))
                assert 0.0 <= x <= 1000.0
                assert 0.0 <= y <= 1000.0


class TestPlacement:
    def test_uniform_positions_in_field(self):
        pts = uniform_positions(np.random.default_rng(1), 100, 1000.0, 500.0)
        assert len(pts) == 100
        assert all(0 <= x <= 1000 and 0 <= y <= 500 for x, y in pts)

    def test_uniform_deterministic(self):
        a = uniform_positions(np.random.default_rng(5), 10, 1000, 1000)
        b = uniform_positions(np.random.default_rng(5), 10, 1000, 1000)
        assert a == b

    def test_grid_covers_field(self):
        pts = grid_positions(9, 300.0, 300.0)
        assert len(pts) == 9
        assert pts[0] == (50.0, 50.0)
        assert all(0 < x < 300 and 0 < y < 300 for x, y in pts)

    def test_grid_handles_non_square_counts(self):
        assert len(grid_positions(7, 100.0, 100.0)) == 7

    def test_line_positions_spacing(self):
        pts = line_positions(4, 150.0)
        assert pts == [(0.0, 0.0), (150.0, 0.0), (300.0, 0.0), (450.0, 0.0)]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            uniform_positions(np.random.default_rng(1), 0, 100, 100)
        with pytest.raises(ValueError):
            grid_positions(0, 100, 100)
        with pytest.raises(ValueError):
            line_positions(3, 0.0)

    @given(st.integers(min_value=1, max_value=60))
    def test_property_grid_count_exact(self, n):
        assert len(grid_positions(n, 100.0, 100.0)) == n


class TestMovementEpochs:
    """Epoch counters: bump exactly when a sample returns a new position."""

    def cfg(self, **overrides) -> MobilityConfig:
        kwargs = dict(speed_mps=3.0, pause_s=3.0, field_width_m=1000.0,
                      field_height_m=1000.0)
        kwargs.update(overrides)
        return MobilityConfig(**kwargs)

    def test_static_epoch_pinned_at_zero(self):
        m = StaticMobility((3.0, 4.0))
        assert m.epoch == 0
        m.position_at(100.0)
        pos, epoch = m.poll(1e6)
        assert (pos, epoch) == ((3.0, 4.0), 0)
        assert m.max_speed_mps() == 0.0

    def test_waypoint_epoch_steady_during_pause(self):
        m = RandomWaypoint(np.random.default_rng(1), self.cfg(), (10.0, 20.0))
        assert m.poll(0.0) == ((10.0, 20.0), 0)
        assert m.poll(2.9) == ((10.0, 20.0), 0)

    def test_waypoint_epoch_bumps_per_sampled_move(self):
        m = RandomWaypoint(np.random.default_rng(1), self.cfg(), (10.0, 20.0))
        _, e0 = m.poll(0.0)
        p1, e1 = m.poll(10.0)   # moving leg
        assert e1 == e0 + 1 and p1 != (10.0, 20.0)
        p2, e2 = m.poll(10.0)   # same instant: same position, same epoch
        assert (p2, e2) == (p1, e1)
        p3, e3 = m.poll(11.0)   # later sample on the leg: new position
        assert e3 == e1 + 1 and p3 != p1

    def test_waypoint_epoch_monotone_over_many_samples(self):
        m = RandomWaypoint(np.random.default_rng(7), self.cfg(pause_s=0.5),
                           (0.0, 0.0))
        last = -1
        for t in range(0, 200):
            _, e = m.poll(t * 0.5)
            assert e >= last
            last = e
        assert last > 0  # it did actually move at some point

    def test_degenerate_zero_speed_never_bumps(self):
        m = RandomWaypoint(np.random.default_rng(3), self.cfg(speed_mps=0.0),
                           (5.0, 5.0))
        for t in (0.0, 10.0, 1000.0):
            assert m.poll(t) == ((5.0, 5.0), 0)

    def test_max_speed_reported(self):
        m = RandomWaypoint(np.random.default_rng(1), self.cfg(speed_mps=3.0),
                           (0.0, 0.0))
        assert m.max_speed_mps() == 3.0
        r = RandomWaypoint(np.random.default_rng(1), self.cfg(),
                           (0.0, 0.0), speed_range=(1.0, 9.0))
        assert r.max_speed_mps() == 9.0

    def test_epoch_equality_implies_position_equality(self):
        """The cache contract, stated as a property over a trajectory."""
        m = RandomWaypoint(np.random.default_rng(11), self.cfg(pause_s=1.0),
                           (100.0, 100.0))
        seen: dict[int, tuple[float, float]] = {}
        for t in range(0, 300):
            pos, epoch = m.poll(t * 0.25)
            if epoch in seen:
                assert seen[epoch] == pos
            seen[epoch] = pos
