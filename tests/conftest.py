"""Shared fixtures, hypothesis profiles and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

# Property-test budgets.  The ``dev`` profile keeps local iteration fast;
# CI's differential job selects the heavier sweep with
# ``--hypothesis-profile=ci`` (the hypothesis pytest plugin applies the CLI
# choice after this module loads, so the flag wins over the default below).
# Tests that pin ``@settings(max_examples=...)`` inline keep their pinned
# budget under either profile.
settings.register_profile("dev", max_examples=12, deadline=None)
settings.register_profile("ci", max_examples=40, deadline=None)
settings.load_profile("dev")

from repro.config import MacConfig, PhyConfig, PowerControlConfig
from repro.mac.timing import MacTiming
from repro.mobility.static import StaticMobility
from repro.phy.channel import Channel
from repro.phy.noise import ConstantNoise
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import Radio
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def phy_cfg() -> PhyConfig:
    """The paper's PHY configuration."""
    return PhyConfig()


@pytest.fixture
def mac_cfg() -> MacConfig:
    """The paper's MAC configuration."""
    return MacConfig()


@pytest.fixture
def power_cfg() -> PowerControlConfig:
    """Default power-control parameters."""
    return PowerControlConfig()


@pytest.fixture
def timing(mac_cfg, phy_cfg) -> MacTiming:
    """Derived MAC timing."""
    return MacTiming(mac_cfg, phy_cfg)


@pytest.fixture
def two_ray() -> TwoRayGround:
    """The paper's propagation model."""
    return TwoRayGround()


@pytest.fixture
def tracer() -> Tracer:
    """A tracer with every stack category enabled."""
    t = Tracer()
    t.enable(
        "phy.tx",
        "phy.rx_ok",
        "phy.rx_err",
        "phy.cs",
        "mac.send",
        "mac.drop",
        "mac.handshake",
        "mac.defer",
        "pcmac.pcn",
        "net.route",
        "net.drop",
        "app.tx",
        "app.rx",
    )
    return t


def make_radio(
    sim: Simulator,
    node_id: int,
    position: tuple[float, float],
    phy_cfg: PhyConfig | None = None,
    **overrides,
) -> Radio:
    """A radio pinned at a fixed position with paper thresholds."""
    cfg = phy_cfg or PhyConfig()
    kwargs = dict(
        mobility=StaticMobility(position),
        rx_threshold_w=cfg.rx_threshold_w,
        cs_threshold_w=cfg.cs_threshold_w,
        capture_threshold=cfg.capture_threshold,
        noise=ConstantNoise(cfg.noise_floor_w),
    )
    kwargs.update(overrides)
    return Radio(sim, node_id, **kwargs)


def make_channel(sim: Simulator, phy_cfg: PhyConfig | None = None, **overrides) -> Channel:
    """A two-ray data channel with paper parameters."""
    cfg = phy_cfg or PhyConfig()
    kwargs = dict(
        interference_floor_w=cfg.interference_floor_w,
        model_propagation_delay=cfg.model_propagation_delay,
    )
    kwargs.update(overrides)
    return Channel(sim, TwoRayGround(), **kwargs)


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator for deterministic tests."""
    return np.random.default_rng(42)
