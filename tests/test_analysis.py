"""Analysis helpers: statistics, plotting, reporting."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.plotting import ascii_chart
from repro.analysis.report import markdown_table, paper_vs_measured, series_table
from repro.analysis.stats import (
    compare_series,
    mean_confidence_interval,
    saturation_ordering,
)


class TestMeanCI:
    def test_single_value_zero_halfwidth(self):
        mean, hw = mean_confidence_interval([5.0])
        assert mean == 5.0
        assert hw == 0.0

    def test_identical_values_zero_halfwidth(self):
        mean, hw = mean_confidence_interval([3.0, 3.0, 3.0])
        assert mean == 3.0
        assert hw == 0.0

    def test_known_interval(self):
        # n=4: var = 2/3, sem = sqrt(var/4) ≈ 0.408; t(0.975, df=3) ≈ 3.182
        # → half-width ≈ 1.299.
        mean, hw = mean_confidence_interval([1.0, 2.0, 3.0, 2.0])
        assert mean == pytest.approx(2.0)
        assert hw == pytest.approx(1.299, abs=0.01)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=30))
    def test_property_mean_inside_interval(self, values):
        mean, hw = mean_confidence_interval(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9
        assert hw >= 0


class TestCompareSeries:
    def test_identical_series(self):
        cmp = compare_series([1, 2, 3], [1, 2, 3])
        assert cmp.rank_correlation == pytest.approx(1.0)
        assert cmp.final_ratio == pytest.approx(1.0)
        assert cmp.mean_ratio == pytest.approx(1.0)

    def test_scaled_series_keeps_rank_correlation(self):
        cmp = compare_series([2, 4, 6], [1, 2, 3])
        assert cmp.rank_correlation == pytest.approx(1.0)
        assert cmp.final_ratio == pytest.approx(2.0)

    def test_reversed_series_anticorrelates(self):
        cmp = compare_series([3, 2, 1], [1, 2, 3])
        assert cmp.rank_correlation == pytest.approx(-1.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            compare_series([1], [1, 2])

    def test_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            compare_series([1, 2], [0, 1])

    def test_saturation_ordering(self):
        series = {"a": [1, 5], "b": [9, 2], "c": [1, 7]}
        assert saturation_ordering(series) == ["c", "a", "b"]


class TestAsciiChart:
    def test_renders_all_series_markers(self):
        chart = ascii_chart(
            {"one": ([0, 1], [0, 1]), "two": ([0, 1], [1, 0])},
            title="t", x_label="x", y_label="y",
        )
        assert "o=one" in chart
        assert "*=two" in chart
        assert "t" in chart

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_chart({})

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart({"flat": ([0, 1, 2], [5, 5, 5])})
        assert "o=flat" in chart


class TestReport:
    def test_markdown_table_shape(self):
        out = markdown_table(["a", "b"], [[1, 2.5], ["x", "y"]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 | 2.5 |" in out
        assert "| x | y |" in out

    def test_series_table_columns(self):
        out = series_table("load", [100, 200], {"basic": [1, 2], "pcmac": [3, 4]})
        assert "| load | basic | pcmac |" in out
        assert "| 100 | 1 | 3 |" in out

    def test_paper_vs_measured_interleaves(self):
        out = paper_vs_measured(
            "x", [1], {"p": [10.0]}, {"p": [11.0]}
        )
        assert "p (paper)" in out
        assert "p (ours)" in out
        assert "| 1 | 10.0 | 11.0 |" in out

    def test_paper_vs_measured_missing_measurement(self):
        out = paper_vs_measured("x", [1], {"p": [10.0]}, {})
        assert "—" in out
