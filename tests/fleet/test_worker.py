"""FleetWorker paths: execute, cache-hit, release-retry, retire, abandon."""

from __future__ import annotations

import pytest

from repro.campaign.spec import RunSpec
from repro.config import ScenarioConfig, TrafficConfig
from repro.fleet.lease import LeaseLost
from repro.fleet.queue import WorkQueue
from repro.fleet.shards import ShardedResultStore
from repro.fleet.worker import FleetWorker
from repro.scenariospec import ComponentSpec, ScenarioSpec

TTL = 30.0


def cell(seed: int = 1) -> RunSpec:
    cfg = ScenarioConfig(
        node_count=4,
        duration_s=2.0,
        seed=seed,
        traffic=TrafficConfig(flow_count=1, offered_load_bps=50e3),
    )
    return RunSpec(scenario=ScenarioSpec(cfg=cfg, mac=ComponentSpec("basic")))


def doomed(seed: int = 99) -> RunSpec:
    """Raises ValueError in the builder: one position for six nodes."""
    cfg = ScenarioConfig(node_count=6, duration_s=2.0, seed=seed)
    return RunSpec(
        scenario=ScenarioSpec(
            cfg=cfg,
            mac=ComponentSpec("basic"),
            placement=ComponentSpec("explicit", positions=((0.0, 0.0),)),
        )
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def store(tmp_path) -> ShardedResultStore:
    return ShardedResultStore(tmp_path / "store", shards=4)


@pytest.fixture
def queue(store) -> WorkQueue:
    return WorkQueue(store.root / "fleet")


class TestExecutePath:
    def test_drains_queue_and_stores_results(self, store, queue):
        specs = [cell(1), cell(2)]
        for spec in specs:
            queue.enqueue(spec)
        report = FleetWorker(store, queue, lease_ttl_s=TTL).run()
        assert report.executed == 2
        assert report.claims == 2
        assert queue.drained()
        for spec in specs:
            assert store.get(spec.key()) is not None
            assert store.runtime_stats(spec.key())  # persisted alongside

    def test_exit_heartbeat_left_behind(self, store, queue):
        worker = FleetWorker(store, queue, lease_ttl_s=TTL)
        worker.run()
        beat = queue.heartbeats()[worker.worker_id]
        assert beat["state"] == "exited"

    def test_max_runs_bounds_the_loop(self, store, queue):
        for seed in (1, 2, 3):
            queue.enqueue(cell(seed))
        report = FleetWorker(store, queue, lease_ttl_s=TTL).run(max_runs=1)
        assert report.claims == 1
        assert queue.pending_count() == 2

    def test_stop_request_ends_the_loop(self, store, queue):
        queue.enqueue(cell(1))
        queue.request_stop()
        report = FleetWorker(store, queue, lease_ttl_s=TTL).run()
        assert report.claims == 0
        assert not queue.drained()


class TestCachePath:
    def test_stored_key_completes_without_execution(self, store, queue):
        spec = cell(1)
        store.put(spec, spec.scenario.run())
        lines_before = store._file_for(spec.key()).read_text()
        queue.enqueue(spec)
        report = FleetWorker(store, queue, lease_ttl_s=TTL).run()
        assert report.cache_hits == 1
        assert report.executed == 0
        assert queue.drained()
        assert store._file_for(spec.key()).read_text() == lines_before

    def test_hit_written_by_another_instance_is_seen(self, store, queue):
        spec = cell(1)
        other = ShardedResultStore(store.root)
        other.put(spec, spec.scenario.run())
        queue.enqueue(spec)
        # `store` has not refreshed; the worker's per-key refresh must see it.
        report = FleetWorker(store, queue, lease_ttl_s=TTL).run()
        assert report.cache_hits == 1


class TestFailurePath:
    def test_release_then_retire_with_audit(self, store, queue):
        spec = doomed()
        queue.enqueue(spec)
        report = FleetWorker(
            store, queue, lease_ttl_s=TTL, max_attempts=2
        ).run()
        assert report.released == 1  # first attempt went back to the queue
        assert report.failed == 1  # second attempt retired it
        assert queue.drained()
        error = store.error(spec.key())
        assert error["kind"] == "ValueError"
        assert error["attempts"] == 2
        assert len(error["owners"]) == 2  # same worker claimed twice
        assert error["label"] == spec.label()

    def test_last_error_noted_on_release(self, store, queue):
        spec = doomed()
        queue.enqueue(spec)
        FleetWorker(store, queue, lease_ttl_s=TTL, max_attempts=3).run(
            max_runs=1
        )
        task = queue.task(spec.key())
        assert task["last_error"]["reason"] == "ValueError"
        assert "positions" in task["last_error"]["message"]


class TestExhaustedPath:
    def test_retires_on_behalf_of_dead_owners(self, tmp_path):
        clock = FakeClock()
        store = ShardedResultStore(tmp_path / "store", shards=4)
        queue = WorkQueue(store.root / "fleet", clock=clock)
        spec = cell(1)
        queue.enqueue(spec)
        # Two owners claim and silently die (their leases lapse unrenewed).
        for owner in ("dead1", "dead2"):
            queue.claim(owner, ttl_s=1.0, max_attempts=2)
            clock.now += 2.0
        report = FleetWorker(
            store, queue, lease_ttl_s=TTL, max_attempts=2
        ).run()
        assert report.retired == 1
        assert report.executed == 0
        assert queue.drained()
        error = store.error(spec.key())
        assert error["kind"] == "LeaseExpired"
        assert error["owners"] == ["dead1", "dead2"]
        assert error["steal_reason"] == "lease-expired"
        assert "dead2" in error["message"]


class TestStealAbandonment:
    def test_stolen_lease_abandons_the_run(self, store, queue, monkeypatch):
        spec = cell(1)
        queue.enqueue(spec)

        def stolen(lease, *, ttl_s):
            raise LeaseLost("stolen mid-run")

        monkeypatch.setattr(queue, "renew", stolen)
        report = FleetWorker(store, queue, lease_ttl_s=TTL).run(max_runs=1)
        assert report.abandoned == 1
        assert report.executed == 0
        # The thief (or the exactly-once store) owns the outcome; this
        # worker must not have recorded anything.
        assert store.get(spec.key()) is None
        assert store.error(spec.key()) is None
