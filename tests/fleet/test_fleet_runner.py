"""run_specs(fleet=True): the campaign API on top of the fleet machinery.

The contract: fleet mode keeps the ``run_specs`` surface (report shape,
resume, error records) while executing through enqueue → supervised
workers → store, and its results are bit-identical to a serial run of the
same specs.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.campaign.runner import run_specs
from repro.campaign.spec import RunSpec
from repro.config import ScenarioConfig, TrafficConfig
from repro.fleet.shards import ShardedResultStore
from repro.scenariospec import ComponentSpec, ScenarioSpec


def cell(seed: int = 1) -> RunSpec:
    cfg = ScenarioConfig(
        node_count=4,
        duration_s=2.0,
        seed=seed,
        traffic=TrafficConfig(flow_count=1, offered_load_bps=50e3),
    )
    return RunSpec(scenario=ScenarioSpec(cfg=cfg, mac=ComponentSpec("basic")))


def doomed(seed: int = 99) -> RunSpec:
    cfg = ScenarioConfig(node_count=6, duration_s=2.0, seed=seed)
    return RunSpec(
        scenario=ScenarioSpec(
            cfg=cfg,
            mac=ComponentSpec("basic"),
            placement=ComponentSpec("explicit", positions=((0.0, 0.0),)),
        )
    )


def deterministic_fields(result) -> dict:
    fields = asdict(result)
    fields.pop("wallclock_s")
    return fields


class TestFleetRunSpecs:
    def test_fleet_requires_a_store(self):
        with pytest.raises(ValueError, match="store"):
            run_specs([cell()], fleet=True)

    def test_results_identical_to_serial(self, tmp_path):
        specs = [cell(1), cell(2)]
        serial = run_specs(specs)
        store = ShardedResultStore(tmp_path / "store", shards=4)
        fleet = run_specs(specs, jobs=2, store=store, fleet=True)
        assert fleet.executed == 2
        assert not fleet.errors
        for spec in specs:
            key = spec.key()
            assert deterministic_fields(
                fleet.results[key]
            ) == deterministic_fields(serial.results[key])

    def test_store_holds_one_line_per_key(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        specs = [cell(1), cell(2)]
        run_specs(specs, jobs=2, store=store, fleet=True)
        lines = []
        for path in store._result_files():
            if path.exists():
                lines.extend(path.read_text().splitlines())
        assert len(lines) == 2

    def test_resume_is_all_cache_hits(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        specs = [cell(1), cell(2)]
        run_specs(specs, jobs=2, store=store, fleet=True)
        again = run_specs(specs, jobs=2, store=store, fleet=True)
        assert again.cached == 2
        assert again.executed == 0

    def test_failures_carry_the_lease_audit(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        report = run_specs(
            [cell(1), doomed()],
            jobs=2,
            store=store,
            fleet=True,
            retries=1,
        )
        assert report.executed == 1
        error = report.errors[doomed().key()]
        assert error["kind"] == "ValueError"
        assert error["attempts"] == 2  # retries=1 → attempt budget of 2
        assert len(error["owners"]) == 2
        assert error["label"] == doomed().label()
        # Persisted identically: resume reads the same record back.
        assert store.error(doomed().key())["owners"] == error["owners"]
