"""Work-queue lifecycle: enqueue, claim, renew, expire, steal, retire.

Every test drives the queue with an injectable fake clock, so lease
expiry and steals are exact, not sleep-based.
"""

from __future__ import annotations

import pytest

from repro.campaign.spec import RunSpec
from repro.config import ScenarioConfig, TrafficConfig
from repro.fleet.lease import LeaseLost
from repro.fleet.queue import WorkQueue
from repro.scenariospec import ComponentSpec, ScenarioSpec

TTL = 10.0


def cell(seed: int = 1) -> RunSpec:
    cfg = ScenarioConfig(
        node_count=4,
        duration_s=1.0,
        seed=seed,
        traffic=TrafficConfig(flow_count=1, offered_load_bps=50e3),
    )
    return RunSpec(scenario=ScenarioSpec(cfg=cfg, mac=ComponentSpec("basic")))


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock) -> WorkQueue:
    return WorkQueue(tmp_path / "fleet", clock=clock)


class TestEnqueue:
    def test_enqueue_then_duplicate(self, queue):
        spec = cell()
        assert queue.enqueue(spec) is True
        assert queue.enqueue(spec) is False
        assert queue.pending_count() == 1

    def test_task_document_carries_audit_fields(self, queue):
        spec = cell()
        queue.enqueue(spec)
        task = queue.task(spec.key())
        assert task["label"] == spec.label()
        assert task["attempts"] == 0
        assert task["owners"] == []
        assert task["steals"] == []

    def test_task_round_trips_the_scenario(self, queue):
        spec = cell(seed=7)
        queue.enqueue(spec)
        claimed = queue.claim("w1")
        assert claimed.spec.key() == spec.key()
        assert claimed.spec.seed == 7


class TestClaim:
    def test_claim_leases_the_run(self, queue):
        spec = cell()
        queue.enqueue(spec)
        claimed = queue.claim("w1", ttl_s=TTL)
        assert claimed.key == spec.key()
        assert claimed.lease.owner == "w1"
        assert claimed.lease.attempt == 1
        assert claimed.stolen is None
        assert claimed.task["owners"] == ["w1"]

    def test_live_lease_blocks_other_claims(self, queue):
        queue.enqueue(cell())
        assert queue.claim("w1", ttl_s=TTL) is not None
        assert queue.claim("w2", ttl_s=TTL) is None
        assert not queue.drained()

    def test_empty_queue_claims_none(self, queue):
        assert queue.claim("w1") is None
        assert queue.drained()

    def test_oldest_task_claimed_first(self, queue, clock):
        first, second = cell(seed=1), cell(seed=2)
        queue.enqueue(first)
        clock.advance(1.0)
        queue.enqueue(second)
        assert queue.claim("w1", ttl_s=TTL).key == first.key()
        assert queue.claim("w2", ttl_s=TTL).key == second.key()


class TestLeaseLifecycle:
    def test_renew_extends_expiry(self, queue, clock):
        queue.enqueue(cell())
        claimed = queue.claim("w1", ttl_s=TTL)
        clock.advance(TTL * 0.9)
        renewed = queue.renew(claimed.lease, ttl_s=TTL)
        assert renewed.expires_at == clock.now + TTL
        clock.advance(TTL * 0.9)  # past the original expiry, not the renewal
        assert queue.claim("w2", ttl_s=TTL) is None

    def test_complete_retires_task_and_lease(self, queue):
        spec = cell()
        queue.enqueue(spec)
        claimed = queue.claim("w1", ttl_s=TTL)
        queue.complete(claimed.lease)
        assert queue.drained()
        assert queue.lease_of(spec.key()) is None
        assert queue.task(spec.key()) is None

    def test_release_requeues_immediately_with_error_note(self, queue):
        spec = cell()
        queue.enqueue(spec)
        claimed = queue.claim("w1", ttl_s=TTL)
        queue.release(
            claimed.lease, reason="ValueError", error={"message": "boom"}
        )
        task = queue.task(spec.key())
        assert task["last_error"]["reason"] == "ValueError"
        again = queue.claim("w2", ttl_s=TTL)
        assert again is not None
        assert again.lease.attempt == 2
        assert again.stolen is None  # released, not stolen

    def test_expired_lease_is_stolen_with_audit(self, queue, clock):
        spec = cell()
        queue.enqueue(spec)
        queue.claim("w1", ttl_s=TTL)
        clock.advance(TTL + 0.1)
        stolen = queue.claim("w2", ttl_s=TTL)
        assert stolen is not None
        assert stolen.lease.owner == "w2"
        assert stolen.lease.attempt == 2
        assert stolen.stolen["from"] == "w1"
        assert stolen.stolen["reason"] == "lease-expired"
        assert stolen.task["owners"] == ["w1", "w2"]

    def test_stale_owner_mutations_raise_lease_lost(self, queue, clock):
        spec = cell()
        queue.enqueue(spec)
        old = queue.claim("w1", ttl_s=TTL)
        clock.advance(TTL + 0.1)
        queue.claim("w2", ttl_s=TTL)
        with pytest.raises(LeaseLost):
            queue.renew(old.lease, ttl_s=TTL)
        with pytest.raises(LeaseLost):
            queue.complete(old.lease)
        with pytest.raises(LeaseLost):
            queue.release(old.lease, reason="late")
        # The thief's work is untouched by the dead owner's attempts.
        assert queue.task(spec.key()) is not None
        assert queue.lease_of(spec.key()).owner == "w2"


class TestExhaustion:
    def test_spent_budget_surfaces_exhausted_claim(self, queue, clock):
        spec = cell()
        queue.enqueue(spec)
        for owner in ("w1", "w2"):
            queue.claim(owner, ttl_s=TTL, max_attempts=2)
            clock.advance(TTL + 0.1)
        claimed = queue.claim("w3", ttl_s=TTL, max_attempts=2)
        assert claimed.exhausted
        assert claimed.lease is None
        meta = claimed.error_metadata()
        assert meta["attempts"] == 2
        assert meta["owners"] == ["w1", "w2"]
        assert [s["from"] for s in meta["steals"]] == ["w1", "w2"]
        queue.discard(claimed)
        assert queue.drained()


class TestHeartbeatsAndStop:
    def test_heartbeat_round_trip_and_clear(self, queue, clock):
        queue.heartbeat("w1", {"state": "running", "key": "abc"})
        beats = queue.heartbeats()
        assert beats["w1"]["state"] == "running"
        assert beats["w1"]["time"] == clock.now
        queue.clear_heartbeat("w1")
        assert queue.heartbeats() == {}

    def test_stop_flag_round_trip(self, queue):
        assert not queue.stop_requested()
        queue.request_stop()
        assert queue.stop_requested()
        queue.clear_stop()
        assert not queue.stop_requested()
