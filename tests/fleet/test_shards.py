"""ShardedResultStore: exactly-once puts, compaction, migration, adoption."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.campaign.spec import RunSpec
from repro.campaign.store import CORRUPT_SUFFIX, ResultStore
from repro.config import ScenarioConfig, TrafficConfig
from repro.fleet.shards import (
    DEFAULT_SHARDS,
    MAX_SHARDS,
    ShardedResultStore,
    open_store,
    shard_index,
)
from repro.scenariospec import ComponentSpec, ScenarioSpec


def cell(seed: int = 1) -> RunSpec:
    cfg = ScenarioConfig(
        node_count=4,
        duration_s=2.0,
        seed=seed,
        traffic=TrafficConfig(flow_count=1, offered_load_bps=50e3),
    )
    return RunSpec(scenario=ScenarioSpec(cfg=cfg, mac=ComponentSpec("basic")))


def run_cell(seed: int = 1):
    spec = cell(seed)
    return spec, spec.scenario.run()


def shard_lines(store: ShardedResultStore) -> list[str]:
    lines: list[str] = []
    for path in sorted(store._result_files()):
        if path.exists():
            lines.extend(path.read_text().splitlines())
    return lines


class TestShardIndex:
    def test_hex_prefix_distribution_is_stable(self):
        assert shard_index("00000000aa", 16) == 0
        assert shard_index("ffffffffaa", 16) == int("ffffffff", 16) % 16

    def test_synthetic_keys_fall_back_to_crc(self):
        idx = shard_index("not-hex-at-all", 8)
        assert 0 <= idx < 8

    def test_shard_count_bounds_enforced(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedResultStore(tmp_path / "s", shards=0)
        with pytest.raises(ValueError):
            ShardedResultStore(tmp_path / "s", shards=MAX_SHARDS + 1)


class TestShardedRoundTrip:
    def test_put_get_resume_across_instances(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=8)
        spec, result = run_cell()
        key = store.put(spec, result)
        assert store.get(key) == result
        reopened = ShardedResultStore(tmp_path / "store")
        assert reopened.get(key) == result
        assert reopened._shards == 8  # layout on disk wins

    def test_key_lands_in_its_hash_shard(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=8)
        spec, result = run_cell()
        key = store.put(spec, result)
        expected = store.root / "shards" / (
            f"results-{shard_index(key, 8):02x}.jsonl"
        )
        assert store._file_for(key) == expected
        assert key in expected.read_text()

    def test_cross_instance_refresh_sees_new_puts(self, tmp_path):
        writer = ShardedResultStore(tmp_path / "store", shards=4)
        reader = ShardedResultStore(tmp_path / "store")
        spec, result = run_cell()
        key = writer.put(spec, result)
        assert reader.get(key) is None
        reader.refresh()
        assert reader.get(key) == result


class TestExactlyOnce:
    def test_concurrent_instances_write_one_line(self, tmp_path):
        a = ShardedResultStore(tmp_path / "store", shards=4)
        b = ShardedResultStore(tmp_path / "store")
        spec, result = run_cell()
        a.put(spec, result)
        b.put(spec, result)  # b has not refreshed; the lock-and-recheck dedupes
        assert len(shard_lines(a)) == 1

    def test_error_never_overwrites_success(self, tmp_path):
        a = ShardedResultStore(tmp_path / "store", shards=4)
        b = ShardedResultStore(tmp_path / "store")
        spec, result = run_cell()
        a.put(spec, result)
        b.put_error(spec, {"kind": "Late", "message": "x", "attempts": 1})
        assert len(shard_lines(a)) == 1
        b.refresh()
        assert b.get(spec.key()) == result
        assert b.error(spec.key()) is None

    def test_success_supersedes_a_prior_error(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        spec, result = run_cell()
        store.put_error(spec, {"kind": "Flaky", "message": "x", "attempts": 1})
        store.put(spec, result)
        assert store.get(spec.key()) == result
        assert store.error(spec.key()) is None


class TestCompaction:
    def test_compact_folds_to_one_line_per_key(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        specs = []
        for seed in (1, 2, 3):
            spec, result = run_cell(seed)
            store.put_error(
                spec, {"kind": "Flaky", "message": "x", "attempts": 1}
            )
            store.put(spec, result)
            specs.append((spec, result))
        before = {spec.key(): store.get(spec.key()) for spec, _ in specs}
        stats = store.compact()
        assert stats.lines_before == 6
        assert stats.lines_after == 3
        assert stats.folded == 3
        assert len(shard_lines(store)) == 3
        # Bit-identity: the folded store serves the same results.
        assert {k: store.get(k) for k in before} == before
        reopened = ShardedResultStore(tmp_path / "store")
        assert {k: reopened.get(k) for k in before} == before

    def test_compact_preserves_terminal_errors(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        spec = cell(9)
        store.put_error(spec, {"kind": "Dead", "message": "x", "attempts": 3})
        store.compact()
        assert store.error(spec.key())["kind"] == "Dead"
        assert ShardedResultStore(tmp_path / "store").error(spec.key())

    def test_other_readers_survive_the_inode_swap(self, tmp_path):
        writer = ShardedResultStore(tmp_path / "store", shards=2)
        reader = ShardedResultStore(tmp_path / "store")
        keys = []
        for seed in (1, 2):
            spec, result = run_cell(seed)
            writer.put(spec, result)
            keys.append(spec.key())
        reader.refresh()
        writer.compact()
        reader.refresh()  # must notice the replaced files, not crash
        assert sorted(reader.keys()) == sorted(keys)


class TestLegacyMigration:
    def test_flat_store_migrates_into_shards(self, tmp_path):
        flat = ResultStore(tmp_path / "store")
        expected = {}
        for seed in (1, 2, 3):
            spec, result = run_cell(seed)
            flat.put(spec, result)
            expected[spec.key()] = result
        sharded = ShardedResultStore(tmp_path / "store", shards=4)
        assert {k: sharded.get(k) for k in expected} == expected
        assert not (tmp_path / "store" / "results.jsonl").exists()
        assert (tmp_path / "store" / "results.jsonl.migrated").exists()

    def test_migration_happens_once(self, tmp_path):
        flat = ResultStore(tmp_path / "store")
        spec, result = run_cell()
        flat.put(spec, result)
        ShardedResultStore(tmp_path / "store", shards=4)
        again = ShardedResultStore(tmp_path / "store")
        assert again.get(spec.key()) == result
        assert len(shard_lines(again)) == 1


class TestOpenStoreFactory:
    def test_fresh_directory_opens_flat(self, tmp_path):
        store = open_store(tmp_path / "store")
        assert type(store) is ResultStore

    def test_shards_argument_creates_sharded(self, tmp_path):
        store = open_store(tmp_path / "store", shards=4)
        assert isinstance(store, ShardedResultStore)
        assert store._shards == 4

    def test_existing_sharded_layout_wins(self, tmp_path):
        open_store(tmp_path / "store", shards=4)
        again = open_store(tmp_path / "store")
        assert isinstance(again, ShardedResultStore)
        assert again._shards == 4

    def test_default_shard_count_applied(self, tmp_path):
        store = open_store(tmp_path / "store", shards=DEFAULT_SHARDS)
        meta = json.loads((store.root / "meta.json").read_text())
        assert meta["shards"] == DEFAULT_SHARDS


class TestShardQuarantine:
    def test_corrupt_shard_line_moves_to_sidecar(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=2)
        spec, result = run_cell()
        key = store.put(spec, result)
        shard = store._file_for(key)
        with shard.open("a", encoding="utf-8") as fh:
            fh.write("garbage line\n")
        with pytest.warns(RuntimeWarning, match="quarantined 1 corrupt"):
            reloaded = ShardedResultStore(tmp_path / "store")
        assert reloaded.get(key) == result
        sidecar = shard.with_name(shard.name + CORRUPT_SUFFIX)
        assert sidecar.read_text().splitlines() == ["garbage line"]
        # Clean after the rewrite: a further load warns about nothing.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ShardedResultStore(tmp_path / "store")
