"""Property test: lease lifecycle invariants under arbitrary interleavings.

Hypothesis drives a small fleet (three workers, two runs) through random
sequences of claim / advance-clock / complete / fail operations and
checks the two safety properties the whole design rests on, after every
step:

* **single ownership** — no run is ever covered by two live leases, and
  a worker whose lease lapsed and was stolen gets ``LeaseLost`` (never a
  silent double-completion) on its next owner-side move;
* **liveness** — whatever the interleaving, the queue can always be
  driven to drained: every enqueued key reaches a terminal state
  (completed or retired-with-error), none is lost and none is stuck.
"""

from __future__ import annotations

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.spec import RunSpec
from repro.config import ScenarioConfig, TrafficConfig
from repro.fleet.lease import LeaseLost
from repro.fleet.queue import WorkQueue
from repro.scenariospec import ComponentSpec, ScenarioSpec

TTL = 10.0
MAX_ATTEMPTS = 3
WORKERS = ("w0", "w1", "w2")


def cell(seed: int) -> RunSpec:
    cfg = ScenarioConfig(
        node_count=4,
        duration_s=1.0,
        seed=seed,
        traffic=TrafficConfig(flow_count=1, offered_load_bps=50e3),
    )
    return RunSpec(scenario=ScenarioSpec(cfg=cfg, mac=ComponentSpec("basic")))


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


ops = st.lists(
    st.tuples(
        st.sampled_from(["claim", "advance", "complete", "fail"]),
        st.integers(min_value=0, max_value=len(WORKERS) - 1),
    ),
    max_size=30,
)


@settings(max_examples=50, deadline=None)
@given(ops=ops)
def test_interleaved_lease_lifecycle(ops):
    with tempfile.TemporaryDirectory() as td:
        clock = FakeClock()
        queue = WorkQueue(td, clock=clock)
        specs = [cell(seed) for seed in (1, 2)]
        keys = {spec.key() for spec in specs}
        for spec in specs:
            queue.enqueue(spec)

        held: dict[str, object] = {}  # worker -> its Claimed
        retired: set[str] = set()

        def check_single_ownership() -> None:
            for key in keys:
                current = queue.lease_of(key)
                live_holders = [
                    w
                    for w, c in held.items()
                    if c.key == key
                    and current is not None
                    and current.token == c.lease.token
                    and not current.expired(clock.now)
                ]
                assert len(live_holders) <= 1

        for op, idx in ops:
            worker = WORKERS[idx]
            if op == "advance":
                # 0.6 × TTL: two advances lapse a lease, one does not.
                clock.now += TTL * 0.6
            elif op == "claim":
                if worker in held:
                    continue
                claimed = queue.claim(
                    worker, ttl_s=TTL, max_attempts=MAX_ATTEMPTS
                )
                if claimed is None:
                    continue
                if claimed.exhausted:
                    queue.discard(claimed)
                    retired.add(claimed.key)
                else:
                    held[worker] = claimed
            else:  # complete / fail: an owner-side move with a held lease
                if worker not in held:
                    continue
                claimed = held.pop(worker)
                current = queue.lease_of(claimed.key)
                ours = (
                    current is not None
                    and current.token == claimed.lease.token
                )
                if not ours:
                    # Stolen (or retired) behind our back: the move MUST
                    # raise, never silently double-apply.
                    with pytest.raises(LeaseLost):
                        if op == "complete":
                            queue.complete(claimed.lease)
                        else:
                            queue.release(claimed.lease, reason="Boom")
                elif op == "complete":
                    queue.complete(claimed.lease)
                    retired.add(claimed.key)
                else:
                    queue.release(claimed.lease, reason="Boom")
            check_single_ownership()

        # Liveness: a diligent finisher can always drain what remains.
        for _ in range(4 * MAX_ATTEMPTS * len(keys)):
            if queue.drained():
                break
            clock.now += TTL + 1.0  # lapse every outstanding lease
            claimed = queue.claim(
                "finisher", ttl_s=TTL, max_attempts=MAX_ATTEMPTS
            )
            if claimed is None:
                continue
            if claimed.exhausted:
                queue.discard(claimed)
            else:
                queue.complete(claimed.lease)
            retired.add(claimed.key)
        assert queue.drained()
        assert retired == keys
