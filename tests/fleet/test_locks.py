"""Fleet lock primitives: mutual exclusion, atomic JSON, torn reads."""

from __future__ import annotations

import json

import pytest

from repro.fleet.locks import FileLock, LockTimeout, atomic_write_json, read_json


class TestFileLock:
    def test_reacquire_after_release(self, tmp_path):
        lock = tmp_path / "a.lock"
        with FileLock(lock):
            pass
        with FileLock(lock):
            pass

    def test_contended_lock_times_out(self, tmp_path):
        lock = tmp_path / "a.lock"
        with FileLock(lock):
            with pytest.raises(LockTimeout):
                with FileLock(lock, timeout_s=0.05):
                    pass  # pragma: no cover - never entered

    def test_distinct_paths_do_not_contend(self, tmp_path):
        with FileLock(tmp_path / "a.lock"):
            with FileLock(tmp_path / "b.lock", timeout_s=0.05):
                pass


class TestAtomicJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"key": "abc", "n": 3})
        assert read_json(path) == {"key": "abc", "n": 3}

    def test_replace_leaves_no_tmp_behind(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert read_json(path) == {"v": 2}
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_missing_file_reads_none(self, tmp_path):
        assert read_json(tmp_path / "nope.json") is None

    def test_torn_file_reads_none(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"key": "abc", "n"')
        assert read_json(path) is None

    def test_valid_json_still_parses(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps({"a": [1, 2]}))
        assert read_json(path) == {"a": [1, 2]}
