"""Ablation experiment plumbing tests (tiny scale — shapes, not claims)."""

from __future__ import annotations

import pytest

from repro.config import MobilityConfig, ScenarioConfig, TrafficConfig
from repro.experiments.ablations import (
    run_control_rate_ablation,
    run_handshake_ablation,
    run_history_expiry_ablation,
    run_margin_ablation,
    run_propagation_ablation,
)


def tiny_cfg() -> ScenarioConfig:
    return ScenarioConfig(
        node_count=6,
        duration_s=3.0,
        seed=4,
        traffic=TrafficConfig(flow_count=2, offered_load_bps=120e3),
        mobility=MobilityConfig(field_width_m=400.0, field_height_m=400.0),
    )


class TestAblationPlumbing:
    def test_margin_ablation_keys(self):
        out = run_margin_ablation(tiny_cfg(), coefficients=(0.5, 1.0))
        assert set(out) == {0.5, 1.0}
        assert all(r.protocol == "pcmac" for r in out.values())

    def test_control_rate_ablation_keys(self):
        out = run_control_rate_ablation(tiny_cfg(), rates_kbps=(250, 500))
        assert set(out) == {250, 500}

    def test_handshake_ablation_variants(self):
        out = run_handshake_ablation(tiny_cfg())
        assert set(out) == {"three_way", "four_way"}
        # Structural signature: only the four-way run ACKs its data.
        assert (
            out["four_way"].mac_totals["ack_sent"]
            > out["three_way"].mac_totals["ack_sent"]
        )

    def test_history_expiry_ablation_keys(self):
        out = run_history_expiry_ablation(tiny_cfg(), expiries_s=(0.5, 3.0))
        assert set(out) == {0.5, 3.0}

    def test_propagation_ablation_grid(self):
        out = run_propagation_ablation(
            tiny_cfg(), exponents=(2.4,), protocols=("basic", "pcmac")
        )
        assert set(out) == {("basic", 2.4), ("pcmac", 2.4)}
        for result in out.values():
            assert result.sent > 0
