"""ScenarioSpec tests: JSON round trip, content hashing, legacy mapping."""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.config import PhyConfig, ScenarioConfig, TrafficConfig
from repro.phy.propagation import LogDistanceShadowing, TwoRayGround
from repro.scenariospec import (
    ComponentSpec,
    ScenarioSpec,
    config_from_dict,
    config_to_dict,
)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def sample_spec() -> ScenarioSpec:
    return ScenarioSpec(
        cfg=ScenarioConfig(
            node_count=9,
            duration_s=6.0,
            seed=5,
            traffic=TrafficConfig(flow_count=3, offered_load_bps=120e3),
        ),
        mac="pcmac",
        placement=ComponentSpec("cluster", clusters=3, spread_m=60.0),
        mobility="static",
        traffic=ComponentSpec("poisson"),
        flow_pairs=((0, 4), (2, 7), (8, 1)),
    )


class TestComponentSpec:
    def test_params_sorted_and_frozen(self):
        a = ComponentSpec("cluster", spread_m=60.0, clusters=3)
        b = ComponentSpec("cluster", clusters=3, spread_m=60.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a.params == (("clusters", 3), ("spread_m", 60.0))

    def test_sequences_become_tuples(self):
        spec = ComponentSpec("explicit", positions=[[0.0, 1.0], [2.0, 3.0]])
        assert spec.params_dict["positions"] == ((0.0, 1.0), (2.0, 3.0))
        assert hash(spec)  # fully hashable

    def test_dict_params_rejected(self):
        with pytest.raises(TypeError):
            ComponentSpec("bad", table={"a": 1})

    def test_bare_string_from_dict(self):
        assert ComponentSpec.from_dict("grid") == ComponentSpec("grid")

    def test_str_rendering(self):
        assert str(ComponentSpec("grid")) == "grid"
        assert str(ComponentSpec("cluster", clusters=2)) == "cluster(clusters=2)"


class TestConfigRoundTrip:
    def test_full_round_trip(self):
        cfg = ScenarioConfig(
            node_count=12,
            phy=PhyConfig(capture_threshold=12.0),
            traffic=TrafficConfig(flow_count=4),
        )
        assert config_from_dict(ScenarioConfig, config_to_dict(cfg)) == cfg

    def test_sparse_dict_keeps_defaults(self):
        cfg = config_from_dict(
            ScenarioConfig, {"node_count": 7, "traffic": {"flow_count": 2}}
        )
        assert cfg.node_count == 7
        assert cfg.traffic.flow_count == 2
        assert cfg.duration_s == ScenarioConfig().duration_s

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="node_countz"):
            config_from_dict(ScenarioConfig, {"node_countz": 7})

    def test_json_lists_become_declared_tuples(self):
        data = config_to_dict(ScenarioConfig())
        assert isinstance(data["phy"]["power_levels_w"], list)  # JSON-ready
        cfg = config_from_dict(ScenarioConfig, data)
        assert isinstance(cfg.phy.power_levels_w, tuple)


class TestScenarioSpecRoundTrip:
    def test_json_round_trip_is_identity(self):
        spec = sample_spec()
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.key() == spec.key()

    def test_round_trip_through_file(self, tmp_path):
        spec = sample_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ScenarioSpec.load(path).key() == spec.key()

    def test_sparse_spec_dict(self):
        spec = ScenarioSpec.from_dict(
            {"cfg": {"node_count": 5}, "components": {"placement": "grid"}}
        )
        assert spec.cfg.node_count == 5
        assert spec.placement == ComponentSpec("grid")
        assert spec.mac == ComponentSpec("basic")  # default slot

    def test_unknown_slot_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ScenarioSpec.from_dict({"components": {"transport": "udp"}})

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ValueError, match="wibble"):
            ScenarioSpec.from_dict({"wibble": 1})

    def test_future_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            ScenarioSpec.from_dict({"schema": 99})

    def test_schema_2_still_reads(self):
        # Pre-energy spec files are semantically identical under schema 3
        # (the energy slot defaults to null) and must keep loading.
        spec = ScenarioSpec.from_dict(
            {"schema": 2, "cfg": {"node_count": 5},
             "components": {"mac": "pcmac"}}
        )
        assert spec.mac == ComponentSpec("pcmac")
        assert spec.energy == ComponentSpec("null")
        # It round-trips (and hashes) as the current schema.
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_string_slots_coerce(self):
        spec = ScenarioSpec(mac="pcmac", placement="grid")
        assert spec.mac == ComponentSpec("pcmac")
        assert spec.placement == ComponentSpec("grid")

    def test_spec_is_hashable_and_picklable(self):
        import pickle

        spec = sample_spec()
        assert hash(spec) == hash(sample_spec())
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_key_stable_across_processes(self):
        """The content hash must be process-independent (store addressing)."""
        spec = sample_spec()
        code = (
            "import sys, json\n"
            "from repro.scenariospec import ScenarioSpec\n"
            "spec = ScenarioSpec.from_json(sys.stdin.read())\n"
            "print(spec.key())\n"
        )
        keys = set()
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", code],
                input=spec.to_json(),
                capture_output=True,
                text=True,
                check=True,
            )
            keys.add(proc.stdout.strip())
        assert keys == {spec.key()}

    def test_int_and_float_spellings_hash_identically(self):
        """A hand-written int in spec.json must address the same cached
        cell as the float-typed spec a Campaign generates."""
        as_int = ScenarioSpec.from_dict(
            {"cfg": {"traffic": {"offered_load_bps": 300000}}}
        )
        as_float = ScenarioSpec.from_dict(
            {"cfg": {"traffic": {"offered_load_bps": 300000.0}}}
        )
        assert as_int.key() == as_float.key()
        # Component params too.
        a = ScenarioSpec(placement=ComponentSpec("line", spacing_m=50))
        b = ScenarioSpec(placement=ComponentSpec("line", spacing_m=50.0))
        assert a.key() == b.key()

    def test_to_dict_preserves_exact_numeric_types(self):
        spec = ScenarioSpec.from_dict({"cfg": {"node_count": 7}})
        assert spec.to_dict()["cfg"]["node_count"] == 7
        assert isinstance(spec.to_dict()["cfg"]["node_count"], int)
        # node_count must stay an int through a round trip (range() etc.).
        again = ScenarioSpec.from_json(spec.to_json())
        assert isinstance(again.cfg.node_count, int)

    def test_component_dict_missing_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            ComponentSpec.from_dict({"params": {}})
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec.from_dict({"components": {"mac": {"params": {}}}})

    def test_component_dict_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="parms"):
            ComponentSpec.from_dict({"name": "cluster", "parms": {"clusters": 8}})

    def test_checked_in_example_spec_parses_and_hashes(self):
        path = EXAMPLES_DIR / "grid_poisson.spec.json"
        spec = ScenarioSpec.load(path)
        # Non-paper placement + traffic, defined purely as data.
        assert spec.placement.name == "grid"
        assert spec.traffic.name == "poisson"
        assert ScenarioSpec.from_json(spec.to_json()).key() == spec.key()


class TestLegacyMapping:
    def test_defaults_map_to_paper_components(self):
        spec = ScenarioSpec.from_legacy(ScenarioConfig(), "basic")
        assert spec.mac.name == "basic"
        assert spec.placement.name == "uniform"
        assert spec.mobility.name == "waypoint"
        assert spec.routing.name == "aodv"
        assert spec.traffic.name == "cbr"
        assert spec.propagation.name == "two_ray"
        assert spec.flow_pairs is None

    def test_overrides_map_to_components(self):
        spec = ScenarioSpec.from_legacy(
            ScenarioConfig(node_count=2),
            "pcmac",
            positions=[(0, 0), (10, 0)],
            mobile=False,
            routing="static",
            flow_pairs=[(0, 1)],
            propagation=LogDistanceShadowing(exponent=3.0),
        )
        assert spec.placement.name == "explicit"
        assert spec.placement.params_dict["positions"] == ((0.0, 0.0), (10.0, 0.0))
        assert spec.mobility.name == "static"
        assert spec.routing.name == "static"
        assert spec.flow_pairs == ((0, 1),)
        assert spec.propagation.name == "log_distance"
        assert spec.propagation.params_dict["exponent"] == 3.0

    def test_propagation_instance_fully_captured(self):
        model = TwoRayGround(height_tx_m=2.0)
        spec = ScenarioSpec.from_legacy(ScenarioConfig(), "basic", propagation=model)
        assert spec.propagation.name == "two_ray"
        assert spec.propagation.params_dict["height_tx_m"] == 2.0

    def test_unregistered_propagation_type_rejected(self):
        class Weird:
            pass

        with pytest.raises(TypeError, match="Weird"):
            ScenarioSpec.from_legacy(
                ScenarioConfig(), "basic", propagation=Weird()
            )
