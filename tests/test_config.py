"""Configuration dataclass validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.config import (
    AodvConfig,
    MacConfig,
    MobilityConfig,
    PcmacConfig,
    PhyConfig,
    PowerControlConfig,
    ScenarioConfig,
    TrafficConfig,
)


class TestPhyConfig:
    def test_paper_defaults(self):
        cfg = PhyConfig()
        assert cfg.frequency_hz == 914e6
        assert cfg.data_rate_bps == 2e6
        assert cfg.rx_threshold_w == pytest.approx(3.652e-10)
        assert cfg.cs_threshold_w == pytest.approx(1.559e-11)
        assert cfg.capture_threshold == 10.0
        assert len(cfg.power_levels_w) == 10
        assert cfg.max_power_w == pytest.approx(281.8e-3)
        assert cfg.min_power_w == pytest.approx(1e-3)

    def test_rejects_empty_levels(self):
        with pytest.raises(ValueError):
            PhyConfig(power_levels_w=())

    def test_rejects_capture_below_one(self):
        with pytest.raises(ValueError):
            PhyConfig(capture_threshold=0.5)


class TestMacConfig:
    def test_difs_derivation(self):
        cfg = MacConfig()
        assert cfg.difs_s == pytest.approx(cfg.sifs_s + 2 * cfg.slot_time_s)

    def test_dsss_defaults(self):
        cfg = MacConfig()
        assert cfg.slot_time_s == pytest.approx(20e-6)
        assert cfg.sifs_s == pytest.approx(10e-6)
        assert cfg.cw_min == 31
        assert cfg.cw_max == 1023
        assert cfg.ifq_capacity == 50


class TestPcmacConfig:
    def test_paper_defaults(self):
        cfg = PcmacConfig()
        assert cfg.control_rate_bps == 500e3
        assert cfg.margin_coefficient == 0.7
        assert cfg.pcn_size_bytes == 6
        assert cfg.three_way_data is True

    def test_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            PcmacConfig(margin_coefficient=0.0)
        with pytest.raises(ValueError):
            PcmacConfig(margin_coefficient=1.5)

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            PcmacConfig(pcn_repeats=0)


class TestPowerControlConfig:
    def test_paper_expiry(self):
        assert PowerControlConfig().history_expiry_s == 3.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PowerControlConfig(history_expiry_s=0.0)
        with pytest.raises(ValueError):
            PowerControlConfig(decode_margin=0.9)


class TestTrafficConfig:
    def test_paper_defaults(self):
        cfg = TrafficConfig()
        assert cfg.packet_size_bytes == 512
        assert cfg.flow_count == 10

    def test_per_flow_arithmetic(self):
        cfg = TrafficConfig(flow_count=10, offered_load_bps=600e3)
        assert cfg.per_flow_rate_bps == pytest.approx(60e3)
        assert cfg.per_flow_interval_s == pytest.approx(512 * 8 / 60e3)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TrafficConfig(flow_count=0)
        with pytest.raises(ValueError):
            TrafficConfig(offered_load_bps=0)


class TestAodvConfig:
    def test_net_traversal_time(self):
        cfg = AodvConfig()
        assert cfg.net_traversal_time_s == pytest.approx(
            2 * cfg.node_traversal_time_s * cfg.net_diameter
        )


class TestMobilityAndScenario:
    def test_paper_mobility(self):
        cfg = MobilityConfig()
        assert cfg.speed_mps == 3.0
        assert cfg.pause_s == 3.0
        assert cfg.field_width_m == 1000.0

    def test_paper_scenario(self):
        cfg = ScenarioConfig()
        assert cfg.node_count == 50
        assert cfg.duration_s == 400.0

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            ScenarioConfig(node_count=1)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            ScenarioConfig(duration_s=0.0)
