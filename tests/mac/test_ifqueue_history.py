"""Interface queue and power history table tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mac.ifqueue import IfQueue, QueuedPacket
from repro.mac.power_history import PowerHistoryTable


def entry(tag: int, next_hop: int = 1) -> QueuedPacket:
    return QueuedPacket(packet=tag, next_hop=next_hop)


class TestIfQueue:
    def test_fifo_order(self):
        q = IfQueue(10)
        for k in range(5):
            q.push(entry(k))
        assert [q.pop().packet for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_drop_tail_when_full(self):
        q = IfQueue(2)
        assert q.push(entry(0))
        assert q.push(entry(1))
        assert not q.push(entry(2))
        assert q.drops == 1
        assert len(q) == 2

    def test_paper_default_capacity(self):
        assert IfQueue(50).capacity == 50

    def test_pop_empty_returns_none(self):
        assert IfQueue(5).pop() is None

    def test_peek_does_not_remove(self):
        q = IfQueue(5)
        q.push(entry(7))
        assert q.peek().packet == 7
        assert len(q) == 1

    def test_remove_where(self):
        q = IfQueue(10)
        for k in range(6):
            q.push(entry(k, next_hop=k % 2))
        removed = q.remove_where(lambda e: e.next_hop == 0)
        assert removed == 3
        assert [e.packet for e in [q.pop() for _ in range(3)]] == [1, 3, 5]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            IfQueue(0)

    @given(st.lists(st.integers(), max_size=120))
    def test_property_never_exceeds_capacity(self, tags):
        q = IfQueue(50)
        for t in tags:
            q.push(entry(t))
        assert len(q) <= 50
        assert q.drops == max(len(tags) - 50, 0)


class TestPowerHistoryTable:
    def test_update_then_lookup(self):
        t = PowerHistoryTable(3.0)
        t.update(5, needed_w=0.01, gain=1e-8, now=0.0)
        assert t.needed_power(5, 1.0) == 0.01
        assert t.gain_to(5, 1.0) == 1e-8

    def test_miss_returns_none(self):
        t = PowerHistoryTable(3.0)
        assert t.needed_power(5, 0.0) is None

    def test_expiry_after_three_seconds(self):
        """The paper's 3 s record lifetime."""
        t = PowerHistoryTable(3.0)
        t.update(5, needed_w=0.01, gain=1e-8, now=0.0)
        assert t.needed_power(5, 3.0) == 0.01  # exactly at the boundary: kept
        assert t.needed_power(5, 3.0001) is None

    def test_expired_lookup_purges_record(self):
        t = PowerHistoryTable(3.0)
        t.update(5, needed_w=0.01, gain=1e-8, now=0.0)
        t.needed_power(5, 10.0)
        assert 5 not in t

    def test_update_refreshes_expiry(self):
        t = PowerHistoryTable(3.0)
        t.update(5, needed_w=0.01, gain=1e-8, now=0.0)
        t.update(5, needed_w=0.02, gain=2e-8, now=2.0)
        assert t.needed_power(5, 4.5) == 0.02

    def test_purge_drops_only_expired(self):
        t = PowerHistoryTable(3.0)
        t.update(1, needed_w=0.01, gain=1e-8, now=0.0)
        t.update(2, needed_w=0.01, gain=1e-8, now=5.0)
        t.purge(6.0)
        assert 1 not in t
        assert 2 in t

    def test_rejects_invalid_values(self):
        t = PowerHistoryTable(3.0)
        with pytest.raises(ValueError):
            t.update(1, needed_w=0.0, gain=1e-8, now=0.0)
        with pytest.raises(ValueError):
            t.update(1, needed_w=0.01, gain=0.0, now=0.0)
        with pytest.raises(ValueError):
            PowerHistoryTable(0.0)
