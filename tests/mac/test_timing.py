"""MacTiming tests: airtimes, IFS relationships, NAV durations."""

from __future__ import annotations

import pytest

from repro.config import MacConfig, PhyConfig
from repro.mac.timing import MacTiming


class TestAirtimes:
    def test_rts_airtime(self, timing):
        # 20 B at 1 Mbps + 192 µs PLCP = 352 µs.
        assert timing.rts_airtime == pytest.approx(352e-6)

    def test_cts_and_ack_equal(self, timing):
        assert timing.cts_airtime == timing.ack_airtime  # both 14 B

    def test_data_airtime_512B(self, timing):
        # (512 + 28) B at 2 Mbps + PLCP = 2.352 ms.
        assert timing.data_airtime(512) == pytest.approx(192e-6 + 540 * 8 / 2e6)

    def test_data_longer_than_control(self, timing):
        assert timing.data_airtime(512) > timing.rts_airtime


class TestInterframeSpaces:
    def test_ordering_sifs_difs_eifs(self, timing):
        assert timing.sifs < timing.difs < timing.eifs

    def test_difs_is_sifs_plus_two_slots(self, timing):
        assert timing.difs == pytest.approx(timing.sifs + 2 * timing.slot)

    def test_eifs_covers_ack(self, timing):
        """EIFS protects the ACK a deaf station couldn't anticipate
        (paper Section II: 'EIFS duration is longer than the transmission
        time of an ACK')."""
        assert timing.eifs > timing.ack_airtime
        assert timing.eifs == pytest.approx(
            timing.sifs + timing.difs + timing.ack_airtime
        )


class TestTimeouts:
    def test_cts_timeout_covers_sifs_plus_cts(self, timing):
        assert timing.cts_timeout > timing.sifs + timing.cts_airtime

    def test_ack_timeout_covers_sifs_plus_ack(self, timing):
        assert timing.ack_timeout > timing.sifs + timing.ack_airtime


class TestNavDurations:
    def test_rts_duration_four_way(self, timing):
        expected = (
            3 * timing.sifs
            + timing.cts_airtime
            + timing.data_airtime(512)
            + timing.ack_airtime
        )
        assert timing.rts_duration(512, with_ack=True) == pytest.approx(expected)

    def test_rts_duration_three_way_omits_ack(self, timing):
        diff = timing.rts_duration(512, with_ack=True) - timing.rts_duration(
            512, with_ack=False
        )
        assert diff == pytest.approx(timing.sifs + timing.ack_airtime)

    def test_cts_duration_chains_from_rts(self, timing):
        """CTS duration = RTS duration − SIFS − CTS airtime (802.11 rule)."""
        rts = timing.rts_duration(512, with_ack=True)
        cts = timing.cts_duration(512, with_ack=True)
        assert cts == pytest.approx(rts - timing.sifs - timing.cts_airtime)

    def test_data_duration_three_way_is_zero(self, timing):
        assert timing.data_duration(with_ack=False) == 0.0

    def test_data_duration_four_way_covers_ack(self, timing):
        assert timing.data_duration(with_ack=True) == pytest.approx(
            timing.sifs + timing.ack_airtime
        )


class TestConfigValidation:
    def test_rejects_bad_cw(self):
        with pytest.raises(ValueError):
            MacConfig(cw_min=0)
        with pytest.raises(ValueError):
            MacConfig(cw_min=63, cw_max=31)

    def test_rejects_bad_retry_limits(self):
        with pytest.raises(ValueError):
            MacConfig(short_retry_limit=0)

    def test_phy_rejects_descending_levels(self):
        with pytest.raises(ValueError):
            PhyConfig(power_levels_w=(2e-3, 1e-3))

    def test_phy_rejects_rx_below_cs(self):
        with pytest.raises(ValueError):
            PhyConfig(rx_threshold_w=1e-12, cs_threshold_w=1e-11)
