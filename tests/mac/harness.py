"""Test harness: a handful of MAC-equipped static nodes on one channel.

Wires real radios, channel(s) and MACs without the routing/traffic stack so
MAC behaviour can be driven and observed packet by packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.config import MacConfig, PcmacConfig, PhyConfig, PowerControlConfig
from repro.core.pcmac import PcmacMac
from repro.mac.base import DcfMac
from repro.mac.basic import Basic80211Mac
from repro.phy.channel import Channel
from repro.phy.noise import ConstantNoise
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import Radio
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer


@dataclass
class FakePacket:
    """A minimal network packet for MAC-level tests."""

    flow_id: int = 0
    seq: int = 0
    size_bytes: int = 512
    kind: str = "data"
    payload: Any = None


@dataclass
class StackNode:
    """One node of the MAC test harness."""

    node_id: int
    radio: Radio
    mac: DcfMac
    delivered: list[tuple[Any, int]] = field(default_factory=list)
    failures: list[tuple[Any, int]] = field(default_factory=list)


class MacHarness:
    """N static nodes with real MACs; no routing, no traffic agents."""

    def __init__(
        self,
        positions: list[tuple[float, float]],
        mac_cls: type[DcfMac] = Basic80211Mac,
        *,
        phy_cfg: PhyConfig | None = None,
        mac_cfg: MacConfig | None = None,
        power_cfg: PowerControlConfig | None = None,
        pcmac_cfg: PcmacConfig | None = None,
        seed: int = 1,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = Simulator()
        self.phy_cfg = phy_cfg or PhyConfig()
        self.mac_cfg = mac_cfg or MacConfig()
        self.power_cfg = power_cfg or PowerControlConfig()
        self.pcmac_cfg = pcmac_cfg or PcmacConfig()
        self.tracer = tracer or Tracer()
        propagation = TwoRayGround()
        self.channel = Channel(
            self.sim,
            propagation,
            interference_floor_w=self.phy_cfg.interference_floor_w,
        )
        self.control_channel = Channel(
            self.sim,
            propagation,
            interference_floor_w=self.phy_cfg.interference_floor_w,
            name="control",
        )
        self.nodes: list[StackNode] = []
        noise = ConstantNoise(self.phy_cfg.noise_floor_w)
        for i, pos in enumerate(positions):
            radio = Radio(
                self.sim,
                i,
                lambda p=pos: p,
                rx_threshold_w=self.phy_cfg.rx_threshold_w,
                cs_threshold_w=self.phy_cfg.cs_threshold_w,
                capture_threshold=self.phy_cfg.capture_threshold,
                noise=noise,
                tracer=self.tracer,
            )
            self.channel.attach(radio)
            rng = np.random.default_rng(seed * 1000 + i)
            if mac_cls is PcmacMac:
                control_radio = Radio(
                    self.sim,
                    i,
                    lambda p=pos: p,
                    rx_threshold_w=self.phy_cfg.rx_threshold_w,
                    cs_threshold_w=self.phy_cfg.cs_threshold_w,
                    capture_threshold=self.phy_cfg.capture_threshold,
                    noise=noise,
                    tracer=self.tracer,
                    channel_name="control",
                )
                self.control_channel.attach(control_radio)
                mac = PcmacMac(
                    self.sim,
                    i,
                    radio,
                    self.channel,
                    control_radio=control_radio,
                    control_channel=self.control_channel,
                    mac_cfg=self.mac_cfg,
                    phy_cfg=self.phy_cfg,
                    power_cfg=self.power_cfg,
                    pcmac_cfg=self.pcmac_cfg,
                    rng=rng,
                    tracer=self.tracer,
                )
            else:
                mac = mac_cls(
                    self.sim,
                    i,
                    radio,
                    self.channel,
                    mac_cfg=self.mac_cfg,
                    phy_cfg=self.phy_cfg,
                    power_cfg=self.power_cfg,
                    rng=rng,
                    tracer=self.tracer,
                )
            node = StackNode(i, radio, mac)
            mac.deliver_up = (
                lambda pkt, src, n=node: n.delivered.append((pkt, src))
            )
            mac.on_link_failure = (
                lambda pkt, nh, n=node: n.failures.append((pkt, nh))
            )
            self.nodes.append(node)

    def send(self, src: int, dst: int, packet: FakePacket | None = None) -> FakePacket:
        """Enqueue one packet from node ``src`` to node ``dst``."""
        pkt = packet or FakePacket()
        self.nodes[src].mac.enqueue_packet(pkt, dst)
        return pkt

    def run(self, duration: float) -> None:
        """Advance the simulation."""
        self.sim.run_until(self.sim.now + duration)
