"""Power-policy unit tests for the three baseline protocol variants."""

from __future__ import annotations

import pytest

from repro.mac.basic import Basic80211Mac
from repro.mac.frames import FrameType, MacFrame
from repro.mac.scheme1 import Scheme1Mac
from repro.mac.scheme2 import Scheme2Mac
from tests.mac.harness import FakePacket, MacHarness

MAX_W = 0.2818


def rts_frame(src=1, power=MAX_W) -> MacFrame:
    return MacFrame(ftype=FrameType.RTS, src=src, dst=0, size_bytes=20,
                    tx_power_w=power)


def data_frame(src=1, power=MAX_W) -> MacFrame:
    return MacFrame(ftype=FrameType.DATA, src=src, dst=0, size_bytes=540,
                    tx_power_w=power)


class TestBasicPolicy:
    def test_everything_at_max(self):
        h = MacHarness([(0, 0), (100, 0)], mac_cls=Basic80211Mac)
        mac = h.nodes[0].mac
        # Teach the history a low needed power — basic must ignore it.
        mac.history.update(1, needed_w=2e-3, gain=1e-6, now=0.0)
        assert mac.power_for_rts(1) == pytest.approx(MAX_W)
        assert mac.power_for_cts(rts_frame(), 1e-9) == pytest.approx(MAX_W)
        assert mac.power_for_data(1, None) == pytest.approx(MAX_W)
        assert mac.power_for_ack(data_frame(), 1e-9) == pytest.approx(MAX_W)
        assert mac.power_for_broadcast() == pytest.approx(MAX_W)


class TestScheme1Policy:
    def test_rts_cts_at_max_data_ack_at_needed(self):
        h = MacHarness([(0, 0), (100, 0)], mac_cls=Scheme1Mac)
        mac = h.nodes[0].mac
        mac.history.update(1, needed_w=2e-3, gain=1e-6, now=0.0)
        assert mac.power_for_rts(1) == pytest.approx(MAX_W)
        assert mac.power_for_cts(rts_frame(), 1e-9) == pytest.approx(MAX_W)
        # DATA quantises the needed power up to a table level.
        assert mac.power_for_data(1, None) == pytest.approx(2e-3)
        assert mac.power_for_ack(data_frame(src=1), 1e-9) == pytest.approx(2e-3)

    def test_cold_history_means_max_data(self):
        h = MacHarness([(0, 0), (100, 0)], mac_cls=Scheme1Mac)
        assert h.nodes[0].mac.power_for_data(7, None) == pytest.approx(MAX_W)


class TestScheme2Policy:
    def test_all_frames_at_needed(self):
        h = MacHarness([(0, 0), (100, 0)], mac_cls=Scheme2Mac)
        mac = h.nodes[0].mac
        mac.history.update(1, needed_w=2e-3, gain=1e-6, now=0.0)
        assert mac.power_for_rts(1) == pytest.approx(2e-3)
        assert mac.power_for_cts(rts_frame(src=1), 1e-9) == pytest.approx(2e-3)
        assert mac.power_for_data(1, None) == pytest.approx(2e-3)

    def test_needed_power_quantises_up(self):
        h = MacHarness([(0, 0), (100, 0)], mac_cls=Scheme2Mac)
        mac = h.nodes[0].mac
        mac.history.update(1, needed_w=5e-3, gain=1e-6, now=0.0)
        assert mac.power_for_rts(1) == pytest.approx(7.25e-3)

    def test_escalation_on_rts_failure(self):
        from repro.mac.base import _TxAttempt
        from repro.mac.ifqueue import QueuedPacket

        h = MacHarness([(0, 0), (100, 0)], mac_cls=Scheme2Mac)
        mac = h.nodes[0].mac
        mac.history.update(1, needed_w=2e-3, gain=1e-6, now=0.0)
        attempt = _TxAttempt(entry=QueuedPacket(packet=FakePacket(), next_hop=1))
        mac.on_rts_failure(attempt)
        assert attempt.boosted_rts_power_w == pytest.approx(3.45e-3)
        mac.on_rts_failure(attempt)
        assert attempt.boosted_rts_power_w == pytest.approx(4.8e-3)

    def test_escalation_saturates_at_max(self):
        from repro.mac.base import _TxAttempt
        from repro.mac.ifqueue import QueuedPacket

        h = MacHarness([(0, 0), (100, 0)], mac_cls=Scheme2Mac)
        mac = h.nodes[0].mac
        attempt = _TxAttempt(entry=QueuedPacket(packet=FakePacket(), next_hop=1))
        for _ in range(15):
            mac.on_rts_failure(attempt)
        # Cold history starts at max: no escalation possible.
        assert attempt.boosted_rts_power_w is None

    def test_learning_from_overheard_frames(self):
        """Any decodable frame refreshes the history (paper Section III)."""
        h = MacHarness([(0, 0), (60, 0), (120, 0)], mac_cls=Scheme2Mac)
        h.send(0, 1, FakePacket())
        h.run(0.2)
        # Node 2 overheard node 0's RTS/DATA at 120 m and node 1's CTS.
        mac2 = h.nodes[2].mac
        assert 0 in mac2.history
        assert 1 in mac2.history
        # The learned level for the 120 m neighbour must cover the link.
        needed = mac2.needed_power_to(0)
        assert needed >= 10.6e-3  # 120 m needs at least the 110–120 m class


class TestAirtimeAccounting:
    def test_control_vs_data_split(self):
        h = MacHarness([(0, 0), (100, 0)])
        h.send(0, 1)
        h.run(0.2)
        st = h.nodes[0].mac.stats
        assert st.airtime_data_s > 0
        assert st.airtime_control_s > 0  # the RTS
        # One 512 B DATA at 2 Mbps outweighs one 20 B RTS at 1 Mbps.
        assert st.airtime_data_s > st.airtime_control_s
