"""White-box tests of DCF medium-access timing: defer, backoff freezing,
NAV wake-ups and EIFS consumption.

These pin the access machinery's arithmetic directly — the behaviours the
behavioural tests can only observe in aggregate.
"""

from __future__ import annotations

import pytest

from repro.mac.base import MacState
from tests.mac.harness import FakePacket, MacHarness

RX = 3.652e-10


class TestInitialAccess:
    def test_first_tx_waits_at_least_difs(self, tracer):
        h = MacHarness([(0, 0), (100, 0)], tracer=tracer)
        h.send(0, 1)
        h.run(0.05)
        rts_times = [
            r.time for r in tracer.query("mac.handshake", node=0)
            if r.get("kind") == "RTS"
        ]
        assert rts_times[0] >= h.nodes[0].mac.timing.difs

    def test_access_time_is_difs_plus_whole_slots(self, tracer):
        h = MacHarness([(0, 0), (100, 0)], tracer=tracer)
        h.send(0, 1)
        h.run(0.05)
        (rts_time,) = [
            r.time for r in tracer.query("mac.handshake", node=0)
            if r.get("kind") == "RTS"
        ]
        timing = h.nodes[0].mac.timing
        slots = (rts_time - timing.difs) / timing.slot
        assert slots == pytest.approx(round(slots), abs=1e-6)
        assert 0 <= round(slots) <= 31


class TestBackoffFreezing:
    def test_backoff_survives_interruption(self):
        """A frozen countdown resumes with the banked residual, not a fresh
        draw (802.11's fairness mechanism)."""
        h = MacHarness([(0, 0), (100, 0), (150, 0)])
        mac = h.nodes[0].mac
        h.send(0, 1)
        h.run(0.0001)  # countdown armed
        drawn = mac.backoff.slots_remaining
        # Interrupt by raising carrier at node 0 (fake a busy edge).
        mac.on_carrier_busy()
        assert mac.backoff.slots_remaining is not None
        assert mac.backoff.slots_remaining <= drawn

    def test_paused_access_has_no_event(self):
        h = MacHarness([(0, 0), (100, 0)])
        mac = h.nodes[0].mac
        h.send(0, 1)
        h.run(0.0001)
        mac.on_carrier_busy()
        assert not mac._access_timer.armed
        mac.on_carrier_idle(failed=False)
        assert mac._access_timer.armed


class TestNavWake:
    def test_nav_busy_schedules_wake_not_countdown(self):
        h = MacHarness([(0, 0), (100, 0)])
        mac = h.nodes[0].mac
        # Pre-load a NAV reservation, then enqueue.
        mac.nav.set(0.010)
        h.send(0, 1)
        h.run(0.0001)
        assert mac._access_timer.armed
        assert mac._access_is_countdown is False

    def test_transmission_starts_after_nav_expiry(self, tracer):
        h = MacHarness([(0, 0), (100, 0)], tracer=tracer)
        mac = h.nodes[0].mac
        mac.nav.set(0.010)
        h.send(0, 1)
        h.run(0.05)
        (rts_time,) = [
            r.time for r in tracer.query("mac.handshake", node=0)
            if r.get("kind") == "RTS"
        ]
        assert rts_time >= 0.010 + mac.timing.difs


class TestEifsConsumption:
    def test_eifs_flag_cleared_after_one_access(self):
        h = MacHarness([(0, 0), (100, 0)])
        mac = h.nodes[0].mac
        mac._use_eifs = True
        h.send(0, 1)
        h.run(0.05)
        assert mac._use_eifs is False

    def test_eifs_lengthens_the_defer(self, tracer):
        """The same seed draws the same backoff; EIFS−DIFS shows up as a
        constant shift of the first RTS."""
        h1 = MacHarness([(0, 0), (100, 0)], tracer=tracer)
        h1.send(0, 1)
        h1.run(0.05)
        (t_normal,) = [
            r.time for r in tracer.query("mac.handshake", node=0)
            if r.get("kind") == "RTS"
        ]
        tracer2 = type(tracer)()
        tracer2.enable("mac.handshake")
        h2 = MacHarness([(0, 0), (100, 0)], tracer=tracer2)
        h2.nodes[0].mac._use_eifs = True
        h2.send(0, 1)
        h2.run(0.05)
        (t_eifs,) = [
            r.time for r in tracer2.query("mac.handshake", node=0)
            if r.get("kind") == "RTS"
        ]
        timing = h1.nodes[0].mac.timing
        assert t_eifs - t_normal == pytest.approx(
            timing.eifs - timing.difs, abs=1e-9
        )

    def test_clean_decode_clears_pending_eifs(self):
        h = MacHarness([(0, 0), (100, 0), (200, 0)])
        mac2 = h.nodes[2].mac
        mac2._use_eifs = True
        h.send(0, 1)  # node 2 cleanly decodes the overheard RTS
        h.run(0.01)
        assert mac2._use_eifs is False


class TestStateMachineGuards:
    def test_cts_from_wrong_node_ignored(self):
        from repro.mac.frames import FrameType, MacFrame

        h = MacHarness([(0, 0), (100, 0)])
        mac = h.nodes[0].mac
        h.send(0, 1)
        h.run(0.0001)
        mac._state = MacState.WAIT_CTS
        rogue = MacFrame(
            ftype=FrameType.CTS, src=7, dst=0, size_bytes=14, tx_power_w=0.1
        )
        mac._handle_cts(rogue, 1e-9)
        assert mac._state == MacState.WAIT_CTS  # unchanged

    def test_ack_from_wrong_node_ignored(self):
        from repro.mac.frames import FrameType, MacFrame

        h = MacHarness([(0, 0), (100, 0)])
        mac = h.nodes[0].mac
        h.send(0, 1)
        h.run(0.0001)
        mac._state = MacState.WAIT_ACK
        rogue = MacFrame(
            ftype=FrameType.ACK, src=7, dst=0, size_bytes=14, tx_power_w=0.1
        )
        mac._handle_ack(rogue)
        assert mac._state == MacState.WAIT_ACK

    def test_idle_mac_reports_not_busy(self):
        h = MacHarness([(0, 0), (100, 0)])
        assert not h.nodes[0].mac.busy

    def test_mac_busy_while_owning_packet(self):
        h = MacHarness([(0, 0), (100, 0)])
        h.send(0, 1)
        assert h.nodes[0].mac.busy
