"""NAV and backoff engine tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mac.backoff import BackoffEngine
from repro.mac.nav import Nav


class TestNav:
    def test_initially_idle(self):
        nav = Nav()
        assert not nav.busy_at(0.0)

    def test_set_reserves(self):
        nav = Nav()
        assert nav.set(5.0)
        assert nav.busy_at(4.999)
        assert not nav.busy_at(5.0)

    def test_shorter_duration_never_truncates(self):
        """802.11: NAV updates only extend the reservation."""
        nav = Nav()
        nav.set(10.0)
        assert not nav.set(5.0)
        assert nav.until == 10.0

    def test_longer_duration_extends(self):
        nav = Nav()
        nav.set(5.0)
        assert nav.set(10.0)
        assert nav.until == 10.0

    def test_remaining(self):
        nav = Nav()
        nav.set(10.0)
        assert nav.remaining(4.0) == pytest.approx(6.0)
        assert nav.remaining(12.0) == 0.0

    def test_reset(self):
        nav = Nav()
        nav.set(10.0)
        nav.reset()
        assert not nav.busy_at(0.0)


class TestBackoffEngine:
    def test_draw_within_cw(self, rng):
        eng = BackoffEngine(31, 1023, rng)
        for _ in range(50):
            eng.finish()
            assert 0 <= eng.draw() <= 31

    def test_draw_is_idempotent_while_pending(self, rng):
        eng = BackoffEngine(31, 1023, rng)
        first = eng.draw()
        assert eng.draw() == first

    def test_consume_decrements(self, rng):
        eng = BackoffEngine(31, 1023, rng)
        slots = eng.draw()
        if slots >= 2:
            eng.consume(2)
            assert eng.slots_remaining == slots - 2

    def test_consume_clamps_at_zero(self, rng):
        eng = BackoffEngine(31, 1023, rng)
        eng.draw()
        eng.consume(10_000)
        assert eng.slots_remaining == 0

    def test_consume_without_pending_raises(self, rng):
        eng = BackoffEngine(31, 1023, rng)
        with pytest.raises(RuntimeError):
            eng.consume(1)

    def test_consume_rejects_negative(self, rng):
        eng = BackoffEngine(31, 1023, rng)
        eng.draw()
        with pytest.raises(ValueError):
            eng.consume(-1)

    def test_failure_doubles_cw(self, rng):
        eng = BackoffEngine(31, 1023, rng)
        eng.on_failure()
        assert eng.cw == 63
        eng.on_failure()
        assert eng.cw == 127

    def test_cw_caps_at_max(self, rng):
        eng = BackoffEngine(31, 1023, rng)
        for _ in range(20):
            eng.on_failure()
        assert eng.cw == 1023

    def test_success_resets_cw(self, rng):
        eng = BackoffEngine(31, 1023, rng)
        eng.on_failure()
        eng.on_failure()
        eng.on_success()
        assert eng.cw == 31

    def test_failure_discards_pending_backoff(self, rng):
        eng = BackoffEngine(31, 1023, rng)
        eng.draw()
        eng.on_failure()
        assert not eng.pending

    def test_rejects_bad_bounds(self, rng):
        with pytest.raises(ValueError):
            BackoffEngine(0, 1023, rng)
        with pytest.raises(ValueError):
            BackoffEngine(63, 31, rng)

    @given(st.integers(min_value=0, max_value=20))
    def test_property_cw_follows_standard_sequence(self, failures):
        """cw after k failures is min(2^k·(cw_min+1)−1, cw_max)."""
        eng = BackoffEngine(31, 1023, np.random.default_rng(0))
        for _ in range(failures):
            eng.on_failure()
        assert eng.cw == min(2**failures * 32 - 1, 1023)

    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=30))
    def test_property_slots_never_negative(self, consumes):
        eng = BackoffEngine(31, 1023, np.random.default_rng(1))
        eng.draw()
        for c in consumes:
            eng.consume(c)
            assert eng.slots_remaining >= 0
