"""Behavioural tests of the DCF state machine over real radios."""

from __future__ import annotations

import pytest

from repro.config import MacConfig
from repro.mac.frames import BROADCAST, FrameType
from tests.mac.harness import FakePacket, MacHarness


class TestFourWayHandshake:
    def test_single_packet_delivered(self):
        h = MacHarness([(0, 0), (100, 0)])
        pkt = h.send(0, 1)
        h.run(0.1)
        assert h.nodes[1].delivered == [(pkt, 0)]

    def test_handshake_frame_sequence(self, tracer):
        h = MacHarness([(0, 0), (100, 0)], tracer=tracer)
        h.send(0, 1)
        h.run(0.1)
        kinds = [
            r.get("kind")
            for r in tracer.query("mac.handshake")
        ]
        assert kinds == ["RTS", "CTS", "DATA", "ACK"]

    def test_stats_count_each_frame_once(self):
        h = MacHarness([(0, 0), (100, 0)])
        h.send(0, 1)
        h.run(0.1)
        assert h.nodes[0].mac.stats.rts_sent == 1
        assert h.nodes[1].mac.stats.cts_sent == 1
        assert h.nodes[0].mac.stats.data_sent == 1
        assert h.nodes[1].mac.stats.ack_sent == 1

    def test_back_to_back_packets_all_delivered(self):
        h = MacHarness([(0, 0), (100, 0)])
        pkts = [h.send(0, 1, FakePacket(seq=k)) for k in range(10)]
        h.run(1.0)
        assert [p.seq for p, _ in h.nodes[1].delivered] == [p.seq for p in pkts]

    def test_bidirectional_traffic(self):
        h = MacHarness([(0, 0), (100, 0)])
        h.send(0, 1, FakePacket(seq=1))
        h.send(1, 0, FakePacket(seq=2))
        h.run(1.0)
        assert len(h.nodes[1].delivered) == 1
        assert len(h.nodes[0].delivered) == 1

    def test_out_of_range_peer_drops_after_retries(self):
        h = MacHarness([(0, 0), (800, 0)])  # beyond decode and sensing range
        pkt = h.send(0, 1)
        h.run(2.0)
        assert h.nodes[1].delivered == []
        assert h.nodes[0].failures == [(pkt, 1)]
        # Short retry limit: 7 RTS attempts, then the drop.
        assert h.nodes[0].mac.stats.rts_sent == 7
        assert h.nodes[0].mac.stats.drops_retry_limit == 1

    def test_queue_overflow_reports_drop(self):
        h = MacHarness([(0, 0), (100, 0)], mac_cfg=MacConfig(ifq_capacity=2))
        results = [h.send(0, 1) for _ in range(10)]
        assert h.nodes[0].mac.stats.drops_queue_full >= 1


class TestBroadcast:
    def test_broadcast_reaches_all_in_range(self):
        h = MacHarness([(0, 0), (100, 0), (200, 0), (600, 0)])
        pkt = FakePacket(kind="aodv")
        h.nodes[0].mac.enqueue_packet(pkt, BROADCAST)
        h.run(0.1)
        assert h.nodes[1].delivered == [(pkt, 0)]
        assert h.nodes[2].delivered == [(pkt, 0)]
        assert h.nodes[3].delivered == []  # 600 m: beyond decode range

    def test_broadcast_has_no_handshake(self, tracer):
        h = MacHarness([(0, 0), (100, 0)], tracer=tracer)
        h.nodes[0].mac.enqueue_packet(FakePacket(), BROADCAST)
        h.run(0.1)
        kinds = {r.get("kind") for r in tracer.query("mac.handshake")}
        assert kinds == {"DATA"}
        assert h.nodes[0].mac.stats.broadcast_sent == 1


class TestVirtualCarrierSense:
    def test_overhearing_node_defers_for_nav(self):
        """A third node that hears the RTS must not transmit during the
        reserved exchange."""
        h = MacHarness([(0, 0), (100, 0), (200, 0)])
        h.send(0, 1)
        # Node 2 gets a packet for node 1 the moment the exchange starts.
        h.sim.schedule(0.0005, lambda: h.send(2, 1, FakePacket(seq=99)))
        h.run(0.5)
        # Both packets arrive despite the contention.
        assert len(h.nodes[1].delivered) == 2

    def test_nav_set_from_overheard_rts(self):
        h = MacHarness([(0, 0), (100, 0), (200, 0)])
        h.send(0, 1)
        h.run(0.01)
        # Node 2 overheard either the RTS (from 0) or CTS (from 1).
        assert h.nodes[2].mac.nav.until > 0


class TestEifs:
    def test_sensing_only_node_uses_eifs(self):
        """A node in the carrier-sensing zone (sensed, undecodable frames)
        switches its next deferral to EIFS — paper Section II."""
        h = MacHarness([(0, 0), (100, 0), (400, 0)])
        h.send(0, 1)
        h.run(0.01)
        # Node 2 at 400 m: inside 550 m sensing, outside 250 m decoding.
        assert h.nodes[2].mac._use_eifs is True

    def test_decoding_node_does_not_use_eifs(self):
        h = MacHarness([(0, 0), (100, 0), (200, 0)])
        h.send(0, 1)
        h.run(0.01)
        assert h.nodes[2].mac._use_eifs is False


class TestRetryBehaviour:
    def test_cw_resets_after_success(self):
        h = MacHarness([(0, 0), (100, 0)])
        h.send(0, 1)
        h.run(0.5)
        assert h.nodes[0].mac.backoff.cw == h.mac_cfg.cw_min

    def test_duplicate_filtering_on_retry(self):
        """Force an ACK loss by detaching the receiver mid-exchange is hard;
        instead verify the dedup logic directly."""
        h = MacHarness([(0, 0), (100, 0)])
        mac1 = h.nodes[1].mac
        from repro.mac.frames import MacFrame

        d1 = MacFrame(
            ftype=FrameType.DATA, src=0, dst=1, size_bytes=540, seq=7, retry=False
        )
        assert mac1.on_data_received(d1) is False
        d2 = MacFrame(
            ftype=FrameType.DATA, src=0, dst=1, size_bytes=540, seq=7, retry=True
        )
        assert mac1.on_data_received(d2) is True  # duplicate
        d3 = MacFrame(
            ftype=FrameType.DATA, src=0, dst=1, size_bytes=540, seq=8, retry=True
        )
        assert mac1.on_data_received(d3) is False  # retry of an unseen frame


class TestEnergyAccounting:
    def test_tx_energy_accumulates(self):
        h = MacHarness([(0, 0), (100, 0)])
        h.send(0, 1)
        h.run(0.1)
        # Sender spent energy on RTS + DATA; receiver on CTS + ACK.
        assert h.nodes[0].mac.stats.tx_energy_j > 0
        assert h.nodes[1].mac.stats.tx_energy_j > 0

    def test_max_power_mac_spends_more_than_low_power(self):
        from repro.mac.scheme2 import Scheme2Mac

        h1 = MacHarness([(0, 0), (60, 0)])
        h1.send(0, 1)
        # Warm the history table first so scheme2 knows the needed power:
        h2 = MacHarness([(0, 0), (60, 0)], mac_cls=Scheme2Mac)
        h2.send(0, 1)  # first exchange at max power (cold history)
        h2.run(0.5)
        h2.send(0, 1)  # second exchange at the learned low power
        h1.run(0.5)
        h1.send(0, 1)
        h1.run(0.5)
        h2.run(0.5)
        assert (
            h2.nodes[0].mac.stats.tx_energy_j < h1.nodes[0].mac.stats.tx_energy_j
        )
