"""Traffic generator tests (driven against a stub node)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.kernel import Simulator
from repro.traffic.cbr import CbrSource
from repro.traffic.poisson import PoissonSource


class StubNode:
    """Minimal Node stand-in capturing app_send calls."""

    def __init__(self, sim: Simulator, node_id: int = 0) -> None:
        self.sim = sim
        self.node_id = node_id
        self.sent = []

    def app_send(self, packet) -> None:
        self.sent.append((self.sim.now, packet))


class TestCbrSource:
    def test_emits_at_fixed_interval(self, sim):
        node = StubNode(sim)
        CbrSource(node, 0, dst=1, interval_s=0.5, size_bytes=512, start_s=1.0)
        sim.run_until(3.1)
        times = [t for t, _ in node.sent]
        assert times == pytest.approx([1.0, 1.5, 2.0, 2.5, 3.0])

    def test_packet_fields(self, sim):
        node = StubNode(sim, node_id=4)
        CbrSource(node, 7, dst=9, interval_s=1.0, size_bytes=256, start_s=0.5)
        sim.run_until(1.0)
        _, pkt = node.sent[0]
        assert pkt.flow_id == 7
        assert pkt.src == 4
        assert pkt.dst == 9
        assert pkt.size_bytes == 256
        assert pkt.kind == "data"
        assert pkt.created_at == 0.5

    def test_sequence_numbers_increment(self, sim):
        node = StubNode(sim)
        CbrSource(node, 0, dst=1, interval_s=0.25, size_bytes=64, start_s=0.0)
        sim.run_until(1.1)
        seqs = [p.seq for _, p in node.sent]
        assert seqs == [1, 2, 3, 4, 5]

    def test_stop_time_honoured(self, sim):
        node = StubNode(sim)
        CbrSource(node, 0, dst=1, interval_s=0.5, size_bytes=64,
                  start_s=0.0, stop_s=1.2)
        sim.run_until(5.0)
        assert len(node.sent) == 3  # t = 0.0, 0.5, 1.0

    def test_rate_matches_offered_load(self, sim):
        """512 B at 60 kbps → one packet every 68.27 ms."""
        node = StubNode(sim)
        interval = 512 * 8 / 60e3
        CbrSource(node, 0, dst=1, interval_s=interval, size_bytes=512, start_s=0.0)
        sim.run_until(10.0)
        delivered_bps = len(node.sent) * 512 * 8 / 10.0
        assert delivered_bps == pytest.approx(60e3, rel=0.02)

    def test_rejects_bad_args(self, sim):
        node = StubNode(sim)
        with pytest.raises(ValueError):
            CbrSource(node, 0, dst=0, interval_s=1.0, size_bytes=64, start_s=0.0)
        with pytest.raises(ValueError):
            CbrSource(node, 0, dst=1, interval_s=0.0, size_bytes=64, start_s=0.0)


class TestPoissonSource:
    def test_mean_rate_approximates_target(self, sim):
        node = StubNode(sim)
        PoissonSource(
            node, 0, dst=1, mean_interval_s=0.05, size_bytes=64,
            start_s=0.0, rng=np.random.default_rng(3),
        )
        sim.run_until(60.0)
        rate = len(node.sent) / 60.0
        assert rate == pytest.approx(20.0, rel=0.15)

    def test_gaps_are_irregular(self, sim):
        node = StubNode(sim)
        PoissonSource(
            node, 0, dst=1, mean_interval_s=0.1, size_bytes=64,
            start_s=0.0, rng=np.random.default_rng(4),
        )
        sim.run_until(10.0)
        times = [t for t, _ in node.sent]
        gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
        assert len(gaps) > 1  # CBR would produce a single gap value

    def test_rejects_bad_args(self, sim):
        node = StubNode(sim)
        with pytest.raises(ValueError):
            PoissonSource(node, 0, dst=1, mean_interval_s=0.0, size_bytes=64,
                          start_s=0.0, rng=np.random.default_rng(1))
