"""Traffic generator tests (driven against a stub node)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.kernel import Simulator
from repro.traffic.cbr import CbrSource
from repro.traffic.poisson import PoissonSource


class StubNode:
    """Minimal Node stand-in capturing app_send calls."""

    def __init__(self, sim: Simulator, node_id: int = 0) -> None:
        self.sim = sim
        self.node_id = node_id
        self.sent = []

    def app_send(self, packet) -> None:
        self.sent.append((self.sim.now, packet))


class TestCbrSource:
    def test_emits_at_fixed_interval(self, sim):
        node = StubNode(sim)
        CbrSource(node, 0, dst=1, interval_s=0.5, size_bytes=512, start_s=1.0)
        sim.run_until(3.1)
        times = [t for t, _ in node.sent]
        assert times == pytest.approx([1.0, 1.5, 2.0, 2.5, 3.0])

    def test_packet_fields(self, sim):
        node = StubNode(sim, node_id=4)
        CbrSource(node, 7, dst=9, interval_s=1.0, size_bytes=256, start_s=0.5)
        sim.run_until(1.0)
        _, pkt = node.sent[0]
        assert pkt.flow_id == 7
        assert pkt.src == 4
        assert pkt.dst == 9
        assert pkt.size_bytes == 256
        assert pkt.kind == "data"
        assert pkt.created_at == 0.5

    def test_sequence_numbers_increment(self, sim):
        node = StubNode(sim)
        CbrSource(node, 0, dst=1, interval_s=0.25, size_bytes=64, start_s=0.0)
        sim.run_until(1.1)
        seqs = [p.seq for _, p in node.sent]
        assert seqs == [1, 2, 3, 4, 5]

    def test_stop_time_honoured(self, sim):
        node = StubNode(sim)
        CbrSource(node, 0, dst=1, interval_s=0.5, size_bytes=64,
                  start_s=0.0, stop_s=1.2)
        sim.run_until(5.0)
        assert len(node.sent) == 3  # t = 0.0, 0.5, 1.0

    def test_rate_matches_offered_load(self, sim):
        """512 B at 60 kbps → one packet every 68.27 ms."""
        node = StubNode(sim)
        interval = 512 * 8 / 60e3
        CbrSource(node, 0, dst=1, interval_s=interval, size_bytes=512, start_s=0.0)
        sim.run_until(10.0)
        delivered_bps = len(node.sent) * 512 * 8 / 10.0
        assert delivered_bps == pytest.approx(60e3, rel=0.02)

    def test_rejects_bad_args(self, sim):
        node = StubNode(sim)
        with pytest.raises(ValueError):
            CbrSource(node, 0, dst=0, interval_s=1.0, size_bytes=64, start_s=0.0)
        with pytest.raises(ValueError):
            CbrSource(node, 0, dst=1, interval_s=0.0, size_bytes=64, start_s=0.0)


class TestPoissonSource:
    def test_mean_rate_approximates_target(self, sim):
        node = StubNode(sim)
        PoissonSource(
            node, 0, dst=1, mean_interval_s=0.05, size_bytes=64,
            start_s=0.0, rng=np.random.default_rng(3),
        )
        sim.run_until(60.0)
        rate = len(node.sent) / 60.0
        assert rate == pytest.approx(20.0, rel=0.15)

    def test_gaps_are_irregular(self, sim):
        node = StubNode(sim)
        PoissonSource(
            node, 0, dst=1, mean_interval_s=0.1, size_bytes=64,
            start_s=0.0, rng=np.random.default_rng(4),
        )
        sim.run_until(10.0)
        times = [t for t, _ in node.sent]
        gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
        assert len(gaps) > 1  # CBR would produce a single gap value

    def test_rejects_bad_args(self, sim):
        node = StubNode(sim)
        with pytest.raises(ValueError):
            PoissonSource(node, 0, dst=1, mean_interval_s=0.0, size_bytes=64,
                          start_s=0.0, rng=np.random.default_rng(1))

    def test_rejects_self_destination(self, sim):
        node = StubNode(sim, node_id=3)
        with pytest.raises(ValueError):
            PoissonSource(node, 0, dst=3, mean_interval_s=0.1, size_bytes=64,
                          start_s=0.0, rng=np.random.default_rng(1))

    def test_start_time_delays_first_packet(self, sim):
        node = StubNode(sim)
        PoissonSource(node, 0, dst=1, mean_interval_s=0.01, size_bytes=64,
                      start_s=2.0, rng=np.random.default_rng(5))
        sim.run_until(1.99)
        assert node.sent == []
        sim.run_until(3.0)
        assert node.sent
        assert node.sent[0][0] == pytest.approx(2.0)

    def test_stop_time_honoured(self, sim):
        node = StubNode(sim)
        src = PoissonSource(node, 0, dst=1, mean_interval_s=0.05, size_bytes=64,
                            start_s=0.0, stop_s=1.0,
                            rng=np.random.default_rng(6))
        sim.run_until(30.0)
        assert all(t < 1.0 for t, _ in node.sent)
        assert src.sent == len(node.sent)

    def test_packet_fields_and_sequence(self, sim):
        node = StubNode(sim, node_id=2)
        PoissonSource(node, 9, dst=5, mean_interval_s=0.1, size_bytes=256,
                      start_s=0.0, rng=np.random.default_rng(7))
        sim.run_until(2.0)
        packets = [p for _, p in node.sent]
        assert [p.seq for p in packets] == list(range(1, len(packets) + 1))
        assert all(p.flow_id == 9 for p in packets)
        assert all(p.src == 2 and p.dst == 5 for p in packets)
        assert all(p.size_bytes == 256 and p.kind == "data" for p in packets)
        assert [p.created_at for p in packets] == [t for t, _ in node.sent]

    def test_deterministic_given_rng_seed(self):
        times = []
        for _ in range(2):
            sim = Simulator()
            node = StubNode(sim)
            PoissonSource(node, 0, dst=1, mean_interval_s=0.1, size_bytes=64,
                          start_s=0.0, rng=np.random.default_rng(11))
            sim.run_until(5.0)
            times.append([t for t, _ in node.sent])
        assert times[0] == times[1]

    def test_gap_distribution_matches_exponential(self, sim):
        """Mean and coefficient of variation of the gaps match exp(λ).

        An exponential has CV = 1; CBR has CV = 0.  This pins down that the
        source draws genuinely exponential gaps, not merely jittered ones.
        """
        node = StubNode(sim)
        PoissonSource(node, 0, dst=1, mean_interval_s=0.02, size_bytes=64,
                      start_s=0.0, rng=np.random.default_rng(12))
        sim.run_until(200.0)
        times = np.array([t for t, _ in node.sent])
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(0.02, rel=0.05)
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, rel=0.1)
