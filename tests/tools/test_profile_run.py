"""Smoke tests for tools/profile_run.py (the cProfile harness)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]
TOOL = ROOT / "tools" / "profile_run.py"
SPEC = ROOT / "examples" / "grid_poisson.spec.json"


def run_tool(*extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(TOOL), "--scenario", str(SPEC),
         "--duration", "1.0", "--top", "5", *extra],
        capture_output=True, text=True, timeout=120, cwd=ROOT,
    )


class TestProfileRun:
    def test_prints_hot_spots_and_rate(self):
        proc = run_tool("--sort", "tottime")
        assert proc.returncode == 0, proc.stderr
        assert "events/s under the profiler" in proc.stdout
        assert "ncalls" in proc.stdout  # the pstats table rendered

    def test_out_writes_formatted_report(self, tmp_path):
        out = tmp_path / "report.txt"
        proc = run_tool("--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert f"report written to {out}" in proc.stdout
        text = out.read_text()
        assert "scenario: " in text
        assert "ncalls" in text

    def test_dump_writes_raw_pstats(self, tmp_path):
        import pstats

        dump = tmp_path / "run.prof"
        proc = run_tool("--dump", str(dump))
        assert proc.returncode == 0, proc.stderr
        stats = pstats.Stats(str(dump))
        assert stats.total_calls > 0
