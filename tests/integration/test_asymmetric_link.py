"""Integration: the asymmetric-link problem and PCMAC's fix (Figures 4/6).

Static geometry: A(0)→B(100) low-power pair; C(310)→D(550) maximum-power
pair.  C sits outside the sensing zone of A's ~15 mW transmissions but
easily corrupts B.  Expected phenomenology (paper Section III):

* Scheme 2 (everything at needed power): A→B is suppressed — frequent DATA
  collisions at B that C cannot know about.
* PCMAC: B's noise-tolerance broadcasts reach C (250 m decode at maximum
  power) and the admission rule makes C defer; A→B recovers.
"""

from __future__ import annotations

import pytest

from repro import ScenarioConfig, TrafficConfig, build_network
from repro.config import MobilityConfig

pytestmark = pytest.mark.slow

POSITIONS = [(0.0, 0.0), (100.0, 0.0), (310.0, 0.0), (550.0, 0.0)]
FLOWS = [(0, 1), (2, 3)]
LOAD_BPS = 1200e3


def run(protocol: str):
    cfg = ScenarioConfig(
        node_count=4,
        duration_s=30.0,
        seed=11,
        traffic=TrafficConfig(flow_count=2, offered_load_bps=LOAD_BPS),
        mobility=MobilityConfig(speed_mps=0.0),
    )
    net = build_network(
        cfg,
        protocol,
        positions=POSITIONS,
        mobile=False,
        routing="static",
        flow_pairs=FLOWS,
    )
    result = net.run()
    return result, net.metrics.flows


@pytest.fixture(scope="module")
def outcomes():
    return {p: run(p) for p in ("basic", "scheme1", "scheme2", "pcmac")}


class TestAsymmetricLinkPhenomenon:
    def test_scheme2_suppresses_the_low_power_pair(self, outcomes):
        _, flows = outcomes["scheme2"]
        assert flows[0].delivery_ratio < 0.3  # A→B starved
        assert flows[1].delivery_ratio > 0.9  # C→D cruises

    def test_scheme2_fairness_collapses(self, outcomes):
        result, _ = outcomes["scheme2"]
        assert result.fairness < 0.75

    def test_pcmac_restores_the_low_power_pair(self, outcomes):
        _, flows = outcomes["pcmac"]
        assert flows[0].delivery_ratio > 0.8
        assert flows[1].delivery_ratio > 0.9

    def test_pcmac_fairness_near_perfect(self, outcomes):
        result, _ = outcomes["pcmac"]
        assert result.fairness > 0.95

    def test_pcmac_beats_scheme2_throughput(self, outcomes):
        assert (
            outcomes["pcmac"][0].throughput_kbps
            > outcomes["scheme2"][0].throughput_kbps
        )

    def test_pcmac_at_least_matches_basic(self, outcomes):
        """Power control must not cost capacity vs plain 802.11 here."""
        assert (
            outcomes["pcmac"][0].throughput_kbps
            >= 0.95 * outcomes["basic"][0].throughput_kbps
        )

    def test_admission_rule_actually_fired(self, outcomes):
        """The recovery must come from the mechanism under test."""
        net_result, _ = outcomes["pcmac"]
        assert net_result.mac_totals["admission_blocks"] > 0
