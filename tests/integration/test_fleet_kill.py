"""Kill-safety: SIGKILL a fleet worker mid-run; nothing lost, nothing doubled.

The fleet's whole reason to exist is this scenario: a worker process is
destroyed with ``kill -9`` — no cleanup handler, no exception path — in
the middle of a simulation.  Its lease must lapse, a second worker must
steal the run, and the campaign must end with **exactly** the enqueued
key set in the store, each key recorded exactly once.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.campaign.spec import RunSpec
from repro.config import ScenarioConfig, TrafficConfig
from repro.fleet.queue import WorkQueue
from repro.fleet.shards import ShardedResultStore
from repro.fleet.worker import FleetWorker
from repro.scenariospec import ComponentSpec, ScenarioSpec

#: Short enough that the steal happens within the test, long enough that
#: a healthy worker (renewing every telemetry slice) never lapses.
LEASE_TTL_S = 1.0


def slow_cell(seed: int = 1) -> RunSpec:
    """A run that takes a few wall seconds — a window to be killed in."""
    cfg = ScenarioConfig(
        node_count=20,
        duration_s=30.0,
        seed=seed,
        traffic=TrafficConfig(flow_count=4, offered_load_bps=300e3),
    )
    return RunSpec(scenario=ScenarioSpec(cfg=cfg, mac=ComponentSpec("basic")))


def _victim_entry(store_root: str) -> None:
    store = ShardedResultStore(store_root)
    queue = WorkQueue(store.root / "fleet")
    FleetWorker(
        store, queue, worker_id="victim", lease_ttl_s=LEASE_TTL_S, slices=60
    ).run()


def _wait_for(predicate, timeout_s: float, what: str) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    pytest.fail(f"timed out waiting for {what}")


class TestSigkillMidRun:
    def test_killed_worker_loses_nothing(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store", shards=4)
        queue = WorkQueue(store.root / "fleet")
        spec = slow_cell()
        key = spec.key()
        queue.enqueue(spec)

        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(target=_victim_entry, args=(str(store.root),))
        victim.start()
        try:
            # Wait until the victim is verifiably mid-simulation: its
            # heartbeat says "running" with sim-time progress reported.
            _wait_for(
                lambda: queue.heartbeats()
                .get("victim", {})
                .get("sim_time_s", 0.0)
                > 0.0,
                timeout_s=30.0,
                what="the victim to be mid-simulation",
            )
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10.0)
            assert not victim.is_alive()

            # The murder left the lease behind: the run is still owned by
            # a corpse, and the task is still queued — nothing was lost.
            assert store.get(key) is None
            assert queue.task(key) is not None
            lease = queue.lease_of(key)
            assert lease is not None and lease.owner == "victim"

            # A second worker steals the run once the lease lapses and
            # completes it.
            rescue = FleetWorker(
                store,
                queue,
                worker_id="rescue",
                lease_ttl_s=LEASE_TTL_S,
                max_attempts=5,
            )
            report = rescue.run()
            assert report.executed == 1
        finally:
            if victim.is_alive():  # pragma: no cover - defensive teardown
                victim.kill()
                victim.join()

        # Exactly-once, exactly-complete: the enqueued key set and the
        # stored key set coincide, one line per key across every shard.
        assert queue.drained()
        store.refresh()
        assert set(store.keys()) == {key}
        lines = []
        for path in store._result_files():
            if path.exists():
                lines.extend(path.read_text().splitlines())
        assert len(lines) == 1
