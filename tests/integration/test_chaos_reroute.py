"""AODV routes around an injected relay crash — and heals after a rejoin.

Two end-to-end chaos scenarios:

* a **diamond** (two disjoint relay paths) where the active relay crashes
  permanently mid-run: delivery must continue through the other relay and
  the source's route must stop pointing at the corpse;
* the tutorial **line** (`examples/chaos_churn.spec.json` geometry) where
  the only relay crashes and later rejoins: delivery stops while it is
  down and resumes after `mac.restart()` + `on_node_up()`.
"""

from __future__ import annotations

from repro.config import MobilityConfig, ScenarioConfig, TrafficConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec

#: Source 0 and sink 3 are 360 m apart (out of direct range); relays 1 and
#: 2 each sit ~197 m from both endpoints, giving two disjoint 2-hop paths.
DIAMOND = ((0.0, 0.0), (180.0, 80.0), (180.0, -80.0), (360.0, 0.0))


def diamond_spec(crashes) -> ScenarioSpec:
    cfg = ScenarioConfig(
        node_count=4,
        duration_s=25.0,
        seed=3,
        traffic=TrafficConfig(
            flow_count=1, offered_load_bps=80e3, start_time_s=0.5
        ),
        mobility=MobilityConfig(
            speed_mps=0.0, field_width_m=400.0, field_height_m=200.0
        ),
    )
    return ScenarioSpec(
        cfg=cfg,
        mac=ComponentSpec("basic"),
        placement=ComponentSpec("explicit", positions=DIAMOND),
        mobility=ComponentSpec("static"),
        faults=ComponentSpec("scripted", crashes=crashes),
        flow_pairs=((0, 3),),
    )


class TestRerouteAroundCrash:
    def test_delivery_survives_losing_the_active_relay(self):
        # Find which relay AODV actually uses, then rerun the same
        # scenario with exactly that relay crashing permanently at 8 s.
        probe = diamond_spec(crashes=()).build()
        probe.sim.run_until(6.0)
        route = probe.nodes[0].routing.table.lookup(3, probe.sim.now)
        assert route is not None and route.next_hop in (1, 2)
        victim = route.next_hop
        survivor = 3 - victim  # the other relay (1 <-> 2)

        net = diamond_spec(crashes=[[victim, 8.0, -1]]).build()
        result = net.run()

        rep = result.resilience
        assert len(rep.crashes) == 1
        # Delivery resumed after the crash (the reroute happened)...
        assert rep.crashes[0].reroute_s is not None
        late = sum(r for t, r in zip(rep.times, rep.received) if t > 12.0)
        assert late > 0
        # ...and the source's route now goes through the survivor.
        route = net.nodes[0].routing.table.lookup(3, net.sim.now)
        assert route is not None
        assert route.next_hop == survivor
        assert getattr(net.nodes[victim].mac, "dead", False)

    def test_line_heals_only_after_rejoin(self):
        cfg = ScenarioConfig(
            node_count=8,
            duration_s=30.0,
            seed=7,
            traffic=TrafficConfig(
                flow_count=1, offered_load_bps=80e3, start_time_s=0.5
            ),
            mobility=MobilityConfig(
                speed_mps=0.0, field_width_m=1400.0, field_height_m=100.0
            ),
        )
        spec = ScenarioSpec(
            cfg=cfg,
            mac=ComponentSpec("pcmac"),
            placement=ComponentSpec("line", spacing_m=180.0),
            mobility=ComponentSpec("static"),
            faults=ComponentSpec("scripted", crashes=[[3, 8.0, 16.0]]),
            flow_pairs=((0, 7),),
        )
        result = spec.run()
        rep = result.resilience

        def delivered(t0: float, t1: float) -> int:
            return sum(
                r
                for t, r in zip(rep.times, rep.received)
                if t0 < t <= t1
            )

        assert delivered(0.0, 8.0) > 0  # route formed before the crash
        assert delivered(9.0, 16.0) == 0  # only path severed while down
        assert delivered(17.0, 30.0) > 0  # healed after the rejoin
        # Reaction time includes the downtime on a redundancy-free path.
        assert rep.crashes[0].reroute_s is not None
        assert rep.crashes[0].reroute_s >= 8.0
