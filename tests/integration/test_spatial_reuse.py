"""Integration: spatial reuse through power control (paper Figure 1).

Two well-separated single-hop pairs.  At maximum power the pairs serialise
(every frame at least sensed network-wide); per-link power lets them run
concurrently, roughly doubling aggregate capacity.
"""

from __future__ import annotations

import pytest

from repro import ScenarioConfig, TrafficConfig, build_network
from repro.config import MobilityConfig

pytestmark = pytest.mark.slow

POSITIONS = [(0.0, 0.0), (100.0, 0.0), (400.0, 0.0), (500.0, 0.0)]
FLOWS = [(0, 1), (2, 3)]


def run(protocol: str):
    cfg = ScenarioConfig(
        node_count=4,
        duration_s=30.0,
        seed=5,
        traffic=TrafficConfig(flow_count=2, offered_load_bps=2400e3),
        mobility=MobilityConfig(speed_mps=0.0),
    )
    net = build_network(
        cfg,
        protocol,
        positions=POSITIONS,
        mobile=False,
        routing="static",
        flow_pairs=FLOWS,
    )
    return net.run()


@pytest.fixture(scope="module")
def outcomes():
    return {p: run(p) for p in ("basic", "scheme2", "pcmac")}


class TestSpatialReuse:
    def test_basic_serialises_the_pairs(self, outcomes):
        """One 2 Mbps channel shared by turn-taking ≈ half the offered load."""
        assert outcomes["basic"].throughput_kbps < 1400

    def test_pcmac_runs_both_pairs_concurrently(self, outcomes):
        assert outcomes["pcmac"].throughput_kbps > 2000
        assert outcomes["pcmac"].delivery_ratio > 0.95

    def test_power_control_capacity_gain(self, outcomes):
        """The paper's Figure 1 claim, quantified: ≥ 1.7× here."""
        gain = (
            outcomes["pcmac"].throughput_kbps
            / outcomes["basic"].throughput_kbps
        )
        assert gain > 1.7

    def test_scheme2_also_gains_reuse_here(self, outcomes):
        """With no third-party interferer, even naive power control reuses
        space — the schemes only fall apart under asymmetric interference."""
        assert (
            outcomes["scheme2"].throughput_kbps
            > 1.5 * outcomes["basic"].throughput_kbps
        )

    def test_pcmac_delay_reflects_uncontended_channel(self, outcomes):
        assert outcomes["pcmac"].avg_delay_ms < outcomes["basic"].avg_delay_ms
