"""Battery death mid-run: the network must route around the corpse.

Topology (static, max-power decode range 250 m):

            1 (200, 0)          relays 1 and 2 both reach 0 and 3;
    0 ──────┤                   0 and 3 are 400 m apart — out of
            2 (200, 60)         mutual range, so the flow *must* relay.
            └────── 3 (400, 0)

One CBR flow 0 → 3.  Both relays carry a finite battery under a
TX-only draw model (idle/rx at 0 W), so exactly the relay doing the
forwarding drains.  When it dies: its radios detach, its MAC goes
silent, the sender's retries exhaust into an AODV RERR, a fresh
discovery finds the surviving relay, and delivery continues — the
observable rerouting this test pins down.  The endpoints are
mains-powered (battery_j = 0 entries).
"""

from __future__ import annotations

from repro.config import ScenarioConfig, TrafficConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec

POSITIONS = ((0.0, 0.0), (200.0, 0.0), (200.0, 60.0), (400.0, 0.0))
DURATION_S = 12.0
START_S = 0.5
#: CBR inter-packet interval at 100 kbps / 512 B [s].
INTERVAL_S = 512 * 8 / 100e3


def build_spec() -> ScenarioSpec:
    cfg = ScenarioConfig(
        node_count=4,
        duration_s=DURATION_S,
        seed=5,
        traffic=TrafficConfig(
            flow_count=1, offered_load_bps=100e3, start_time_s=START_S
        ),
    )
    return ScenarioSpec(
        cfg=cfg,
        mac="basic",
        placement=ComponentSpec("explicit", positions=POSITIONS),
        mobility="static",
        routing="aodv",
        energy=ComponentSpec(
            "wavelan",
            # TX-only drain: exactly the relay that forwards pays.
            tx_base_w=1.0, tx_scale=0.0, rx_w=0.0, idle_w=0.0, sleep_w=0.0,
            # 50 mJ at 1 W TX draw ≈ 50 ms of transmit airtime per relay.
            battery_j=(0.0, 0.05, 0.05, 0.0),
        ),
        flow_pairs=((0, 3),),
    )


class TestBatteryLifetimeRerouting:
    def test_relay_dies_and_traffic_reroutes(self):
        net = build_spec().build()
        result = net.run()
        report = result.energy
        assert report is not None

        # Both relays — and only the relays — die mid-run.
        died = {n.node_id for n in report.nodes if n.died_at_s is not None}
        assert died == {1, 2}
        first, last = report.first_death_s, report.last_death_s
        assert START_S < first < last < DURATION_S

        # Both relays actually forwarded DATA: the flow demonstrably moved
        # from the first (now dead) relay onto the survivor.
        relay_data = [net.nodes[i].mac.stats.data_sent for i in (1, 2)]
        assert min(relay_data) > 0

        # The death was detected the 802.11 way: retries exhausted into an
        # AODV route error and a fresh discovery.
        assert result.routing_totals["rerr_sent"] >= 1
        assert result.routing_totals["rreq_originated"] >= 2

        # Delivery outlived the first death: strictly more packets arrived
        # than the pre-death window could possibly have carried.
        deliverable_before_death = (first - START_S) / INTERVAL_S
        assert result.received > deliverable_before_death + 3

        # Endpoints are mains-powered: no battery, no death.
        for node_id in (0, 3):
            node = next(n for n in report.nodes if n.node_id == node_id)
            assert node.remaining_j is None and node.died_at_s is None

    def test_dead_mac_is_a_black_hole(self):
        net = build_spec().build()
        net.run()
        for relay in (1, 2):
            mac = net.nodes[relay].mac
            assert mac.dead
            assert not mac.enqueue_packet(object(), next_hop=0)
            # Radios detached from the medium and muted.
            assert mac.radio not in net.data_channel.radios
