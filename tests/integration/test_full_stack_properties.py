"""Property-based full-stack invariants over randomised small scenarios.

Hypothesis drives the scenario knobs (protocol, seed, load, node count); the
invariants must hold for *every* combination:

* conservation — no packet is delivered that was never sent, and no packet
  is delivered twice;
* delay positivity — delivered packets always take > 0 time;
* throughput bound — delivered bits never exceed offered bits;
* accounting closure — MAC counters are internally consistent.
"""

from __future__ import annotations

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import MobilityConfig, ScenarioConfig, TrafficConfig
from repro.experiments.scenario import build_network

pytestmark = pytest.mark.slow

PROTOCOLS = ("basic", "scheme1", "scheme2", "pcmac")


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    protocol=st.sampled_from(PROTOCOLS),
    seed=st.integers(min_value=1, max_value=50),
    load_kbps=st.sampled_from([60.0, 150.0, 400.0]),
    node_count=st.integers(min_value=4, max_value=12),
)
def test_full_stack_invariants(protocol, seed, load_kbps, node_count):
    cfg = ScenarioConfig(
        node_count=node_count,
        duration_s=4.0,
        seed=seed,
        traffic=TrafficConfig(
            flow_count=min(2, node_count - 1), offered_load_bps=load_kbps * 1e3
        ),
        mobility=MobilityConfig(field_width_m=600.0, field_height_m=600.0),
    )
    net = build_network(cfg, protocol)
    result = net.run()

    # Conservation.
    assert result.received <= result.sent
    for flow in net.metrics.flows.values():
        assert flow.received <= flow.sent
        assert flow.bytes_received == flow.received * cfg.traffic.packet_size_bytes

    # Throughput bound: delivered ≤ offered (small tolerance for windowing).
    assert result.throughput_kbps <= load_kbps * 1.05

    # Delay positivity.
    if result.received:
        assert result.avg_delay_ms > 0.0

    # Delivery ratio and fairness live in [0, 1].
    assert 0.0 <= result.delivery_ratio <= 1.0
    assert 0.0 <= result.fairness <= 1.0

    # MAC accounting closure, summed across nodes.
    mt = result.mac_totals
    assert mt["cts_timeouts"] <= mt["rts_sent"]
    assert mt["data_sent"] >= 0
    assert mt["tx_energy_j"] >= 0.0
    if protocol != "pcmac":
        assert mt["implicit_retransmits"] == 0
        assert mt["admission_blocks"] == 0

    # The simulator itself terminated at the horizon with a sane event count.
    assert net.sim.now >= cfg.duration_s
    assert result.events_executed > 0
