"""Integration: Scheme 1's shrunken DATA/ACK sensing zone (paper Figure 6).

Geometry: A(0)→B(100) — a 100 m link whose Scheme-1 DATA/ACK drop to
~15 mW — and E(350)→F(600) — a 250 m link that stays at maximum power.
E sits inside the sensing range of A's *maximum-power* RTS/CTS but outside
the ~264 m sensing footprint of A's low-power DATA and B's low-power ACK.
Once E's EIFS deferral (≈0.65 ms) expires mid-DATA (≈2.35 ms), E transmits
and corrupts the exchange — observable as **ACK collisions at the sender**
(A times out waiting for B's ACK), the failure mode the paper's three-way
handshake was designed to eliminate.
"""

from __future__ import annotations

import pytest

from repro import ScenarioConfig, TrafficConfig, build_network
from repro.config import MobilityConfig

pytestmark = pytest.mark.slow

POSITIONS = [(0.0, 0.0), (100.0, 0.0), (350.0, 0.0), (600.0, 0.0)]
FLOWS = [(0, 1), (2, 3)]
LOAD_BPS = 1400e3


def run(protocol: str):
    cfg = ScenarioConfig(
        node_count=4,
        duration_s=30.0,
        seed=13,
        traffic=TrafficConfig(flow_count=2, offered_load_bps=LOAD_BPS),
        mobility=MobilityConfig(speed_mps=0.0),
    )
    net = build_network(
        cfg,
        protocol,
        positions=POSITIONS,
        mobile=False,
        routing="static",
        flow_pairs=FLOWS,
    )
    return net.run()


@pytest.fixture(scope="module")
def outcomes():
    return {p: run(p) for p in ("basic", "scheme1", "pcmac")}


class TestScheme1SensingShrink:
    def test_basic_has_no_ack_collisions(self, outcomes):
        """At maximum power, E senses A's DATA and defers: ACKs survive."""
        assert outcomes["basic"].mac_totals["ack_timeouts"] == 0

    def test_scheme1_suffers_ack_collisions_at_sender(self, outcomes):
        """The Figure 6 failure: low-power DATA/ACK invisible to E."""
        assert outcomes["scheme1"].mac_totals["ack_timeouts"] > 0

    def test_scheme1_pays_in_retransmissions(self, outcomes):
        """Each ACK collision costs a full DATA retransmission."""
        s1 = outcomes["scheme1"].mac_totals
        basic = outcomes["basic"].mac_totals
        s1_retx = s1["data_sent"] - s1["data_delivered_up"]
        basic_retx = basic["data_sent"] - basic["data_delivered_up"]
        assert s1_retx > basic_retx

    def test_pcmac_has_no_data_ack_timeouts_by_construction(self, outcomes):
        """Three-way handshake: no ACK, hence no ACK collision at the
        sender (the paper's Section III resolution)."""
        assert outcomes["pcmac"].mac_totals["ack_timeouts"] == 0

    def test_all_protocols_still_deliver(self, outcomes):
        for proto, result in outcomes.items():
            assert result.delivery_ratio > 0.5, proto
