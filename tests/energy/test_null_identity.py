"""The null energy model must be invisible, and metering must be passive.

Acceptance guards for the energy subsystem's core contract:

* default spec (no energy slot) and explicit ``energy: null`` produce
  bit-identical :class:`ExperimentResult`s (wallclock aside);
* a metered run (``wavelan``, no battery) executes the *exact same event
  count* — meters integrate lazily and never schedule;
* the :class:`EnergyReport` survives the campaign store's JSON round trip
  byte-for-byte.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.campaign.store import result_from_dict, result_to_dict
from repro.config import ScenarioConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec


def small_cfg(**overrides) -> ScenarioConfig:
    defaults = dict(node_count=10, duration_s=5.0, seed=3)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def strip_wallclock(result):
    """Zero the only legitimately nondeterministic field."""
    return replace(result, wallclock_s=0.0)


class TestNullModelIdentity:
    @pytest.mark.parametrize("protocol", ["basic", "pcmac"])
    def test_default_equals_explicit_null(self, protocol):
        default = ScenarioSpec(cfg=small_cfg(), mac=protocol).run()
        explicit = ScenarioSpec(
            cfg=small_cfg(), mac=protocol, energy=ComponentSpec("null")
        ).run()
        assert default.energy is None and explicit.energy is None
        assert strip_wallclock(default) == strip_wallclock(explicit)
        assert default.events_executed == explicit.events_executed

    @pytest.mark.parametrize("protocol", ["basic", "pcmac"])
    def test_metering_changes_no_events_and_no_metrics(self, protocol):
        plain = ScenarioSpec(cfg=small_cfg(), mac=protocol).run()
        metered = ScenarioSpec(
            cfg=small_cfg(), mac=protocol, energy=ComponentSpec("wavelan")
        ).run()
        # Everything except the new energy report is bit-identical —
        # including the executed event count (meters never schedule).
        assert metered.energy is not None
        assert strip_wallclock(replace(metered, energy=None)) == (
            strip_wallclock(plain)
        )
        assert metered.events_executed == plain.events_executed

    def test_mobile_scenario_identity(self):
        cfg = small_cfg()
        plain = ScenarioSpec(cfg=cfg, mac="basic", mobility="waypoint").run()
        metered = ScenarioSpec(
            cfg=cfg, mac="basic", mobility="waypoint",
            energy=ComponentSpec("wavelan"),
        ).run()
        assert metered.events_executed == plain.events_executed


class TestEnergyReportRoundTrip:
    def test_store_serialisation_is_lossless(self):
        result = ScenarioSpec(
            cfg=small_cfg(node_count=6, duration_s=3.0),
            mac="basic",
            mobility="static",
            energy=ComponentSpec("wavelan", battery_j=2.0),
        ).run()
        assert result.energy is not None
        assert result.energy.deaths  # 2 J at ≥1.15 W idle: everyone dies
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt == result
        assert rebuilt.energy.first_death_s == result.energy.first_death_s

    def test_null_round_trip_keeps_none(self):
        result = ScenarioSpec(
            cfg=small_cfg(node_count=6, duration_s=2.0), mac="basic"
        ).run()
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt == result
        assert rebuilt.energy is None

    def test_pre_energy_store_lines_still_load(self):
        result = ScenarioSpec(
            cfg=small_cfg(node_count=6, duration_s=2.0), mac="basic"
        ).run()
        payload = result_to_dict(result)
        del payload["energy"]  # a line written before the energy field
        rebuilt = result_from_dict(payload)
        assert rebuilt.energy is None
        assert rebuilt == result
