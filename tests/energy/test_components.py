"""The ``energy`` component slot: params, validation, wiring variants."""

from __future__ import annotations

import pytest

from repro.config import ScenarioConfig, TrafficConfig
from repro.registry import ParamError, registry
from repro.scenariospec import ComponentSpec, ScenarioSpec


def small_spec(**energy_params) -> ScenarioSpec:
    # A connected chain with live traffic, so PCMAC actually exchanges
    # frames (and PCN broadcasts) during the window.
    return ScenarioSpec(
        cfg=ScenarioConfig(
            node_count=4,
            duration_s=2.0,
            traffic=TrafficConfig(
                flow_count=1, offered_load_bps=80e3, start_time_s=0.2
            ),
        ),
        mac="pcmac",
        placement=ComponentSpec("line", spacing_m=100.0),
        mobility="static",
        energy=ComponentSpec("wavelan", **energy_params),
        flow_pairs=((0, 2),),
    )


class TestEnergyComponents:
    def test_slot_registered_with_null_default(self):
        assert registry("energy").names() == ("null", "wavelan")
        assert ScenarioSpec().energy == ComponentSpec("null")

    def test_unknown_param_is_rejected_up_front(self):
        with pytest.raises(ParamError, match="volts"):
            small_spec(volts=3.0).build()

    def test_negative_battery_rejected(self):
        with pytest.raises(ValueError, match="battery_j"):
            small_spec(battery_j=-1.0).build()

    def test_negative_battery_entry_rejected(self):
        with pytest.raises(ValueError, match="battery_j"):
            small_spec(battery_j=(1.0, -2.0, 1.0, 1.0)).build()

    def test_battery_list_length_must_match_node_count(self):
        with pytest.raises(ValueError, match="3 capacities for 4 nodes"):
            small_spec(battery_j=(1.0, 1.0, 1.0)).build()

    def test_battery_list_mixes_finite_and_mains(self):
        result = small_spec(
            battery_j=(0.5, 0.0, 0.0, 0.5), idle_w=1.0, rx_w=1.0,
        ).run()
        by_id = {n.node_id: n for n in result.energy.nodes}
        assert by_id[0].died_at_s is not None
        assert by_id[3].died_at_s is not None
        assert by_id[1].died_at_s is None and by_id[1].remaining_j is None

    def test_meter_control_charges_pcmac_for_its_second_radio(self):
        single = small_spec().run()
        double = small_spec(meter_control=True).run()
        # Same event schedule (no batteries involved)...
        assert double.events_executed == single.events_executed
        # ...but each node meters two radios: residency doubles, and the
        # control radio's idle draw lands in the books.
        n_single = single.energy.nodes[0]
        n_double = double.energy.nodes[0]
        dur = 2.0
        assert (
            n_single.tx_s + n_single.rx_s + n_single.idle_s + n_single.sleep_s
        ) == pytest.approx(dur)
        assert (
            n_double.tx_s + n_double.rx_s + n_double.idle_s + n_double.sleep_s
        ) == pytest.approx(2 * dur)
        assert double.energy.total_j > single.energy.total_j
        # PCN broadcasts now show up as radiated energy on top of the data
        # radio's frames.
        assert double.energy.radiated_j > single.energy.radiated_j

    def test_spec_hash_distinguishes_energy_models(self):
        base = ScenarioSpec(cfg=ScenarioConfig(node_count=4, duration_s=2.0))
        wavelan = ScenarioSpec(
            cfg=ScenarioConfig(node_count=4, duration_s=2.0),
            energy=ComponentSpec("wavelan"),
        )
        assert base.key() != wavelan.key()
        # int vs float battery capacity must hash identically (JSON spelling
        # normalisation).
        a = ScenarioSpec(energy=ComponentSpec("wavelan", battery_j=30))
        b = ScenarioSpec(energy=ComponentSpec("wavelan", battery_j=30.0))
        assert a.key() == b.key()
