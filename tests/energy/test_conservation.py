"""Energy conservation: joules booked == draw × state residency, always.

The meter is driven directly with hypothesis-generated TX/RX/idle/sleep
interleavings over arbitrary dwell times; an independent reference
integration must agree state by state, residencies must sum to the elapsed
window, and radiated energy must equal Σ tx_power × tx_time.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.meter import EnergyLedger, RadioPowerMeter
from repro.energy.model import EnergyModel, RadioState


class FakeClock:
    """The only simulator surface a battery-less meter touches: ``now``."""

    def __init__(self) -> None:
        self.now = 0.0


MODEL = EnergyModel(
    tx_base_w=1.3682, tx_scale=1.0, rx_w=1.4, idle_w=1.15, sleep_w=0.045
)

#: One step: dwell in the current state, then transition.
_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        st.sampled_from(["tx", "rx", "idle", "sleep"]),
        st.floats(min_value=1e-3, max_value=0.2818,
                  allow_nan=False, allow_infinity=False),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(steps=_steps, tail=st.floats(min_value=0.0, max_value=50.0))
def test_joules_equal_draw_times_residency(steps, tail):
    clock = FakeClock()
    ledger = EnergyLedger(node_id=0)
    meter = RadioPowerMeter(clock, MODEL, ledger)

    expect_j = dict.fromkeys(RadioState, 0.0)
    expect_s = dict.fromkeys(RadioState, 0.0)
    expect_radiated = 0.0
    state, draw, radiated = RadioState.IDLE, MODEL.idle_w, 0.0

    for dwell, action, power in steps:
        # Reference integration of the segment that is about to close.
        expect_j[state] += draw * dwell
        expect_s[state] += dwell
        expect_radiated += radiated * dwell
        clock.now += dwell
        if action == "tx":
            meter.note_tx(power)
            state, draw, radiated = RadioState.TX, MODEL.tx_draw_w(power), power
        elif action == "rx":
            meter.note_rx()
            state, draw, radiated = RadioState.RX, MODEL.rx_w, 0.0
        elif action == "idle":
            meter.note_idle()
            state, draw, radiated = RadioState.IDLE, MODEL.idle_w, 0.0
        else:
            meter.note_sleep()
            state, draw, radiated = RadioState.SLEEP, MODEL.sleep_w, 0.0

    expect_j[state] += draw * tail
    expect_s[state] += tail
    expect_radiated += radiated * tail
    clock.now += tail
    ledger.finalize(clock.now)

    booked_j = {
        RadioState.TX: ledger.tx_j,
        RadioState.RX: ledger.rx_j,
        RadioState.IDLE: ledger.idle_j,
        RadioState.SLEEP: ledger.sleep_j,
    }
    booked_s = {
        RadioState.TX: ledger.tx_s,
        RadioState.RX: ledger.rx_s,
        RadioState.IDLE: ledger.idle_s,
        RadioState.SLEEP: ledger.sleep_s,
    }
    for st_ in RadioState:
        assert booked_j[st_] == pytest.approx(expect_j[st_], rel=1e-9, abs=1e-12)
        assert booked_s[st_] == pytest.approx(expect_s[st_], rel=1e-9, abs=1e-12)
    # Residency partitions the metered window exactly.
    assert sum(booked_s.values()) == pytest.approx(clock.now, rel=1e-9, abs=1e-12)
    assert ledger.radiated_j == pytest.approx(expect_radiated, rel=1e-9, abs=1e-12)
    # The energy identity the summaries rely on.
    assert ledger.total_j == pytest.approx(
        sum(expect_j.values()), rel=1e-9, abs=1e-12
    )


@settings(max_examples=50, deadline=None)
@given(steps=_steps)
def test_finalize_is_idempotent(steps):
    clock = FakeClock()
    ledger = EnergyLedger(node_id=1)
    meter = RadioPowerMeter(clock, MODEL, ledger)
    for dwell, action, power in steps:
        clock.now += dwell
        getattr(meter, "note_" + action)(*((power,) if action == "tx" else ()))
    clock.now += 1.0
    ledger.finalize(clock.now)
    snapshot = (ledger.total_j, ledger.tx_s, ledger.rx_s, ledger.idle_s,
                ledger.sleep_s, ledger.radiated_j)
    ledger.finalize(clock.now)  # zero-width segment: must change nothing
    assert snapshot == (ledger.total_j, ledger.tx_s, ledger.rx_s,
                        ledger.idle_s, ledger.sleep_s, ledger.radiated_j)


def test_multiple_meters_share_one_ledger():
    clock = FakeClock()
    ledger = EnergyLedger(node_id=2)
    data = RadioPowerMeter(clock, MODEL, ledger)
    ctrl = RadioPowerMeter(clock, MODEL, ledger)
    clock.now = 2.0
    data.note_tx(0.1)
    clock.now = 3.0
    data.note_idle()
    ctrl.note_rx()
    clock.now = 5.0
    ledger.finalize(clock.now)
    # data: 2s idle + 1s tx + 2s idle; ctrl: 3s idle + 2s rx.
    assert ledger.tx_s == pytest.approx(1.0)
    assert ledger.rx_s == pytest.approx(2.0)
    assert ledger.idle_s == pytest.approx(2.0 + 2.0 + 3.0)
    assert ledger.radiated_j == pytest.approx(0.1)
    # Two radios metered for 5 s each.
    assert ledger.tx_s + ledger.rx_s + ledger.idle_s + ledger.sleep_s == (
        pytest.approx(10.0)
    )


def test_power_off_pins_a_zero_watt_state():
    clock = FakeClock()
    ledger = EnergyLedger(node_id=3)
    meter = RadioPowerMeter(clock, MODEL, ledger)
    clock.now = 4.0
    meter.power_off(clock.now)
    assert meter.dead
    clock.now = 10.0
    meter.note_rx()      # in-flight edge after death: ignored
    meter.note_tx(0.28)  # likewise
    ledger.finalize(clock.now)
    assert ledger.idle_s == pytest.approx(4.0)
    assert ledger.rx_s == 0.0 and ledger.tx_s == 0.0
    # Post-death time is not booked at all (a dead radio draws nothing and
    # the run's report reads it from died_at, not the ledger residencies).
    assert ledger.total_j == pytest.approx(4.0 * MODEL.idle_w)
