"""Full-stack energy summaries over real runs."""

from __future__ import annotations

import pytest

from repro.config import ScenarioConfig
from repro.metrics.summary import (
    energy_breakdown_table,
    energy_node_table,
    summarise_efficiency,
    summarise_energy,
)
from repro.scenariospec import ComponentSpec, ScenarioSpec


@pytest.fixture(scope="module")
def metered_result():
    return ScenarioSpec(
        cfg=ScenarioConfig(node_count=8, duration_s=4.0, seed=2),
        mac="basic",
        mobility="static",
        energy=ComponentSpec("wavelan"),
    ).run()


class TestEnergySummary:
    def test_null_run_summarises_to_none(self):
        result = ScenarioSpec(
            cfg=ScenarioConfig(node_count=6, duration_s=2.0), mac="basic"
        ).run()
        assert summarise_energy(result) is None
        assert "no energy accounting" in energy_node_table(result)

    def test_totals_add_up(self, metered_result):
        s = summarise_energy(metered_result)
        assert s is not None
        assert s.total_j == pytest.approx(s.tx_j + s.rx_j + s.idle_j + s.sleep_j)
        # Radiated is a sub-slice of TX draw, and matches the MAC counter.
        assert 0 < s.radiated_j < s.tx_j
        assert s.radiated_j == pytest.approx(
            metered_result.mac_totals["tx_energy_j"]
        )
        assert s.first_death_s is None and s.dead_nodes == 0

    def test_full_stack_j_per_bit_exceeds_radiated(self, metered_result):
        eff = summarise_efficiency(metered_result)
        full = summarise_energy(metered_result)
        # Receive + idle draw dominates: the honest J/bit is far above the
        # TX-only figure the module docstring used to oversell.
        assert full.energy_per_bit_j > eff.energy_per_bit_j

    def test_tables_render_every_node(self, metered_result):
        table = energy_node_table(metered_result)
        for node in metered_result.energy.nodes:
            assert f"\n{node.node_id:>5} " in "\n" + table
        assert "total" in table
        breakdown = energy_breakdown_table({"basic": metered_result})
        assert "basic" in breakdown and "J/Mbit" in breakdown
