"""Battery: exact-time depletion, meter power-off, callback plumbing."""

from __future__ import annotations

import pytest

from repro.energy.battery import Battery
from repro.energy.meter import EnergyLedger, RadioPowerMeter
from repro.energy.model import EnergyModel
from repro.sim.kernel import Simulator

#: Unit-friendly model: idle 1 W, rx 2 W, tx 3 W + radiated.
MODEL = EnergyModel(tx_base_w=3.0, tx_scale=1.0, rx_w=2.0, idle_w=1.0,
                    sleep_w=0.0)


def make_metered_battery(sim: Simulator, capacity_j: float):
    battery = Battery(sim, capacity_j)
    ledger = EnergyLedger(node_id=0, battery=battery)
    meter = RadioPowerMeter(sim, MODEL, ledger, battery=battery)
    return battery, ledger, meter


class TestBattery:
    def test_depletes_at_exact_analytic_time(self):
        sim = Simulator()
        battery, ledger, meter = make_metered_battery(sim, 10.0)
        deaths: list[float] = []
        battery.on_depleted.append(deaths.append)
        # Idle at 1 W from t=0: depletion at exactly t=10.
        sim.run_until(100.0)
        assert deaths == [pytest.approx(10.0)]
        assert battery.depleted
        assert battery.remaining_j == 0.0
        assert meter.dead

    def test_draw_changes_rearm_the_prediction(self):
        sim = Simulator()
        battery, ledger, meter = make_metered_battery(sim, 10.0)
        deaths: list[float] = []
        battery.on_depleted.append(deaths.append)
        # 2 s idle (2 J), then RX at 2 W: 8 J left → death at 2 + 4 = 6 s.
        sim.schedule(2.0, meter.note_rx)
        sim.run_until(100.0)
        assert deaths == [pytest.approx(6.0)]
        ledger.finalize(sim.now)
        assert ledger.idle_j == pytest.approx(2.0)
        assert ledger.rx_j == pytest.approx(8.0)
        # Conservation through death: exactly the capacity was booked.
        assert ledger.total_j == pytest.approx(10.0)

    def test_tx_draw_depends_on_radiated_power(self):
        sim = Simulator()
        battery, ledger, meter = make_metered_battery(sim, 8.0)
        deaths: list[float] = []
        battery.on_depleted.append(deaths.append)
        # TX at 1 W radiated from t=0: draw 4 W → death at t=2.
        meter.note_tx(1.0)
        sim.run_until(100.0)
        assert deaths == [pytest.approx(2.0)]
        assert ledger.tx_j == pytest.approx(8.0)
        assert ledger.radiated_j == pytest.approx(2.0)

    def test_survives_when_capacity_suffices(self):
        sim = Simulator()
        battery, ledger, meter = make_metered_battery(sim, 1000.0)
        sim.run_until(20.0)
        ledger.finalize(sim.now)
        assert not battery.depleted
        assert ledger.remaining_j == pytest.approx(1000.0 - 20.0)
        assert ledger.died_at_s is None

    def test_two_meters_drain_one_battery_jointly(self):
        sim = Simulator()
        battery = Battery(sim, 12.0)
        ledger = EnergyLedger(node_id=0, battery=battery)
        RadioPowerMeter(sim, MODEL, ledger, battery=battery)
        RadioPowerMeter(sim, MODEL, ledger, battery=battery)
        deaths: list[float] = []
        battery.on_depleted.append(deaths.append)
        # Two radios idling at 1 W each → 12 J / 2 W = death at t=6, and
        # both meters go dark there.
        sim.run_until(100.0)
        assert deaths == [pytest.approx(6.0)]
        assert all(m.dead for m in ledger.meters)
        assert ledger.idle_j == pytest.approx(12.0)

    def test_set_draw_after_depletion_is_ignored(self):
        sim = Simulator()
        battery, ledger, meter = make_metered_battery(sim, 5.0)
        sim.run_until(100.0)
        assert battery.depleted
        meter.note_tx(0.5)  # dead meter: no transition, no re-arm
        assert battery.remaining_j == 0.0
        assert sim.pending_events == 0

    def test_rejects_nonpositive_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="capacity_j"):
            Battery(sim, 0.0)
