"""EnergyModel: draw arithmetic and validation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.energy.model import WAVELAN, EnergyModel, RadioState


class TestEnergyModel:
    def test_wavelan_working_point(self):
        # The canonical 1.65 / 1.4 / 1.15 W numbers at the paper's maximum
        # 281.8 mW level.
        assert WAVELAN.tx_draw_w(0.2818) == pytest.approx(1.65, abs=1e-12)
        assert WAVELAN.rx_w == 1.4
        assert WAVELAN.idle_w == 1.15

    def test_tx_draw_rewards_power_control(self):
        # Radiating 1 mW instead of 281.8 mW must save exactly the radiated
        # difference (tx_scale=1): the electronics cost stays.
        hi = WAVELAN.tx_draw_w(0.2818)
        lo = WAVELAN.tx_draw_w(0.001)
        assert hi - lo == pytest.approx(0.2818 - 0.001)

    def test_draw_w_dispatch(self):
        model = EnergyModel(
            tx_base_w=1.0, tx_scale=2.0, rx_w=0.5, idle_w=0.25, sleep_w=0.01
        )
        assert model.draw_w(RadioState.TX, 0.1) == pytest.approx(1.2)
        assert model.draw_w(RadioState.RX) == 0.5
        assert model.draw_w(RadioState.IDLE) == 0.25
        assert model.draw_w(RadioState.SLEEP) == 0.01

    @pytest.mark.parametrize(
        "field", ["tx_base_w", "tx_scale", "rx_w", "idle_w", "sleep_w"]
    )
    def test_negative_draws_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            EnergyModel(**{field: -0.1})

    def test_frozen_and_hashable(self):
        model = EnergyModel()
        assert hash(model) == hash(EnergyModel())
        variant = dataclasses.replace(model, idle_w=0.0)
        assert variant != model
