"""Differential suite: the vectorized mega-scale core vs the oracle engine.

The turbo engine — calendar-queue scheduler, struct-of-arrays PHY fan-out,
pooled transient events — plus the spatial index and the fused kernel must
produce **bit-identical** :class:`~repro.metrics.ExperimentResult`\\ s
(including ``events_executed``) to the slowest, most literal execution
path: the ``default`` engine with the brute-force channel scan and the
reference peek-then-pop kernel loop.  Every optimisation in the stack is
therefore falsifiable by one equality on the full result dataclass.

Scenarios are drawn at random by hypothesis across protocol, mobility,
node count, duration, seed and engine knobs (bucket widths, scheduler /
fan-out / pooling combinations).  On failure the *runnable spec JSON* for
both sides is attached via ``hypothesis.note`` so a counterexample can be
replayed with ``python -m repro quick --scenario <file>`` directly.

Example budgets follow the profiles in ``tests/conftest.py`` (``dev``
locally, ``--hypothesis-profile=ci`` in the differential CI job).
"""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest
from hypothesis import currently_in_test_context, given, note
from hypothesis import strategies as st

from repro.builder import NetworkBuilder
from repro.config import ScenarioConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec

#: The oracle engine: heap scheduler, scalar fan-out, no pooling.
ORACLE_ENGINE = ComponentSpec("default")

#: Vectorized-core engine variants under test.  ``turbo`` is the preset
#: (calendar + soa + pooling); the explicit ``default``-with-params forms
#: prove each knob holds the contract independently of the others.
VECTOR_ENGINES = (
    ComponentSpec("turbo"),
    ComponentSpec("turbo", bucket_width_s=0.05),
    ComponentSpec("turbo", bucket_width_s=0.25),
    ComponentSpec("default", scheduler="calendar", fanout="scalar"),
    ComponentSpec("default", scheduler="heap", fanout="soa", pool_events=True),
)


def make_spec(
    protocol: str, mobile: bool, n: int, duration_s: float, seed: int,
    engine: ComponentSpec,
) -> ScenarioSpec:
    cfg = replace(
        ScenarioConfig(), node_count=n, duration_s=duration_s, seed=seed
    )
    return replace(
        ScenarioSpec.from_legacy(cfg, protocol, mobile=mobile), engine=engine
    )


def run_spec(spec: ScenarioSpec, *, oracle: bool) -> dict:
    """Build + run one spec; the full result dict minus wall-clock time.

    The oracle side additionally disables the runtime-only builder
    accelerations (spatial index, fused kernel) so the comparison pits the
    *entire* vectorized stack against the most literal execution path.
    """
    net = NetworkBuilder(
        spec, spatial_index=not oracle, fused_kernel=not oracle
    ).build()
    result = asdict(net.run())
    result.pop("wallclock_s")  # the only legitimately nondeterministic field
    return result


def assert_engines_identical(
    protocol: str, mobile: bool, n: int, duration_s: float, seed: int,
    engine: ComponentSpec,
) -> dict:
    """Oracle vs vectorized: full-result bit identity, specs noted on failure."""
    oracle_spec = make_spec(protocol, mobile, n, duration_s, seed, ORACLE_ENGINE)
    vector_spec = make_spec(protocol, mobile, n, duration_s, seed, engine)
    # Attach the runnable spec JSON to any failure: via hypothesis notes
    # inside property tests, via captured stdout (shown only on failure)
    # for the deterministic cases.
    repro_hint = (
        f"oracle spec (run with `python -m repro quick --scenario <file>`):\n"
        f"{oracle_spec.to_json(indent=2)}\n"
        f"vectorized spec:\n{vector_spec.to_json(indent=2)}"
    )
    if currently_in_test_context():
        note(repro_hint)
    else:
        print(repro_hint)
    want = run_spec(oracle_spec, oracle=True)
    got = run_spec(vector_spec, oracle=False)
    assert got == want
    assert got["events_executed"] == want["events_executed"] > 0
    return got


class TestRandomScenarioEquivalence:
    """Hypothesis-drawn worlds: every engine variant reproduces the oracle."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=4, max_value=40),
        protocol=st.sampled_from(["basic", "pcmac"]),
        mobile=st.booleans(),
        duration_s=st.sampled_from([2.0, 3.0, 5.0]),
        engine=st.sampled_from(VECTOR_ENGINES),
    )
    def test_full_results_bit_identical(
        self, seed, n, protocol, mobile, duration_s, engine
    ):
        assert_engines_identical(protocol, mobile, n, duration_s, seed, engine)


class TestDenseBlockEquivalence:
    """Deterministic worlds big enough that real SoA blocks form (n ≥ 64)."""

    @pytest.mark.parametrize("protocol", ["basic", "pcmac"])
    def test_static_dense_world(self, protocol):
        result = assert_engines_identical(
            protocol, mobile=False, n=80, duration_s=3.0, seed=5,
            engine=ComponentSpec("turbo"),
        )
        assert result["sent"] > 0  # non-vacuous: traffic actually flowed

    def test_mobile_world_uses_per_transmit_vector_pass(self):
        assert_engines_identical(
            "basic", mobile=True, n=70, duration_s=3.0, seed=9,
            engine=ComponentSpec("turbo"),
        )


class TestEngineSpecSemantics:
    """The engine knob hashes into the spec key but never into the physics."""

    def test_key_differs_but_results_do_not(self):
        base = make_spec("basic", False, 12, 4.0, 3, ORACLE_ENGINE)
        turbo = replace(base, engine=ComponentSpec("turbo"))
        assert base.key() != turbo.key()
        want = run_spec(base, oracle=True)
        got = run_spec(turbo, oracle=False)
        assert got == want

    def test_engine_round_trips_through_json(self):
        spec = make_spec(
            "pcmac", True, 10, 2.0, 7, ComponentSpec("turbo", bucket_width_s=0.05)
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.engine.params_dict["bucket_width_s"] == 0.05
