"""Tracer tests: category gating, counters, queries."""

from __future__ import annotations

from repro.sim.trace import Tracer


class TestGating:
    def test_disabled_category_counts_but_stores_nothing(self):
        t = Tracer()
        t.emit(1.0, "phy.tx", 3, frame=7)
        assert t.count("phy.tx") == 1
        assert list(t.query()) == []

    def test_enabled_category_stores_records(self):
        t = Tracer()
        t.enable("phy.tx")
        t.emit(1.0, "phy.tx", 3, frame=7)
        recs = list(t.query("phy.tx"))
        assert len(recs) == 1
        assert recs[0].get("frame") == 7

    def test_max_records_bounds_memory(self):
        t = Tracer(max_records=5)
        t.enable("x")
        for k in range(10):
            t.emit(float(k), "x", 0)
        assert len(t.records) == 5
        assert t.count("x") == 10


class TestQueries:
    def test_filter_by_node(self):
        t = Tracer()
        t.enable("a")
        t.emit(1.0, "a", 1)
        t.emit(2.0, "a", 2)
        assert [r.node for r in t.query("a", node=2)] == [2]

    def test_record_as_dict(self):
        t = Tracer()
        t.enable("a")
        t.emit(1.5, "a", 9, reason="test")
        rec = next(iter(t.query("a")))
        d = rec.as_dict()
        assert d["time"] == 1.5
        assert d["category"] == "a"
        assert d["node"] == 9
        assert d["reason"] == "test"

    def test_bump_counter(self):
        t = Tracer()
        t.bump("custom", 3)
        assert t.counters["custom"] == 3

    def test_clear(self):
        t = Tracer()
        t.enable("a")
        t.emit(1.0, "a", 0)
        t.clear()
        assert t.count("a") == 0
        assert list(t.query()) == []
