"""Tracer tests: category gating, counters, queries."""

from __future__ import annotations

import pytest

from repro.sim.trace import Tracer


class TestGating:
    def test_disabled_category_counts_but_stores_nothing(self):
        t = Tracer()
        t.emit(1.0, "phy.tx", 3, frame=7)
        assert t.count("phy.tx") == 1
        assert list(t.query()) == []

    def test_enabled_category_stores_records(self):
        t = Tracer()
        t.enable("phy.tx")
        t.emit(1.0, "phy.tx", 3, frame=7)
        recs = list(t.query("phy.tx"))
        assert len(recs) == 1
        assert recs[0].get("frame") == 7

    def test_max_records_bounds_memory(self):
        t = Tracer(max_records=5)
        t.enable("x")
        for k in range(10):
            t.emit(float(k), "x", 0)
        assert len(t.records) == 5
        assert t.count("x") == 10

    def test_truncation_is_counted_not_silent(self):
        t = Tracer(max_records=3)
        t.enable("x")
        for k in range(10):
            t.emit(float(k), "x", 0)
        assert t.dropped == 7
        assert t.truncated
        assert t.count("trace.dropped") == 7
        assert t.counters["trace.dropped"] == 7

    def test_no_truncation_reports_clean(self):
        t = Tracer()
        t.enable("x")
        t.emit(1.0, "x", 0)
        assert t.dropped == 0
        assert not t.truncated
        assert "trace.dropped" not in t.counters


class TestHandles:
    """The pre-bound fast-path handles (see the module docstring contract)."""

    def test_handle_is_interned(self):
        t = Tracer()
        assert t.handle("phy.tx") is t.handle("phy.tx")

    def test_handle_counts_aggregate_with_emit(self):
        t = Tracer()
        h = t.handle("mac.drop")
        h.count += 1  # the hot-path idiom
        t.emit(1.0, "mac.drop", 0, reason="x")  # the cold-path API
        h.emit(2.0, 0, reason="y")
        assert t.count("mac.drop") == 3
        assert t.counters["mac.drop"] == 3

    def test_disabled_handle_stores_nothing(self):
        t = Tracer()
        h = t.handle("phy.tx")
        assert not h.store
        h.emit(1.0, 3, frame=7)
        assert t.count("phy.tx") == 1
        assert list(t.query()) == []

    def test_enable_flips_existing_handles(self):
        t = Tracer()
        h = t.handle("phy.tx")  # bound before enable(), as radios do
        t.enable("phy.tx")
        assert h.store
        h.emit(1.0, 3, frame=7)
        assert [r.get("frame") for r in t.query("phy.tx")] == [7]

    def test_handle_bound_after_enable_stores(self):
        t = Tracer()
        t.enable("phy.tx")
        h = t.handle("phy.tx")
        assert h.store

    def test_record_respects_cap_and_counts_drops(self):
        t = Tracer(max_records=1)
        t.enable("x")
        h = t.handle("x")
        h.emit(1.0, 0)
        h.emit(2.0, 0)
        assert len(t.records) == 1
        assert t.dropped == 1
        assert h.count == 2  # counters stay exact through truncation

    def test_truncation_note_helper(self):
        from repro.analysis.report import trace_truncation_note

        t = Tracer(max_records=1)
        t.enable("x")
        assert trace_truncation_note(t) is None
        t.emit(1.0, "x", 0)
        t.emit(2.0, "x", 0)
        note = trace_truncation_note(t)
        assert note is not None and "truncated" in note and "1 record" in note


class TestQueries:
    def test_filter_by_node(self):
        t = Tracer()
        t.enable("a")
        t.emit(1.0, "a", 1)
        t.emit(2.0, "a", 2)
        assert [r.node for r in t.query("a", node=2)] == [2]

    def test_record_as_dict(self):
        t = Tracer()
        t.enable("a")
        t.emit(1.5, "a", 9, reason="test")
        rec = next(iter(t.query("a")))
        d = rec.as_dict()
        assert d["time"] == 1.5
        assert d["category"] == "a"
        assert d["node"] == 9
        assert d["reason"] == "test"

    def test_bump_counter(self):
        t = Tracer()
        t.bump("custom", 3)
        assert t.counters["custom"] == 3

    def test_clear(self):
        t = Tracer()
        t.enable("a")
        t.emit(1.0, "a", 0)
        t.bump("custom")
        t.clear()
        assert t.count("a") == 0
        assert t.count("custom") == 0
        assert t.dropped == 0
        assert list(t.query()) == []


class TestDerivedDroppedCounter:
    """PR-6 fix: ``trace.dropped`` is derived, counted in exactly one place."""

    def test_handle_for_dropped_category_is_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError, match="derived counter"):
            t.handle(Tracer.DROPPED)

    def test_emit_and_enable_of_dropped_category_are_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.emit(1.0, Tracer.DROPPED, 0)
        with pytest.raises(ValueError):
            t.enable(Tracer.DROPPED)

    def test_dropped_is_read_only(self):
        t = Tracer()
        with pytest.raises(AttributeError):
            t.dropped = 5

    def test_drops_are_attributed_per_channel(self):
        t = Tracer(max_records=3)
        t.enable("a", "b")
        for i in range(4):
            t.emit(float(i), "a", 0)  # 3 stored, 1 dropped
        for i in range(2):
            t.emit(float(i), "b", 0)  # ring full: both dropped
        assert t.handle("a").dropped == 1
        assert t.handle("b").dropped == 2
        assert t.dropped == 3
        assert t.count(Tracer.DROPPED) == 3
        assert t.counters[Tracer.DROPPED] == 3

    def test_aggregate_never_double_counts(self):
        """count(), counters, and .dropped all read the same channel sum."""
        t = Tracer(max_records=0)
        t.enable("a")
        t.emit(1.0, "a", 0)
        t.emit(2.0, "a", 0)
        assert t.handle("a").dropped == 2
        # Reading through every surface yields the same number — none of
        # them adds the fold-in on top of a handle's own count.
        assert t.dropped == 2
        assert t.count(Tracer.DROPPED) == 2
        assert t.counters[Tracer.DROPPED] == 2
