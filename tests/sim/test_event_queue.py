"""Event queue ordering and cancellation tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.event import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(3.0, lambda: order.append(3))
        q.push(1.0, lambda: order.append(1))
        q.push(2.0, lambda: order.append(2))
        while (ev := q.pop()) is not None:
            ev.fn()
        assert order == [1, 2, 3]

    def test_equal_times_fifo_by_insertion(self):
        q = EventQueue()
        events = [q.push(1.0, lambda: None, label=f"e{i}") for i in range(10)]
        popped = [q.pop() for _ in range(10)]
        assert [e.label for e in popped] == [e.label for e in events]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(1.0, lambda: None, priority=5, label="low")
        q.push(1.0, lambda: None, priority=0, label="high")
        assert q.pop().label == "high"
        assert q.pop().label == "low"

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_property_pop_sequence_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while (ev := q.pop()) is not None:
            popped.append(ev.time)
        assert popped == sorted(times)


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        ev1 = q.push(1.0, lambda: None, label="a")
        q.push(2.0, lambda: None, label="b")
        ev1.cancel()
        q.note_cancelled()
        assert q.pop().label == "b"

    def test_len_counts_live_events(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        q.note_cancelled()
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        ev.cancel()
        q.note_cancelled()
        assert q.peek_time() == 5.0

    def test_empty_queue(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None
        assert not q
