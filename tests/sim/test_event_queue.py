"""Event queue ordering, cancellation bookkeeping and compaction tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.event import COMPACT_MIN_DEAD, EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(3.0, lambda: order.append(3))
        q.push(1.0, lambda: order.append(1))
        q.push(2.0, lambda: order.append(2))
        while (ev := q.pop()) is not None:
            ev.fn()
        assert order == [1, 2, 3]

    def test_equal_times_fifo_by_insertion(self):
        q = EventQueue()
        events = [q.push(1.0, lambda: None, label=f"e{i}") for i in range(10)]
        popped = [q.pop() for _ in range(10)]
        assert [e.label for e in popped] == [e.label for e in events]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(1.0, lambda: None, priority=5, label="low")
        q.push(1.0, lambda: None, priority=0, label="high")
        assert q.pop().label == "high"
        assert q.pop().label == "low"

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_property_pop_sequence_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while (ev := q.pop()) is not None:
            popped.append(ev.time)
        assert popped == sorted(times)


class TestPopNext:
    """The fused peek+pop traversal must behave exactly like the pair."""

    def test_pop_next_respects_horizon(self):
        q = EventQueue()
        q.push(1.0, lambda: None, label="a")
        q.push(3.0, lambda: None, label="b")
        assert q.pop_next(2.0).label == "a"
        assert q.pop_next(2.0) is None
        assert len(q) == 1  # "b" untouched
        assert q.pop_next(5.0).label == "b"
        assert q.pop_next(5.0) is None

    def test_pop_next_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None, label="dead")
        q.push(1.5, lambda: None, label="live")
        ev.cancel()
        assert q.pop_next(2.0).label == "live"

    def test_pop_next_empty_queue(self):
        assert EventQueue().pop_next(10.0) is None

    def test_pop_next_matches_peek_pop_pair(self):
        mk = lambda: [  # noqa: E731 - local table
            (0.5, "a"), (2.0, "b"), (2.0, "c"), (7.0, "d")
        ]
        fused, paired = EventQueue(), EventQueue()
        for t, lbl in mk():
            fused.push(t, lambda: None, label=lbl)
            paired.push(t, lambda: None, label=lbl)
        horizon = 2.0
        got_fused = []
        while (ev := fused.pop_next(horizon)) is not None:
            got_fused.append(ev.label)
        got_paired = []
        while (nxt := paired.peek_time()) is not None and nxt <= horizon:
            got_paired.append(paired.pop().label)
        assert got_fused == got_paired == ["a", "b", "c"]


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        ev1 = q.push(1.0, lambda: None, label="a")
        q.push(2.0, lambda: None, label="b")
        ev1.cancel()
        assert q.pop().label == "b"

    def test_len_counts_live_events(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_direct_cancel_updates_live_count(self):
        """Regression: Event.cancel() alone must keep len(queue) correct.

        Historically the count only stayed correct when cancellation went
        through Simulator.cancel (which called note_cancelled); a direct
        event.cancel() silently corrupted ``pending_events``.
        """
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        ev.cancel()  # no note_cancelled call — bookkeeping is self-contained
        assert len(q) == 1
        assert q.pop() is not None
        assert len(q) == 0
        assert q.pop() is None

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert len(q) == 0

    def test_note_cancelled_is_a_noop(self):
        """The legacy hook must not double-count on top of Event.cancel."""
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        ev.cancel()
        q.note_cancelled()
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 5.0

    def test_empty_queue(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None
        assert not q


class TestCompaction:
    def test_explicit_compact_preserves_live_events(self):
        q = EventQueue()
        keep = [q.push(float(k), lambda: None, label=f"k{k}") for k in range(10)]
        drop = [q.push(float(k) + 0.5, lambda: None) for k in range(10)]
        for ev in drop:
            ev.cancel()
        q.compact()
        assert len(q) == 10
        assert q._dead == 0
        assert [q.pop().label for _ in range(10)] == [e.label for e in keep]

    def test_compact_on_empty_queue(self):
        q = EventQueue()
        q.compact()
        assert q.pop() is None

    def test_mass_cancellation_triggers_auto_compaction(self):
        q = EventQueue()
        events = [q.push(float(k), lambda: None) for k in range(2 * COMPACT_MIN_DEAD)]
        survivor = q.push(1e9, lambda: None, label="survivor")
        for ev in events:
            ev.cancel()
        # The heap must have been purged (not still hold every dead tuple);
        # at most one compaction threshold's worth of dead entries remains.
        assert len(q._heap) <= COMPACT_MIN_DEAD
        assert len(q) == 1
        assert q.pop().label == "survivor"

    def test_compaction_does_not_reorder(self):
        """Compacted and uncompacted queues pop the identical sequence."""

        def fill(q):
            events = []
            for k in range(60):
                events.append(
                    q.push(float(k % 7), lambda: None, priority=k % 3, label=f"e{k}")
                )
            return events

        compacted, plain = EventQueue(), EventQueue()
        for q in (compacted, plain):
            for k, ev in enumerate(fill(q)):
                if k % 3 == 0:
                    ev.cancel()
        compacted.compact()
        got = [ev.label for ev in iter(compacted.pop, None)]
        want = [ev.label for ev in iter(plain.pop, None)]
        assert got == want
        assert len(got) == 40
