"""RNG registry tests: determinism and stream isolation."""

from __future__ import annotations

import pytest

from repro.sim.rng import RngRegistry


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("mac.3")
        b = RngRegistry(7).stream("mac.3")
        assert a.integers(0, 1000, size=10).tolist() == b.integers(
            0, 1000, size=10
        ).tolist()

    def test_different_seeds_differ(self):
        a = RngRegistry(7).stream("mac.3")
        b = RngRegistry(8).stream("mac.3")
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_streams_are_independent_of_creation_order(self):
        r1 = RngRegistry(5)
        r1.stream("x")
        v1 = r1.stream("y").integers(0, 10**9)
        r2 = RngRegistry(5)
        v2 = r2.stream("y").integers(0, 10**9)  # "y" created first here
        assert v1 == v2

    def test_stream_is_cached(self):
        r = RngRegistry(1)
        assert r.stream("a") is r.stream("a")

    def test_distinct_names_distinct_streams(self):
        r = RngRegistry(1)
        assert r.stream("a") is not r.stream("b")


class TestConvenience:
    def test_uniform_within_bounds(self):
        r = RngRegistry(3)
        for _ in range(100):
            v = r.uniform("u", 2.0, 5.0)
            assert 2.0 <= v <= 5.0

    def test_randint_inclusive_bounds(self):
        r = RngRegistry(3)
        values = {r.randint("i", 0, 3) for _ in range(200)}
        assert values == {0, 1, 2, 3}

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            RngRegistry(-1)
