"""Fused vs reference kernel, heap vs calendar queue: exact equivalence.

The fused hot loop (``EventQueue.pop_next`` inside ``Simulator(fused=True)``)
must dispatch the *exact* event sequence of the reference peek-then-pop loop
— same ``(time, priority, seq)`` total order, same ``events_executed`` —
under any interleaving of scheduling, cancellation and heap compaction.
The bucketed :class:`~repro.sim.event.CalendarQueue` must in turn pop the
exact sequence of the binary heap (its oracle) under the same
interleavings at any bucket width, including the parked-bucket edge where
a push lands in a bucket *earlier* than the one being consumed.  These
tests drive all implementations with identical scripts (including handlers
that schedule and cancel further events while running) and whole paper
scenarios, and compare field by field.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.builder import NetworkBuilder
from repro.config import ScenarioConfig
from repro.scenariospec import ScenarioSpec
from repro.sim.event import CalendarQueue, EventQueue
from repro.sim.kernel import Simulator

# ---------------------------------------------------------------------------
# Property: queue-level dispatch order under schedule/cancel/compaction
# ---------------------------------------------------------------------------

#: One scripted operation: ("push", time, priority) | ("cancel", k) |
#: ("compact",).  ``k`` picks among the events pushed so far (modulo).
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.floats(min_value=0.0, max_value=100.0),
            st.integers(min_value=-3, max_value=3),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("compact")),
    ),
    min_size=1,
    max_size=300,
)


def _apply(queue: EventQueue, ops, compaction: bool):
    """Run the op script against ``queue``; returns the pushed events."""
    pushed = []
    for op in ops:
        if op[0] == "push":
            pushed.append(
                queue.push(op[1], lambda: None, priority=op[2], label=f"e{len(pushed)}")
            )
        elif op[0] == "cancel":
            if pushed:
                pushed[op[1] % len(pushed)].cancel()
        elif compaction:  # explicit compact on one queue only
            queue.compact()
    return pushed


class TestQueueDispatchOrder:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops)
    def test_order_stable_under_interleaved_cancel_and_compaction(self, ops):
        compacted, plain = EventQueue(), EventQueue()
        _apply(compacted, ops, compaction=True)
        pushed = _apply(plain, ops, compaction=False)

        got = []
        while (ev := compacted.pop_next(float("inf"))) is not None:
            got.append((ev.time, ev.priority, ev.seq, ev.label))
        want = []
        while (ev := plain.pop()) is not None:
            want.append((ev.time, ev.priority, ev.seq, ev.label))

        assert got == want
        # The dispatch sequence is exactly the live events sorted by the
        # (time, priority, seq) total order.
        live = sorted(
            (ev.time, ev.priority, ev.seq, ev.label)
            for ev in pushed
            if not ev.cancelled
        )
        assert got == live
        assert len(compacted) == len(plain) == 0


# ---------------------------------------------------------------------------
# Property: calendar queue vs binary heap under mixed push/pop/drain scripts
# ---------------------------------------------------------------------------

#: Mixed op scripts extend ``_ops`` with consumption: ``("pop",)`` pops one
#: event mid-script and ``("drain", t)`` mimics ``run_until(t)`` by popping
#: everything with ``time <= t``.  Draining then pushing an earlier time is
#: exactly the sequence that forces the calendar to re-park its active
#: bucket behind a newly earlier one.
_mixed_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.floats(min_value=0.0, max_value=100.0),
            st.integers(min_value=-3, max_value=3),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("compact")),
        st.tuples(st.just("pop")),
        st.tuples(st.just("drain"), st.floats(min_value=0.0, max_value=100.0)),
    ),
    min_size=1,
    max_size=300,
)


def _entry(ev):
    return (ev.time, ev.priority, ev.seq, ev.label)


def _apply_mixed(queue, ops, compaction: bool):
    """Run a mixed script against ``queue``; returns the pop trace.

    The trace records every popped entry *and* the drain boundaries (as
    ``("drained", t)`` markers), so two queues agree only if they release
    the same events at the same points of the script.
    """
    pushed, trace = [], []
    for op in ops:
        if op[0] == "push":
            pushed.append(
                queue.push(op[1], lambda: None, priority=op[2], label=f"e{len(pushed)}")
            )
        elif op[0] == "cancel":
            if pushed:
                pushed[op[1] % len(pushed)].cancel()
        elif op[0] == "pop":
            ev = queue.pop()
            trace.append(None if ev is None else _entry(ev))
        elif op[0] == "drain":
            while (ev := queue.pop_next(op[1])) is not None:
                trace.append(_entry(ev))
            trace.append(("drained", op[1]))
        elif compaction:  # explicit compact on the queue under test only
            queue.compact()
    while (ev := queue.pop()) is not None:
        trace.append(_entry(ev))
    return trace


class TestCalendarQueueDispatchOrder:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=_mixed_ops,
        width=st.sampled_from([1e-3, 0.1, 1.0, 7.5, 1000.0]),
    )
    def test_calendar_pops_exact_heap_order(self, ops, width):
        """Identical pop traces under arbitrary interleavings, any width."""
        heap_trace = _apply_mixed(EventQueue(), ops, compaction=False)
        cal_trace = _apply_mixed(CalendarQueue(width), ops, compaction=True)
        assert cal_trace == heap_trace

    @settings(max_examples=60, deadline=None)
    @given(ops=_ops, width=st.sampled_from([1e-3, 0.5, 50.0]))
    def test_calendar_order_stable_under_cancel_and_compaction(self, ops, width):
        """The heap suite's original property, rerun against the calendar."""
        queue = CalendarQueue(width)
        pushed = _apply(queue, ops, compaction=True)
        got = []
        while (ev := queue.pop_next(float("inf"))) is not None:
            got.append(_entry(ev))
        live = sorted(
            _entry(ev) for ev in pushed if not ev.cancelled
        )
        assert got == live
        assert len(queue) == 0

    def test_parked_bucket_edge(self):
        """Deterministic regression for the re-park subtlety.

        Drain to a horizon *inside* the active bucket, push an event in an
        earlier bucket, and require the earlier event to pop first.
        """
        queue = CalendarQueue(1.0)
        queue.push(5.7, lambda: None, label="late")
        assert queue.pop_next(5.0) is None  # activates bucket 5, stops short
        queue.push(2.3, lambda: None, label="early")
        assert queue.pop().label == "early"
        assert queue.pop().label == "late"
        assert queue.pop() is None


# ---------------------------------------------------------------------------
# Property: kernel-level dispatch with handlers that schedule and cancel
# ---------------------------------------------------------------------------


class _ScriptedRun:
    """Deterministic workload: each fired event may spawn and cancel others."""

    def __init__(self, sim: Simulator, plan):
        self.sim = sim
        self.plan = plan  # idx -> (spawn_delays, cancel_indices)
        self.fired: list[tuple[float, str]] = []
        self.events: list = []

    def start(self, initial):
        for k, (t, prio) in enumerate(initial):
            self._push(t, prio, k)

    def _push(self, time, priority, idx):
        ev = self.sim.schedule(
            time, lambda idx=idx: self._fire(idx), priority=priority, label=f"s{idx}"
        )
        self.events.append(ev)

    def _fire(self, idx):
        self.fired.append((self.sim.now, f"s{idx}"))
        spawn, cancels = self.plan.get(idx, ((), ()))
        for k, delay in enumerate(spawn):
            self._push(self.sim.now + delay, (idx + k) % 3, 1000 * (idx + 1) + k)
        for c in cancels:
            if self.events:
                self.sim.cancel(self.events[c % len(self.events)])


@settings(max_examples=25, deadline=None)
@given(
    initial=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.integers(min_value=0, max_value=2),
        ),
        min_size=1,
        max_size=20,
    ),
    plan=st.dictionaries(
        st.integers(min_value=0, max_value=19),
        st.tuples(
            st.lists(st.floats(min_value=0.0, max_value=5.0), max_size=3),
            st.lists(st.integers(min_value=0, max_value=100), max_size=3),
        ),
        max_size=10,
    ),
    horizon=st.floats(min_value=1.0, max_value=20.0),
)
def test_all_kernel_variants_dispatch_identically(initial, plan, horizon):
    """Fused/reference × heap/calendar (× pooling) fire the same sequence."""
    variants = (
        dict(fused=True),
        dict(fused=False),
        dict(fused=True, scheduler="calendar"),
        dict(fused=True, scheduler="calendar", bucket_width_s=0.25),
        dict(fused=True, scheduler="calendar", pool_events=True),
        dict(fused=False, scheduler="calendar"),
    )
    runs = []
    for kwargs in variants:
        sim = Simulator(**kwargs)
        script = _ScriptedRun(sim, plan)
        script.start(initial)
        sim.run_until(horizon)
        runs.append((script.fired, sim.events_executed, sim.now, sim.pending_events))
    assert all(r == runs[0] for r in runs[1:])


# ---------------------------------------------------------------------------
# Whole-run: bit-identical ExperimentResults across paper scenarios
# ---------------------------------------------------------------------------


def _run_result(protocol: str, mobile: bool, fused: bool) -> dict:
    cfg = replace(ScenarioConfig(), node_count=10, duration_s=5.0, seed=11)
    spec = ScenarioSpec.from_legacy(cfg, protocol, mobile=mobile)
    net = NetworkBuilder(spec, fused_kernel=fused).build()
    result = asdict(net.run())
    result.pop("wallclock_s")  # the only legitimately nondeterministic field
    return result


class TestWholeRunEquivalence:
    """Fused kernel must reproduce the reference kernel bit for bit."""

    @pytest.mark.parametrize("protocol", ["basic", "pcmac"])
    @pytest.mark.parametrize("mobile", [False, True], ids=["static", "mobile"])
    def test_experiment_results_bit_identical(self, protocol, mobile):
        fused = _run_result(protocol, mobile, fused=True)
        reference = _run_result(protocol, mobile, fused=False)
        assert fused == reference
        # Equality above is exact (floats compared with ==); spot-check the
        # fields the acceptance criteria single out.
        assert fused["events_executed"] == reference["events_executed"]
        assert fused["events_executed"] > 0
        assert fused["sent"] > 0
