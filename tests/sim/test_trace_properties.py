"""Property test of the trace drop-accounting invariant.

For every *stored* category, at every point of an arbitrary interleaving
of emits (enabled and disabled categories, via handles and via
``Tracer.emit``), sink writes, and ``clear()`` calls::

    channel.count == records stored (ring) + records sunk + channel.dropped

while disabled categories count exactly and never store, sink, or drop,

with the aggregate ``tracer.dropped`` / ``trace.dropped`` counter equal to
the per-channel sum — counted in exactly one place, never twice.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import TraceRecord, Tracer

CATEGORIES = ("a", "b", "c")
ENABLED = {"a", "b"}  # c is counted but never stored
SINKED = {"a"}  # the sink consumes only category a


class RecordingSink:
    """Minimal sink double: consumes SINKED categories, tallies them."""

    def __init__(self) -> None:
        self.by_category: dict[str, int] = {}

    def write(self, record: TraceRecord) -> bool:
        if record.category not in SINKED:
            return False
        self.by_category[record.category] = (
            self.by_category.get(record.category, 0) + 1
        )
        return True


#: One step: emit on some category through either API, or wipe everything.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("emit"), st.sampled_from(CATEGORIES)),
        st.tuples(st.just("handle_emit"), st.sampled_from(CATEGORIES)),
        st.tuples(st.just("clear"), st.just("")),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=ops, max_records=st.integers(min_value=0, max_value=5),
       use_sink=st.booleans())
def test_count_equals_stored_plus_sunk_plus_dropped(ops, max_records, use_sink):
    sink = RecordingSink() if use_sink else None
    t = Tracer(
        enabled_categories=ENABLED, max_records=max_records, sink=sink
    )
    emitted = dict.fromkeys(CATEGORIES, 0)
    sunk_baseline = dict.fromkeys(CATEGORIES, 0)
    time = 0.0
    for op, cat in ops:
        if op == "clear":
            t.clear()
            emitted = dict.fromkeys(CATEGORIES, 0)
            # The sink is external output — clear() must not rewind it; the
            # per-epoch invariant counts only what was sunk since.
            if sink is not None:
                sunk_baseline = {
                    c: sink.by_category.get(c, 0) for c in CATEGORIES
                }
        elif op == "emit":
            time += 1.0
            t.emit(time, cat, 0, seq=int(time))
            emitted[cat] += 1
        else:
            time += 1.0
            h = t.handle(cat)
            h.count += 1
            if h.store:
                h.record(time, 0, seq=int(time))
            emitted[cat] += 1

        # -- the invariant, checked after every single step ----------------
        for c in CATEGORIES:
            h = t.handle(c)
            stored = sum(1 for r in t.records if r.category == c)
            sunk = (
                sink.by_category.get(c, 0) - sunk_baseline[c]
                if sink is not None
                else 0
            )
            assert h.count == emitted[c]
            if c in ENABLED:
                assert h.count == stored + sunk + h.dropped, (
                    f"{c}: count={h.count} stored={stored} sunk={sunk} "
                    f"dropped={h.dropped}"
                )
            else:
                # Disabled categories count exactly, but never store,
                # sink, or drop — records are opt-in.
                assert stored == sunk == h.dropped == 0
        # The aggregate is the per-channel sum, sourced exactly once.
        per_channel = sum(t.handle(c).dropped for c in CATEGORIES)
        assert t.dropped == per_channel
        assert t.count(Tracer.DROPPED) == per_channel
        assert t.counters.get(Tracer.DROPPED, 0) == per_channel
        assert len(t.records) <= max_records
