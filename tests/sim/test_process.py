"""Timer and PeriodicTask tests."""

from __future__ import annotations

import pytest

from repro.sim.process import PeriodicTask, Timer


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.start(1.0)
        sim.run_until(2.0)
        assert fired == [1.0]

    def test_cancel_prevents_fire(self, sim):
        fired = []
        t = Timer(sim, lambda: fired.append(True))
        t.start(1.0)
        t.cancel()
        sim.run_until(2.0)
        assert fired == []

    def test_restart_resets_expiry(self, sim):
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.start(1.0)
        sim.run_until(0.5)
        t.start(1.0)  # re-arm at t=0.5
        sim.run_until(3.0)
        assert fired == [1.5]

    def test_running_property(self, sim):
        t = Timer(sim, lambda: None)
        assert not t.running
        t.start(1.0)
        assert t.running
        assert t.expiry == 1.0
        sim.run_until(2.0)
        assert not t.running

    def test_cancel_when_not_running_is_safe(self, sim):
        Timer(sim, lambda: None).cancel()


class TestPeriodicTask:
    def test_fires_every_period(self, sim):
        fired = []
        task = PeriodicTask(sim, lambda: fired.append(sim.now), period=1.0)
        task.start()
        sim.run_until(3.5)
        assert fired == [1.0, 2.0, 3.0]

    def test_offset_controls_first_fire(self, sim):
        fired = []
        task = PeriodicTask(sim, lambda: fired.append(sim.now), period=1.0)
        task.start(offset=0.25)
        sim.run_until(2.5)
        assert fired == [0.25, 1.25, 2.25]

    def test_stop_halts_invocations(self, sim):
        fired = []
        task = PeriodicTask(sim, lambda: fired.append(sim.now), period=1.0)
        task.start()
        sim.schedule(2.5, task.stop)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0]

    def test_rejects_nonpositive_period(self, sim):
        with pytest.raises(ValueError):
            PeriodicTask(sim, lambda: None, period=0.0)

    def test_running_property(self, sim):
        task = PeriodicTask(sim, lambda: None, period=1.0)
        assert not task.running
        task.start()
        assert task.running
        task.stop()
        assert not task.running
