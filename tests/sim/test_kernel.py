"""Simulator kernel tests: clock discipline, scheduling rules, stop."""

from __future__ import annotations

import pytest

from repro.sim.kernel import SimulationError, Simulator


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_run_until_advances_clock_to_end(self, sim):
        sim.run_until(5.0)
        assert sim.now == 5.0

    def test_events_fire_at_their_time(self, sim):
        seen = []
        sim.schedule(1.25, lambda: seen.append(sim.now))
        sim.run_until(2.0)
        assert seen == [1.25]

    def test_events_beyond_horizon_do_not_fire(self, sim):
        seen = []
        sim.schedule(3.0, lambda: seen.append(True))
        sim.run_until(2.0)
        assert seen == []
        sim.run_until(4.0)
        assert seen == [True]


class TestSchedulingRules:
    def test_cannot_schedule_in_past(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        with pytest.raises(SimulationError):
            sim.schedule(1.5, lambda: None)

    def test_schedule_in_rejects_negative_delay(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_in(-0.1, lambda: None)

    def test_schedule_at_now_fires_after_current_handler(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(sim.now, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run_until(2.0)
        assert order == ["outer", "inner"]

    def test_cancel_prevents_firing(self, sim):
        seen = []
        ev = sim.schedule(1.0, lambda: seen.append(True))
        sim.cancel(ev)
        sim.run_until(2.0)
        assert seen == []

    def test_cancel_none_is_noop(self, sim):
        sim.cancel(None)

    def test_double_cancel_is_safe(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.cancel(ev)
        sim.cancel(ev)
        sim.run_until(2.0)


class TestExecution:
    def test_events_executed_counter(self, sim):
        for k in range(5):
            sim.schedule(float(k) + 0.5, lambda: None)
        sim.run_until(10.0)
        assert sim.events_executed == 5

    def test_pending_events(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run_until(1.5)
        assert sim.pending_events == 1

    def test_stop_halts_run(self, sim):
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run_until(10.0)
        assert seen == [1]
        # The stopped run leaves the clock at the stop point, not the horizon.
        assert sim.now == 1.0

    def test_step_executes_single_event(self, sim):
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(2.0, lambda: seen.append(2))
        assert sim.step()
        assert seen == [1]
        assert sim.step()
        assert seen == [1, 2]
        assert not sim.step()

    def test_handler_chain_ordering(self, sim):
        """Handlers scheduling at identical times preserve FIFO order."""
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(1.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("c"))
        sim.run_until(2.0)
        assert order == ["a", "b", "c"]
