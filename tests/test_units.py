"""Unit-conversion tests (repro.units)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestDbmConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm_known_value(self):
        assert units.watts_to_dbm(0.2818) == pytest.approx(24.5, abs=0.01)

    def test_watts_to_dbm_rejects_zero(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)

    def test_watts_to_dbm_rejects_negative(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(-1.0)

    @given(st.floats(min_value=-120.0, max_value=60.0))
    def test_roundtrip_dbm(self, dbm):
        assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(dbm)

    @given(st.floats(min_value=1e-15, max_value=1e3))
    def test_roundtrip_watts(self, watts):
        assert units.dbm_to_watts(units.watts_to_dbm(watts)) == pytest.approx(
            watts, rel=1e-9
        )


class TestRatioConversions:
    def test_zero_db_is_unity(self):
        assert units.db_to_ratio(0.0) == 1.0

    def test_ten_db_is_factor_ten(self):
        assert units.db_to_ratio(10.0) == pytest.approx(10.0)

    def test_ratio_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.ratio_to_db(0.0)

    @given(st.floats(min_value=-60.0, max_value=60.0))
    def test_roundtrip_db(self, db):
        assert units.ratio_to_db(units.db_to_ratio(db)) == pytest.approx(db)


class TestWavelength:
    def test_paper_frequency(self):
        # 914 MHz WaveLAN carrier: λ ≈ 0.328 m.
        assert units.wavelength(914e6) == pytest.approx(0.328, abs=1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.wavelength(0.0)


class TestSizesAndDurations:
    def test_bits(self):
        assert units.bits(512) == 4096

    def test_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            units.bits(-1)

    def test_tx_duration_512B_at_2mbps(self):
        # 4096 bits at 2 Mbps = 2.048 ms.
        assert units.tx_duration(512, 2e6) == pytest.approx(2.048e-3)

    def test_tx_duration_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            units.tx_duration(100, 0.0)

    def test_mw_roundtrip(self):
        assert units.watts_to_mw(units.mw_to_watts(281.8)) == pytest.approx(281.8)


class TestThermalNoise:
    def test_ktb_at_1hz(self):
        assert units.thermal_noise_watts(1.0) == pytest.approx(
            units.BOLTZMANN * units.T0_KELVIN
        )

    def test_noise_figure_raises_floor(self):
        base = units.thermal_noise_watts(22e6)
        raised = units.thermal_noise_watts(22e6, noise_figure_db=10.0)
        assert raised == pytest.approx(10.0 * base)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            units.thermal_noise_watts(0.0)
