"""The null reception component must be invisible — bit-identical runs.

Mirrors the energy / obs / faults null-identity guards: the ``reception``
slot's default must add *nothing* — same results, same ``events_executed``
— so every pre-reception result (and every recorded benchmark baseline)
stays valid.  ``tools/bench_sinr.py`` checks the same property against the
full BENCH_engine grid; this is the fast tier-1 version.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import ScenarioConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec


def small_cfg(**overrides) -> ScenarioConfig:
    defaults = dict(node_count=10, duration_s=5.0, seed=3)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def strip_wallclock(result):
    """Zero the only legitimately nondeterministic field."""
    return replace(result, wallclock_s=0.0)


class TestNullReceptionIdentity:
    @pytest.mark.parametrize("protocol", ["basic", "pcmac"])
    @pytest.mark.parametrize("mobility", ["static", "waypoint"])
    def test_default_equals_explicit_null(self, protocol, mobility):
        default = ScenarioSpec(
            cfg=small_cfg(), mac=protocol, mobility=mobility
        ).run()
        explicit = ScenarioSpec(
            cfg=small_cfg(),
            mac=protocol,
            mobility=mobility,
            reception=ComponentSpec("null"),
        ).run()
        assert strip_wallclock(default) == strip_wallclock(explicit)
        assert default.events_executed == explicit.events_executed

    def test_null_reception_wires_nothing(self):
        net = ScenarioSpec(
            cfg=small_cfg(), mac="pcmac", reception=ComponentSpec("null")
        ).build()
        for node in net.nodes:
            assert node.mac.radio.reception is None
            control = getattr(node.mac, "control", None)
            if control is not None:
                assert control.radio.reception is None

    @pytest.mark.parametrize("protocol", ["basic", "pcmac"])
    def test_sinr_receiver_is_installed_everywhere(self, protocol):
        net = ScenarioSpec(
            cfg=small_cfg(), mac=protocol, reception=ComponentSpec("sinr")
        ).build()
        for node in net.nodes:
            assert node.mac.radio.reception is not None
            control = getattr(node.mac, "control", None)
            if control is not None:
                assert control.radio.reception is not None

    def test_sinr_changes_a_dense_run(self):
        """The converse guard: the SINR model must NOT be a silent no-op.

        A cramped field forces overlapping transmissions, where cumulative-
        SINR decode decisions (typed drops, sync releases) diverge from the
        inline threshold rules.
        """
        from repro.config import MobilityConfig

        cfg = small_cfg(
            node_count=16,
            duration_s=5.0,
            mobility=MobilityConfig(
                field_width_m=250.0, field_height_m=250.0, speed_mps=0.0
            ),
        )
        plain = ScenarioSpec(cfg=cfg, mac="basic", mobility="static").run()
        sinr = ScenarioSpec(
            cfg=cfg,
            mac="basic",
            mobility="static",
            reception=ComponentSpec("sinr"),
        ).run()
        totals = sinr.mac_totals
        drops = (
            totals["rx_drop_collision"]
            + totals["rx_drop_capture_lost"]
            + totals["rx_drop_below_sensitivity"]
        )
        assert drops > 0
        assert strip_wallclock(plain) != strip_wallclock(sinr)

    def test_schema_5_spec_still_reads(self):
        """A pre-reception (schema 5) spec file loads and defaults to null."""
        spec = ScenarioSpec(cfg=small_cfg())
        payload = spec.to_dict()
        payload["schema"] = 5
        del payload["components"]["reception"]
        restored = ScenarioSpec.from_dict(payload)
        assert restored == spec
        assert restored.reception == ComponentSpec("null")
