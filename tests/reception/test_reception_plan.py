"""ReceptionPlan validation and the sinr component's param derivation."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.config import ScenarioConfig
from repro.phy.reception import ReceptionPlan
from repro.registry import registry
from repro.units import db_to_ratio, dbm_to_watts


class TestPlanValidation:
    def test_valid_plan(self):
        plan = ReceptionPlan(capture_threshold=10.0, rx_sensitivity_w=1e-10)
        assert plan.capture_threshold == 10.0

    def test_threshold_below_unity_rejected(self):
        with pytest.raises(ValueError, match="capture_threshold"):
            ReceptionPlan(capture_threshold=0.5, rx_sensitivity_w=1e-10)

    def test_nonpositive_sensitivity_rejected(self):
        with pytest.raises(ValueError, match="rx_sensitivity_w"):
            ReceptionPlan(capture_threshold=10.0, rx_sensitivity_w=0.0)


class TestSinrComponent:
    def factory(self, **params):
        entry = registry("reception").get("sinr")
        ctx = SimpleNamespace(cfg=ScenarioConfig())
        return entry.factory(ctx, **entry.validate(params))

    def test_defaults_come_from_phy_config(self):
        cfg = ScenarioConfig()
        plan = self.factory()
        assert plan.capture_threshold == cfg.phy.capture_threshold
        assert plan.rx_sensitivity_w == cfg.phy.rx_threshold_w

    def test_explicit_params_convert_units(self):
        plan = self.factory(capture_threshold_db=3.0, rx_sensitivity_dbm=-90.0)
        assert plan.capture_threshold == pytest.approx(db_to_ratio(3.0))
        assert plan.rx_sensitivity_w == pytest.approx(dbm_to_watts(-90.0))

    def test_null_component_returns_none(self):
        entry = registry("reception").get("null")
        assert entry.factory(SimpleNamespace(cfg=ScenarioConfig())) is None
