"""SinrReceiver decision table: sync, capture, stomp, discard, TX abort.

These drive a receiver-equipped radio directly through ``signal_start`` /
``signal_end`` with hand-computed powers (the ``tests/phy/test_radio.py``
idiom), so every rule of the state machine is pinned individually — plus a
hypothesis property that the *decode outcome* of a same-instant arrival
batch is invariant to the order the channel happens to deliver the edges in.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.frame import PhyFrame
from repro.phy.reception import (
    DROP_BELOW_SENSITIVITY,
    DROP_CAPTURE_LOST,
    DROP_COLLISION,
    ReceptionPlan,
    SinrReceiver,
)
from repro.sim.kernel import Simulator
from tests.conftest import make_radio

RX = 3.652e-10  # decode threshold == receiver sensitivity here
NOISE = 1e-13
CAPTURE = 10.0  # linear SINR threshold
PLCP_S = 192e-6  # 802.11 long preamble


class Listener:
    """Records every radio callback, including typed drops."""

    def __init__(self):
        self.events = []

    def on_carrier_busy(self):
        self.events.append(("busy",))

    def on_carrier_idle(self, failed):
        self.events.append(("idle", failed))

    def on_rx_start(self, frame):
        self.events.append(("rx_start", frame.frame_id))

    def on_rx_end(self, frame, ok, rx_power_w):
        self.events.append(("rx_end", frame.frame_id, ok))

    def on_rx_drop(self, frame, reason):
        self.events.append(("rx_drop", frame.frame_id, reason))

    def on_tx_end(self, frame):
        self.events.append(("tx_end", frame.frame_id))

    def of(self, kind):
        return [e for e in self.events if e[0] == kind]


def frame(src=1, size=100, rate=1e6, power=0.1) -> PhyFrame:
    return PhyFrame(
        payload=None,
        size_bytes=size,
        bitrate_bps=rate,
        plcp_s=PLCP_S,
        tx_power_w=power,
        src=src,
    )


def sinr_radio(sim):
    radio = make_radio(sim, 0, (0.0, 0.0))
    radio.listener = Listener()
    radio.reception = SinrReceiver(
        radio, ReceptionPlan(capture_threshold=CAPTURE, rx_sensitivity_w=RX)
    )
    return radio


@pytest.fixture
def radio(sim):
    return sinr_radio(sim)


class TestDecisionTable:
    def test_clean_frame_decodes(self, sim, radio):
        f = frame()
        radio.signal_start(f, RX * 10)
        assert radio.receiving
        radio.signal_end(f.frame_id)
        assert radio.listener.of("rx_end") == [("rx_end", f.frame_id, True)]
        assert radio.reception.drop_total == 0

    def test_below_sensitivity_is_discarded(self, sim, radio):
        f = frame()
        radio.signal_start(f, RX * 0.9)
        assert not radio.receiving
        assert radio.reception.drops[DROP_BELOW_SENSITIVITY] == 1
        assert radio.listener.of("rx_drop") == [
            ("rx_drop", f.frame_id, DROP_BELOW_SENSITIVITY)
        ]
        radio.signal_end(f.frame_id)
        assert radio.listener.of("rx_end") == []

    def test_drowned_leading_edge_cannot_sync(self, sim, radio):
        """Decodable power but SINR < capture at the leading edge."""
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX * 1000)
        # f2 is 5x weaker than the lock: SINR 1/5 < 10... and it also
        # drags f1's sync SINR to 5 < 10, so both are lost — the classic
        # collision the threshold model would mis-score as one clean win.
        radio.signal_start(f2, RX * 5000)
        assert not radio.receiving
        assert radio.reception.drops[DROP_COLLISION] == 2

    def test_weak_interference_leaves_sync_alone(self, sim, radio):
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX * 1000)
        radio.signal_start(f2, RX * 10)  # SINR of lock still ~100
        assert radio.lock_power_w == RX * 1000
        assert radio.reception.drops[DROP_COLLISION] == 1  # f2 only
        radio.signal_end(f2.frame_id)
        radio.signal_end(f1.frame_id)
        assert radio.listener.of("rx_end") == [("rx_end", f1.frame_id, True)]

    def test_stronger_arrival_captures_during_sync(self, sim, radio):
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX * 1000)
        # 20x the lock power: SINR vs (noise + f1) ~ 20 >= 10 -> capture.
        radio.signal_start(f2, RX * 20000)
        assert radio.lock_power_w == RX * 20000
        assert radio.reception.drops[DROP_CAPTURE_LOST] == 1
        assert radio.listener.of("rx_start") == [
            ("rx_start", f1.frame_id),
            ("rx_start", f2.frame_id),
        ]
        radio.signal_end(f1.frame_id)
        radio.signal_end(f2.frame_id)
        assert radio.listener.of("rx_end") == [("rx_end", f2.frame_id, True)]

    def test_no_capture_after_preamble(self, sim, radio):
        """Past the sync window the lock is latched; a late strong arrival
        only corrupts (mid-frame stomp)."""
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX * 1000)
        sim.run_until(PLCP_S * 2)  # now in RX, not SYNC
        radio.signal_start(f2, RX * 20000)
        assert radio.lock_power_w == RX * 1000  # not captured
        assert radio.reception.drops[DROP_COLLISION] == 1  # f2
        radio.signal_end(f2.frame_id)
        radio.signal_end(f1.frame_id)
        # The stomp corrupted the latched lock.
        assert radio.listener.of("rx_end") == [("rx_end", f1.frame_id, False)]
        assert radio.reception.drops[DROP_COLLISION] == 2  # f2 + f1

    def test_sub_sensitivity_power_still_breaks_sync(self, sim, radio):
        """An undecodable arrival is pure interference — and interference
        can break a marginal sync."""
        f1, f2 = frame(src=1), frame(src=2)
        radio.signal_start(f1, RX)  # SINR vs noise plenty, but marginal lock
        radio.signal_start(f2, RX * 0.5)  # below sensitivity, adds power
        # f1's SINR = RX / (noise + RX/2) ~ 2 < 10: sync broken, back to IDLE.
        assert not radio.receiving
        assert radio.reception.drops[DROP_BELOW_SENSITIVITY] == 1
        assert radio.reception.drops[DROP_COLLISION] == 1

    def test_own_tx_aborts_lock(self, sim, radio):
        f1 = frame(src=1)
        radio.signal_start(f1, RX * 1000)
        assert radio.receiving
        radio.begin_tx(frame(src=0))
        assert not radio.receiving
        assert radio.reception.drops[DROP_CAPTURE_LOST] == 1
        assert radio.stats["rx_aborted_by_tx"] == 1

    def test_arrival_while_transmitting_is_deaf(self, sim, radio):
        radio.begin_tx(frame(src=0))
        f = frame(src=1)
        radio.signal_start(f, RX * 1000)
        assert not radio.receiving
        assert radio.reception.drops[DROP_COLLISION] == 1

    def test_drop_total_sums_reasons(self, sim, radio):
        radio.signal_start(frame(src=1), RX * 0.5)
        f = frame(src=2)
        radio.signal_start(f, RX * 1000)
        radio.begin_tx(frame(src=0))
        assert radio.reception.drop_total == 2


class TestOrderInvariance:
    """Decode outcomes of a same-instant arrival batch are order-invariant.

    The channel delivers trailing edges before leading edges at equal
    timestamps, but within a batch of leading edges the heap order is
    arbitrary scheduling detail.  Because the capture criterion equals the
    sync criterion and ``capture_threshold >= 1`` makes any winner strictly
    the strongest signal on air, *which frames decode* cannot depend on that
    order (drop *reasons* legitimately can: a displaced lock is
    ``capture_lost`` where the never-synced ordering says ``collision``).
    """

    @staticmethod
    def decoded(powers, order):
        sim = Simulator()
        radio = sinr_radio(sim)
        frames = [frame(src=i + 1) for i in range(len(powers))]
        for i in order:
            radio.signal_start(frames[i], powers[i])
        for i in order:
            radio.signal_end(frames[i].frame_id)
        src_of = {f.frame_id: f.src for f in frames}
        return {
            src_of[fid]
            for (_, fid, ok) in radio.listener.of("rx_end")
            if ok
        }

    @settings(max_examples=200, deadline=None)
    @given(
        exponents=st.lists(
            st.integers(min_value=-2, max_value=12), min_size=2, max_size=5
        ),
        data=st.data(),
    )
    def test_decode_set_ignores_edge_order(self, exponents, data):
        powers = [RX * (2.0**e) for e in exponents]
        baseline = self.decoded(powers, range(len(powers)))
        order = data.draw(st.permutations(range(len(powers))))
        assert self.decoded(powers, order) == baseline
        assert len(baseline) <= 1  # capture_threshold >= 1: one winner max
