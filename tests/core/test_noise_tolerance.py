"""Noise tolerance arithmetic and admission registry tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.noise_tolerance import (
    ActiveReceiverRegistry,
    noise_tolerance_w,
)


class TestToleranceFormula:
    def test_paper_formula(self):
        """N_t = P_r / C_p − P_n."""
        assert noise_tolerance_w(1e-8, 1e-10, 10.0) == pytest.approx(
            1e-9 - 1e-10
        )

    def test_clamped_at_zero_when_already_marginal(self):
        assert noise_tolerance_w(1e-9, 1e-9, 10.0) == 0.0

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            noise_tolerance_w(0.0, 1e-10, 10.0)
        with pytest.raises(ValueError):
            noise_tolerance_w(1e-9, -1.0, 10.0)
        with pytest.raises(ValueError):
            noise_tolerance_w(1e-9, 1e-10, 0.0)

    @given(
        st.floats(min_value=1e-12, max_value=1e-3),
        st.floats(min_value=0, max_value=1e-6),
    )
    def test_property_tolerance_nonnegative(self, signal, interference):
        assert noise_tolerance_w(signal, interference, 10.0) >= 0.0

    @given(st.floats(min_value=1e-12, max_value=1e-3))
    def test_property_consuming_full_tolerance_hits_capture_limit(self, signal):
        """If an interferer adds exactly N_t, SINR lands exactly at C_p."""
        cp = 10.0
        noise = 1e-13
        tol = noise_tolerance_w(signal, noise, cp)
        if tol > 0:
            assert signal / (noise + tol) == pytest.approx(cp, rel=1e-9)


class TestRegistry:
    def test_admissible_when_empty(self):
        reg = ActiveReceiverRegistry()
        assert reg.blocking_until(0.2818, now=0.0, margin_coefficient=0.7) is None

    def test_blocks_when_caused_noise_exceeds_margin(self):
        reg = ActiveReceiverRegistry()
        # Gain 1e-9: transmitting 0.28 W lands 2.8e-10 at the receiver.
        reg.update(5, tolerance_w=1e-10, expires=2.0, gain=1e-9)
        assert reg.blocking_until(0.2818, now=0.0, margin_coefficient=0.7) == 2.0

    def test_admits_within_margin(self):
        reg = ActiveReceiverRegistry()
        # Caused noise 2.8e-10 ≤ 0.7 × 1e-9.
        reg.update(5, tolerance_w=1e-9, expires=2.0, gain=1e-9)
        assert reg.blocking_until(0.2818, now=0.0, margin_coefficient=0.7) is None

    def test_margin_coefficient_bites(self):
        """A transmission admitted at coefficient 1.0 can be blocked at 0.7
        — the paper's fluctuation headroom."""
        reg = ActiveReceiverRegistry()
        reg.update(5, tolerance_w=3.5e-10, expires=2.0, gain=1e-9)
        # Caused: 2.82e-10.  1.0×tol = 3.5e-10 admits; 0.7×tol = 2.45e-10 blocks.
        assert reg.blocking_until(0.2818, now=0.0, margin_coefficient=1.0) is None
        assert reg.blocking_until(0.2818, now=0.0, margin_coefficient=0.7) == 2.0

    def test_zero_tolerance_blocks_everything(self):
        reg = ActiveReceiverRegistry()
        reg.update(5, tolerance_w=0.0, expires=2.0, gain=1e-15)
        assert reg.blocking_until(1e-3, now=0.0, margin_coefficient=0.7) == 2.0

    def test_expired_records_are_ignored_and_purged(self):
        reg = ActiveReceiverRegistry()
        reg.update(5, tolerance_w=0.0, expires=1.0, gain=1e-9)
        assert reg.blocking_until(0.2818, now=1.5, margin_coefficient=0.7) is None
        assert 5 not in reg

    def test_latest_blocking_expiry_wins(self):
        reg = ActiveReceiverRegistry()
        reg.update(5, tolerance_w=0.0, expires=2.0, gain=1e-9)
        reg.update(6, tolerance_w=0.0, expires=3.0, gain=1e-9)
        assert reg.blocking_until(0.2818, now=0.0, margin_coefficient=0.7) == 3.0

    def test_lower_power_can_pass_where_higher_blocks(self):
        """Power control creates admission: the whole point of the scheme."""
        reg = ActiveReceiverRegistry()
        reg.update(5, tolerance_w=1e-9, expires=2.0, gain=1e-8)
        # 281.8 mW causes 2.8e-9 > 0.7e-9 → blocked; 10.6 mW causes 1.06e-10 → ok.
        assert reg.blocking_until(0.2818, 0.0, 0.7) == 2.0
        assert reg.blocking_until(10.6e-3, 0.0, 0.7) is None

    def test_update_replaces_record(self):
        reg = ActiveReceiverRegistry()
        reg.update(5, tolerance_w=0.0, expires=2.0, gain=1e-9)
        reg.update(5, tolerance_w=1.0, expires=2.0, gain=1e-9)
        assert reg.blocking_until(0.2818, 0.0, 0.7) is None

    def test_drop(self):
        reg = ActiveReceiverRegistry()
        reg.update(5, tolerance_w=0.0, expires=2.0, gain=1e-9)
        reg.drop(5)
        assert reg.blocking_until(0.2818, 0.0, 0.7) is None

    def test_rejects_invalid(self):
        reg = ActiveReceiverRegistry()
        with pytest.raises(ValueError):
            reg.update(5, tolerance_w=1e-9, expires=1.0, gain=0.0)
        with pytest.raises(ValueError):
            reg.blocking_until(0.0, 0.0, 0.7)

    @given(
        st.floats(min_value=1e-6, max_value=0.3),
        st.floats(min_value=1e-12, max_value=1e-8),
        st.floats(min_value=1e-12, max_value=1e-6),
    )
    def test_property_admission_is_monotone_in_power(self, power, gain, tol):
        """If power P is blocked, any P' > P is blocked too."""
        reg = ActiveReceiverRegistry()
        reg.update(1, tolerance_w=tol, expires=1.0, gain=gain)
        blocked_low = reg.blocking_until(power, 0.0, 0.7) is not None
        blocked_high = reg.blocking_until(power * 2, 0.0, 0.7) is not None
        assert not (blocked_low and not blocked_high)
