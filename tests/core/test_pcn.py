"""PCN frame encoding tests (paper Figure 7)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pcn import (
    PCN_SIZE_BYTES,
    decode_tolerance,
    encode_tolerance,
)


class TestFrameSize:
    def test_48_bits(self):
        """Fig. 7: preamble 16 + node id 8 + tolerance 16 + FEC 8 = 48 bits."""
        assert PCN_SIZE_BYTES == 6


class TestEncoding:
    def test_zero_tolerance_encodes_as_zero(self):
        assert encode_tolerance(0.0) == 0

    def test_negative_tolerance_encodes_as_zero(self):
        assert encode_tolerance(-1e-12) == 0

    def test_zero_code_decodes_to_zero(self):
        assert decode_tolerance(0) == 0.0

    def test_code_fits_sixteen_bits(self):
        assert 0 <= encode_tolerance(1e6) <= 0xFFFF
        assert 0 <= encode_tolerance(1e-30) <= 0xFFFF

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decode_tolerance(-1)
        with pytest.raises(ValueError):
            decode_tolerance(0x10000)

    def test_quantisation_error_is_small(self):
        value = 3.7e-11
        decoded = decode_tolerance(encode_tolerance(value))
        assert decoded == pytest.approx(value, rel=0.005)

    @given(st.floats(min_value=1e-16, max_value=1e-3))
    def test_property_decoded_never_exceeds_true_tolerance(self, value):
        """Rounding must be conservative: an overstated tolerance would let
        a neighbour corrupt the reception it is meant to protect.  The 1e-6 dB
        float-boundary guard bounds any overshoot at ~2.3e-7 relative."""
        decoded = decode_tolerance(encode_tolerance(value))
        assert decoded <= value * (1 + 1e-6)

    @given(st.floats(min_value=1e-16, max_value=1e-3))
    def test_property_roundtrip_within_one_step(self, value):
        decoded = decode_tolerance(encode_tolerance(value))
        # 0.01 dB step → worst-case ~0.24 % undershoot.
        assert decoded >= value * 0.995

    @given(st.integers(min_value=1, max_value=0xFFFF))
    def test_property_encode_decode_encode_stable(self, code):
        assert encode_tolerance(decode_tolerance(code)) == code
