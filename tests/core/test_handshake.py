"""Sent-table / received-table implicit-ACK tests (paper Step 4/6)."""

from __future__ import annotations

from repro.core.handshake import ReceivedTable, SentTable


class TestSentTable:
    def test_confirm_with_nothing_outstanding(self):
        t = SentTable()
        assert t.confirm(5, 1, 10) is True  # nothing to lose

    def test_record_then_matching_confirm(self):
        t = SentTable()
        t.record(5, session_id=1, session_seq=10, frame_copy="copy")
        assert t.confirm(5, 1, 10) is True

    def test_mismatched_seq_demands_retransmit(self):
        t = SentTable()
        t.record(5, 1, 10, "copy")
        assert t.confirm(5, 1, 9) is False

    def test_mismatched_session_demands_retransmit(self):
        t = SentTable()
        t.record(5, 1, 10, "copy")
        assert t.confirm(5, 2, 10) is False

    def test_null_report_with_outstanding_data_is_a_loss(self):
        """Responder reports nothing received but we sent something: lost."""
        t = SentTable()
        t.record(5, 1, 10, "copy")
        assert t.confirm(5, None, None) is False

    def test_null_report_with_empty_table_is_fine(self):
        t = SentTable()
        assert t.confirm(5, None, None) is True

    def test_copy_retained_for_retransmission(self):
        t = SentTable()
        t.record(5, 1, 10, "the-frame")
        assert t.get(5).frame_copy == "the-frame"

    def test_newer_send_replaces_record(self):
        t = SentTable()
        t.record(5, 1, 10, "old")
        t.record(5, 1, 11, "new")
        assert t.get(5).frame_copy == "new"
        assert t.confirm(5, 1, 10) is False

    def test_reset_drops_record_and_copy(self):
        """Paper: RERR from an upstream terminal deletes the retained copy."""
        t = SentTable()
        t.record(5, 1, 10, "copy")
        t.reset(5)
        assert t.get(5) is None
        assert t.confirm(5, None, None) is True

    def test_tables_are_per_neighbour(self):
        t = SentTable()
        t.record(5, 1, 10, "a")
        t.record(6, 1, 20, "b")
        assert t.confirm(5, 1, 10) is True
        assert t.confirm(6, 1, 10) is False


class TestReceivedTable:
    def test_last_from_unknown_is_none(self):
        assert ReceivedTable().last_from(3) is None

    def test_record_then_report(self):
        t = ReceivedTable()
        t.record(3, 1, 7)
        assert t.last_from(3) == (1, 7)

    def test_duplicate_detection(self):
        t = ReceivedTable()
        t.record(3, 1, 7)
        assert t.is_duplicate(3, 1, 7) is True
        assert t.is_duplicate(3, 1, 8) is False
        assert t.is_duplicate(4, 1, 7) is False

    def test_interleaved_sessions_track_last_only(self):
        """The table holds one slot per neighbour (paper's design)."""
        t = ReceivedTable()
        t.record(3, 1, 5)
        t.record(3, 2, 9)
        assert t.last_from(3) == (2, 9)
        # The older session's packet no longer reads as a duplicate.
        assert t.is_duplicate(3, 1, 5) is False

    def test_reset(self):
        """Paper: RREP sent / RERR received resets the neighbour's entry."""
        t = ReceivedTable()
        t.record(3, 1, 7)
        t.reset(3)
        assert t.last_from(3) is None

    def test_reset_unknown_is_safe(self):
        ReceivedTable().reset(99)


class TestLossRecoveryProtocol:
    """End-to-end table choreography for one loss (paper Step 4)."""

    def test_loss_and_recovery_sequence(self):
        sender, receiver = SentTable(), ReceivedTable()

        # Packet 1 delivered.
        sender.record(2, session_id=9, session_seq=1, frame_copy="p1")
        receiver.record(1, session_id=9, session_seq=1)

        # Packet 2 lost in flight: sender records, receiver never sees it.
        sender.record(2, 9, 2, "p2")

        # Next exchange: receiver's CTS reports (9, 1); sender detects loss.
        report = receiver.last_from(1)
        assert sender.confirm(2, *report) is False
        assert sender.get(2).frame_copy == "p2"

        # Retransmission arrives; receiver updates; next CTS confirms.
        receiver.record(1, 9, 2)
        assert sender.confirm(2, *receiver.last_from(1)) is True
