"""Behavioural PCMAC tests over real radios and both channels."""

from __future__ import annotations

import pytest

from repro.config import PcmacConfig
from repro.core.pcmac import PcmacMac
from repro.mac.frames import FrameType
from tests.mac.harness import FakePacket, MacHarness


def pcmac_harness(positions, **kwargs) -> MacHarness:
    return MacHarness(positions, mac_cls=PcmacMac, **kwargs)


class TestThreeWayHandshake:
    def test_data_packet_uses_no_ack(self, tracer):
        h = pcmac_harness([(0, 0), (100, 0)], tracer=tracer)
        h.send(0, 1, FakePacket(kind="data"))
        h.run(0.1)
        kinds = [r.get("kind") for r in tracer.query("mac.handshake")]
        assert kinds == ["RTS", "CTS", "DATA"]
        assert h.nodes[1].mac.stats.ack_sent == 0

    def test_routing_packet_keeps_four_way(self, tracer):
        h = pcmac_harness([(0, 0), (100, 0)], tracer=tracer)
        h.send(0, 1, FakePacket(kind="aodv"))
        h.run(0.1)
        kinds = [r.get("kind") for r in tracer.query("mac.handshake")]
        assert kinds == ["RTS", "CTS", "DATA", "ACK"]

    def test_three_way_can_be_disabled(self, tracer):
        h = pcmac_harness(
            [(0, 0), (100, 0)],
            pcmac_cfg=PcmacConfig(three_way_data=False),
            tracer=tracer,
        )
        h.send(0, 1, FakePacket(kind="data"))
        h.run(0.1)
        kinds = [r.get("kind") for r in tracer.query("mac.handshake")]
        assert kinds == ["RTS", "CTS", "DATA", "ACK"]

    def test_delivery_and_tables(self):
        h = pcmac_harness([(0, 0), (100, 0)])
        pkt = FakePacket(flow_id=3, seq=41, kind="data")
        h.send(0, 1, pkt)
        h.run(0.1)
        assert h.nodes[1].delivered == [(pkt, 0)]
        assert h.nodes[0].mac.sent_table.get(1).session_seq == 41
        assert h.nodes[1].mac.received_table.last_from(0) == (3, 41)

    def test_stream_of_packets_confirms_via_cts(self):
        h = pcmac_harness([(0, 0), (100, 0)])
        for k in range(5):
            h.send(0, 1, FakePacket(flow_id=3, seq=k, kind="data"))
        h.run(1.0)
        assert [p.seq for p, _ in h.nodes[1].delivered] == list(range(5))
        # No losses → no implicit retransmissions.
        assert h.nodes[0].mac.stats.implicit_retransmits == 0


class TestPowerSelection:
    def test_close_link_uses_low_power_after_learning(self, tracer):
        h = pcmac_harness([(0, 0), (50, 0)], tracer=tracer)
        h.send(0, 1, FakePacket(seq=0, kind="data"))
        h.run(0.5)
        h.send(0, 1, FakePacket(seq=1, kind="data"))
        h.run(0.5)
        powers = [
            r.get("power_w")
            for r in tracer.query("mac.handshake", node=0)
            if r.get("kind") == "RTS"
        ]
        # First RTS cold (max power); second informed by history.
        assert powers[0] == pytest.approx(0.2818)
        assert powers[1] < 0.2818 / 10

    def test_cold_history_falls_back_to_max(self):
        h = pcmac_harness([(0, 0), (100, 0)])
        assert h.nodes[0].mac.power_for_rts(1) == pytest.approx(0.2818)

    def test_rts_failure_escalates_one_class(self):
        h = pcmac_harness([(0, 0), (100, 0)])
        mac = h.nodes[0].mac
        # Teach a stale, too-low estimate, then make the link unreachable by
        # pointing at a node that does not exist at that address.
        mac.history.update(9, needed_w=1e-3, gain=1e-6, now=0.0)
        h.send(0, 9, FakePacket(kind="data"))
        h.run(2.0)
        assert mac.stats.power_escalations >= 1
        # Escalation climbed toward (and reached) the maximum level.
        assert mac.stats.cts_timeouts >= mac.stats.power_escalations


class TestControlChannel:
    def test_receiver_announces_tolerance_during_data(self):
        h = pcmac_harness([(0, 0), (100, 0), (200, 0)])
        h.send(0, 1, FakePacket(kind="data"))
        h.run(0.1)
        assert h.nodes[1].mac.control.stats["pcn_sent"] == 1
        # The third node heard the PCN and registered node 1 as receiving.
        assert h.nodes[2].mac.control.stats["pcn_heard"] == 1

    def test_pcn_not_sent_for_routing_unicast(self):
        h = pcmac_harness([(0, 0), (100, 0)])
        h.send(0, 1, FakePacket(kind="aodv"))
        h.run(0.1)
        assert h.nodes[1].mac.control.stats["pcn_sent"] == 0

    def test_registry_expires_with_reception(self):
        h = pcmac_harness([(0, 0), (100, 0), (200, 0)])
        h.send(0, 1, FakePacket(kind="data"))
        h.run(0.5)  # well past the DATA end
        reg = h.nodes[2].mac.control.registry
        assert reg.active_records(h.sim.now) == []

    def test_pcn_repeats(self):
        h = pcmac_harness(
            [(0, 0), (100, 0)], pcmac_cfg=PcmacConfig(pcn_repeats=3)
        )
        h.send(0, 1, FakePacket(kind="data"))
        h.run(0.1)
        assert h.nodes[1].mac.control.stats["pcn_sent"] == 3


class TestAdmissionControl:
    def test_contender_defers_for_protected_reception(self):
        """The paper's core scenario: C must not corrupt B's ongoing
        reception.

        Geometry: A at 0 m sends to B at 100 m with ~15 mW (sensing radius
        ~264 m).  C sits at 310 m — *outside* A's shrunken sensing zone, so
        physical carrier sense cannot protect B from it (the asymmetric-link
        hole of Figure 6).  C's packet for D (240 m away) needs maximum
        power, which would land ~7e-10 W on B — far beyond B's tolerance.
        Only B's PCN on the control channel (decodable to 250 m) can make C
        defer, and it must.

        The DATA start time depends on seeded backoff draws, so a probe run
        first locates B's PCN broadcast; the real run then injects C's packet
        just after it, squarely inside B's reception window.
        """
        positions = [(0, 0), (100, 0), (310, 0), (550, 0)]
        probe = pcmac_harness(positions)
        probe.tracer.enable("pcmac.pcn")
        probe.send(0, 1, FakePacket(kind="data"))
        probe.run(0.5)
        pcn_times = [r.time for r in probe.tracer.query("pcmac.pcn", node=1)]
        assert pcn_times, "probe run produced no PCN"

        h = pcmac_harness(positions)
        h.send(0, 1, FakePacket(kind="data"))
        h.sim.schedule(
            pcn_times[0] + 0.0002, lambda: h.send(2, 3, FakePacket(kind="data"))
        )
        h.run(0.5)
        assert h.nodes[2].mac.stats.admission_blocks >= 1
        # Both deliveries still complete (C transmits after the deferral).
        assert len(h.nodes[1].delivered) == 1
        assert len(h.nodes[3].delivered) == 1

    def test_quiet_network_admits_immediately(self):
        h = pcmac_harness([(0, 0), (100, 0)])
        h.send(0, 1, FakePacket(kind="data"))
        h.run(0.1)
        assert h.nodes[0].mac.stats.admission_blocks == 0


class TestRouteEventHooks:
    def test_rrep_sent_resets_received_table(self):
        h = pcmac_harness([(0, 0), (100, 0)])
        mac = h.nodes[0].mac
        mac.received_table.record(1, 3, 7)
        mac.on_route_event("rrep_sent", 1)
        assert mac.received_table.last_from(1) is None

    def test_rerr_received_resets_both_tables(self):
        h = pcmac_harness([(0, 0), (100, 0)])
        mac = h.nodes[0].mac
        mac.received_table.record(1, 3, 7)
        mac.sent_table.record(1, 3, 8, "copy")
        mac.on_route_event("rerr_received", 1)
        assert mac.received_table.last_from(1) is None
        assert mac.sent_table.get(1) is None

    def test_unknown_event_ignored(self):
        h = pcmac_harness([(0, 0), (100, 0)])
        h.nodes[0].mac.on_route_event("something_else", 1)
