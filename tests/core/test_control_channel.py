"""Control channel agent tests: PCN broadcast, listening, collisions."""

from __future__ import annotations

import pytest

from repro.config import PcmacConfig, PhyConfig
from repro.core.control_channel import ControlChannelAgent
from repro.phy.channel import Channel
from repro.phy.propagation import TwoRayGround
from repro.sim.kernel import Simulator
from tests.conftest import make_radio


def build_agents(positions, pcmac_cfg=None):
    sim = Simulator()
    phy_cfg = PhyConfig()
    chan = Channel(
        sim, TwoRayGround(), interference_floor_w=phy_cfg.interference_floor_w,
        name="control",
    )
    agents = []
    for i, pos in enumerate(positions):
        radio = make_radio(sim, i, pos, channel_name="control")
        chan.attach(radio)
        agents.append(
            ControlChannelAgent(
                sim, i, radio, chan,
                pcmac_cfg=pcmac_cfg or PcmacConfig(),
                phy_cfg=phy_cfg,
            )
        )
    return sim, agents


class TestAnnouncement:
    def test_neighbours_register_the_receiver(self):
        sim, agents = build_agents([(0, 0), (100, 0), (200, 0)])
        agents[0].announce_reception(1e-10, reception_end=0.01)
        sim.run_until(0.005)
        for other in agents[1:]:
            assert 0 in other.registry
        rec = agents[1].registry.active_records(sim.now)[0]
        assert rec.expires == 0.01
        # Quantisation through the 16-bit field is conservative.
        assert rec.tolerance_w <= 1e-10
        assert rec.tolerance_w >= 0.99e-10

    def test_out_of_decode_range_neighbour_misses_pcn(self):
        sim, agents = build_agents([(0, 0), (400, 0)])
        agents[0].announce_reception(1e-10, reception_end=0.01)
        sim.run_until(0.005)
        assert 0 not in agents[1].registry

    def test_gain_estimate_from_pcn_power(self):
        sim, agents = build_agents([(0, 0), (100, 0)])
        agents[0].announce_reception(1e-10, reception_end=0.01)
        sim.run_until(0.005)
        rec = agents[1].registry.active_records(sim.now)[0]
        expected_gain = TwoRayGround().gain_at(100.0)
        assert rec.gain == pytest.approx(expected_gain, rel=1e-6)

    def test_own_pcn_not_registered(self):
        sim, agents = build_agents([(0, 0), (100, 0)])
        agents[0].announce_reception(1e-10, reception_end=0.01)
        sim.run_until(0.005)
        assert 0 not in agents[0].registry

    def test_repeats_schedule_additional_pcns(self):
        sim, agents = build_agents(
            [(0, 0), (100, 0)], pcmac_cfg=PcmacConfig(pcn_repeats=4)
        )
        agents[0].announce_reception(1e-10, reception_end=0.01)
        sim.run_until(0.02)
        assert agents[0].stats["pcn_sent"] == 4
        assert agents[1].stats["pcn_heard"] == 4

    def test_repeats_stop_at_reception_end(self):
        sim, agents = build_agents(
            [(0, 0), (100, 0)], pcmac_cfg=PcmacConfig(pcn_repeats=3)
        )
        agents[0].announce_reception(1e-10, reception_end=0.0001)
        sim.run_until(0.02)
        # Later repeats would land after the reception: suppressed.
        assert agents[0].stats["pcn_sent"] <= 2


class TestCollisions:
    def test_simultaneous_pcns_collide_at_a_middle_listener(self):
        """Two receivers announcing at the same instant: the listener between
        them decodes neither (assumption 3: collisions exist, kept rare by
        the tiny frame)."""
        sim, agents = build_agents([(0, 0), (125, 0), (250, 0)])
        agents[0].announce_reception(1e-10, reception_end=0.01)
        agents[2].announce_reception(2e-10, reception_end=0.01)
        sim.run_until(0.005)
        assert len(agents[1].registry) == 0
        assert agents[1].stats["pcn_lost"] >= 1

    def test_skip_when_already_transmitting(self):
        sim, agents = build_agents([(0, 0), (100, 0)])
        agents[0].announce_reception(1e-10, reception_end=0.01)
        agents[0].announce_reception(1e-10, reception_end=0.01)  # same instant
        assert agents[0].stats["pcn_skipped"] == 1
