"""Unit tests of PCMAC's power formulas (paper Step 3) — the load-bearing
arithmetic behind CTS and required-DATA power selection."""

from __future__ import annotations

import pytest

from repro.core.pcmac import PcmacMac
from repro.mac.frames import FrameType, MacFrame
from tests.mac.harness import MacHarness

RX = 3.652e-10
CP = 10.0
NOISE = 1e-13


def pcmac(positions=((0, 0), (100, 0))) -> PcmacMac:
    h = MacHarness(list(positions), mac_cls=PcmacMac)
    return h.nodes[0].mac


def rts(power_w: float, noise_at_sender: float | None) -> MacFrame:
    return MacFrame(
        ftype=FrameType.RTS,
        src=1,
        dst=0,
        size_bytes=20,
        tx_power_w=power_w,
        noise_at_sender_w=noise_at_sender,
    )


class TestCtsPower:
    def test_decode_bound_dominates_when_sender_is_quiet(self):
        """With N_A at the noise floor, the capture term C_p·N_A/G is tiny
        and the decode bound p_th·margin/G picks the level."""
        mac = pcmac()
        # Observed gain: RTS at 281.8 mW received at 2.818e-9 → G = 1e-8.
        frame = rts(0.2818, NOISE)
        power = mac.power_for_cts(frame, rx_power_w=2.818e-9)
        needed = RX * mac.power_cfg.decode_margin / 1e-8
        assert power == mac.levels.select(needed)

    def test_capture_bound_dominates_under_sender_noise(self):
        """A noisy sender (large N_A in the RTS) forces a louder CTS:
        P = C_p · N_A / G (paper Step 3)."""
        mac = pcmac()
        gain = 1e-8
        loud_noise = 1e-9  # interference at the RTS sender
        frame = rts(0.2818, loud_noise)
        power = mac.power_for_cts(frame, rx_power_w=0.2818 * gain)
        expected = mac.levels.select(CP * loud_noise / gain)
        assert power == expected
        # Sanity: this is louder than the decode bound alone would be.
        assert power > mac.levels.select(RX * mac.power_cfg.decode_margin / gain)

    def test_missing_noise_field_falls_back_to_decode_bound(self):
        mac = pcmac()
        frame = rts(0.2818, None)
        power = mac.power_for_cts(frame, rx_power_w=2.818e-9)
        assert power == mac.levels.select(RX * mac.power_cfg.decode_margin / 1e-8)

    def test_cts_power_clamps_at_max_level(self):
        mac = pcmac()
        # A terrible link: gain so low even max power misses the threshold.
        frame = rts(0.2818, NOISE)
        power = mac.power_for_cts(frame, rx_power_w=RX * 0.5)
        assert power == mac.levels.max_w


class TestRequiredDataPower:
    def test_decorate_cts_sets_required_power(self):
        mac = pcmac()
        cts = MacFrame(
            ftype=FrameType.CTS, src=0, dst=1, size_bytes=14, tx_power_w=0.1
        )
        frame = rts(0.2818, NOISE)
        mac.decorate_cts(cts, frame, rx_power_w=2.818e-9)
        assert cts.required_data_power_w is not None
        # Quiet receiver: the decode bound decides, same as the CTS power.
        assert cts.required_data_power_w == mac.levels.select(
            RX * mac.power_cfg.decode_margin / 1e-8
        )

    def test_data_power_obeys_cts_requirement(self):
        mac = pcmac()
        cts = MacFrame(
            ftype=FrameType.CTS,
            src=1,
            dst=0,
            size_bytes=14,
            tx_power_w=0.1,
            required_data_power_w=36.6e-3,
        )
        assert mac.power_for_data(1, cts) == pytest.approx(36.6e-3)

    def test_data_power_without_cts_uses_history(self):
        mac = pcmac()
        mac.history.update(1, needed_w=5e-3, gain=1e-7, now=0.0)
        assert mac.power_for_data(1, None) == pytest.approx(7.25e-3)

    def test_implied_sinr_at_receiver_meets_capture(self):
        """End-to-end check of the formula's purpose: DATA sent at the
        required power achieves SINR ≥ C_p against the noise level the
        responder measured."""
        mac = pcmac()
        gain = 1e-8
        receiver_noise = 5e-10
        # Emulate decorate_cts's computation with a noisy receiver.
        needed = max(
            RX * mac.power_cfg.decode_margin / gain,
            CP * receiver_noise / gain,
        )
        chosen = mac.levels.select(needed)
        if chosen >= needed:  # not clamped
            sinr = chosen * gain / receiver_noise
            assert sinr >= CP
