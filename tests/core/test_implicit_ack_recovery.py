"""End-to-end test of PCMAC's implicit-ACK loss recovery (paper Step 4).

A jammer corrupts exactly one DATA frame in an A→B packet stream.  With no
per-DATA ACK, A learns about the loss only from the *next* exchange's CTS
(whose last-received report won't match A's sent-table) and must retransmit
the retained copy before proceeding.  The stream must arrive complete.
"""

from __future__ import annotations

import pytest

from repro.core.pcmac import PcmacMac
from repro.phy.frame import PhyFrame
from repro.phy.noise import ConstantNoise
from repro.phy.radio import Radio
from tests.mac.harness import FakePacket, MacHarness

POSITIONS = [(0.0, 0.0), (100.0, 0.0)]


def find_data_times(n_packets: int) -> list[float]:
    """Probe run: when does each DATA transmission start?"""
    h = MacHarness(POSITIONS, mac_cls=PcmacMac)
    h.tracer.enable("mac.handshake")
    for k in range(n_packets):
        h.send(0, 1, FakePacket(flow_id=1, seq=k + 1, kind="data"))
    h.run(2.0)
    return [
        r.time
        for r in h.tracer.query("mac.handshake", node=0)
        if r.get("kind") == "DATA"
    ]


def attach_jammer(h: MacHarness, position) -> Radio:
    """A bare radio on the data channel that can blast raw energy."""
    radio = Radio(
        h.sim,
        99,
        lambda: position,
        rx_threshold_w=h.phy_cfg.rx_threshold_w,
        cs_threshold_w=h.phy_cfg.cs_threshold_w,
        capture_threshold=h.phy_cfg.capture_threshold,
        noise=ConstantNoise(h.phy_cfg.noise_floor_w),
    )
    h.channel.attach(radio)
    return radio


def jam(h: MacHarness, radio: Radio) -> None:
    frame = PhyFrame(
        payload=None,
        size_bytes=256,
        bitrate_bps=2e6,
        plcp_s=0.0,
        tx_power_w=0.2818,
        src=99,
    )
    h.channel.transmit(radio, frame)


class TestImplicitAckRecovery:
    def test_single_data_loss_is_repaired_by_next_cts(self):
        data_times = find_data_times(3)
        assert len(data_times) == 3

        h = MacHarness(POSITIONS, mac_cls=PcmacMac)
        jammer = attach_jammer(h, (130.0, 0.0))  # near B, hidden from A-ish
        for k in range(3):
            h.send(0, 1, FakePacket(flow_id=1, seq=k + 1, kind="data"))
        # Blast B midway through the second DATA frame.
        h.sim.schedule(data_times[1] + 0.0008, lambda: jam(h, jammer))
        h.run(2.0)

        mac_a = h.nodes[0].mac
        delivered = [p.seq for p, _ in h.nodes[1].delivered]
        assert mac_a.stats.implicit_retransmits == 1
        # Packet 2 was lost once, repaired, and nothing was delivered twice.
        assert sorted(delivered) == [1, 2, 3]
        assert delivered.count(2) == 1

    def test_loss_without_followup_traffic_stays_lost(self):
        """The tail-packet caveat: the last DATA of a session has no
        follow-up CTS to repair it (documented protocol property)."""
        data_times = find_data_times(1)
        h = MacHarness(POSITIONS, mac_cls=PcmacMac)
        jammer = attach_jammer(h, (130.0, 0.0))
        h.send(0, 1, FakePacket(flow_id=1, seq=1, kind="data"))
        h.sim.schedule(data_times[0] + 0.0008, lambda: jam(h, jammer))
        h.run(2.0)
        assert h.nodes[1].delivered == []
        assert h.nodes[0].mac.stats.implicit_retransmits == 0

    def test_recovery_resumes_after_repair(self):
        """After the retransmission, new packets flow normally again."""
        data_times = find_data_times(5)
        h = MacHarness(POSITIONS, mac_cls=PcmacMac)
        jammer = attach_jammer(h, (130.0, 0.0))
        for k in range(5):
            h.send(0, 1, FakePacket(flow_id=1, seq=k + 1, kind="data"))
        h.sim.schedule(data_times[1] + 0.0008, lambda: jam(h, jammer))
        h.run(3.0)
        delivered = [p.seq for p, _ in h.nodes[1].delivered]
        assert sorted(delivered) == [1, 2, 3, 4, 5]
