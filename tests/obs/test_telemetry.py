"""Live telemetry: sliced execution is bit-identical, heartbeats flow."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.campaign.runner import run_specs
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore
from repro.config import ScenarioConfig
from repro.obs.telemetry import (
    RunProgress,
    peak_rss_kb,
    run_with_heartbeat,
    runtime_stats,
)
from repro.scenariospec import ScenarioSpec


def small_spec(seed: int = 3) -> RunSpec:
    return RunSpec(
        scenario=ScenarioSpec(
            cfg=ScenarioConfig(node_count=8, duration_s=5.0, seed=seed),
            mac="basic",
        )
    )


def strip_wallclock(result):
    return replace(result, wallclock_s=0.0)


class TestRunWithHeartbeat:
    def test_sliced_run_is_bit_identical(self):
        spec = small_spec()
        plain = spec.run()
        beats: list[RunProgress] = []
        sliced, runtime = run_with_heartbeat(spec, beats.append, slices=7)
        assert strip_wallclock(sliced) == strip_wallclock(plain)
        assert sliced.events_executed == plain.events_executed
        assert runtime["events"] == plain.events_executed

    def test_heartbeat_stream_shape(self):
        spec = small_spec()
        beats: list[RunProgress] = []
        run_with_heartbeat(spec, beats.append, slices=4)
        assert len(beats) == 5  # one per slice + the final done beat
        assert [b.done for b in beats] == [False] * 4 + [True]
        assert all(b.key == spec.key() for b in beats)
        assert all(b.label == spec.label() for b in beats)
        # Sim time advances monotonically to the horizon.
        times = [b.sim_time_s for b in beats]
        assert times == sorted(times)
        assert beats[-1].sim_time_s == 5.0
        # Event counts are cumulative and end at the true total.
        events = [b.events for b in beats]
        assert events == sorted(events)

    def test_slices_must_be_positive(self):
        with pytest.raises(ValueError, match="slices"):
            run_with_heartbeat(small_spec(), lambda p: None, slices=0)

    def test_runtime_stats_shape(self):
        result = small_spec().run()
        stats = runtime_stats(result)
        assert set(stats) == {"wall_s", "events", "events_per_sec", "peak_rss_kb"}
        assert stats["events"] == result.events_executed
        assert stats["peak_rss_kb"] == peak_rss_kb() > 0


class TestRunProgress:
    def mk(self, **over) -> RunProgress:
        base = dict(
            key="k", label="basic@80kbps/seed1", sim_time_s=2.0,
            duration_s=8.0, events=1000, wall_s=0.5, peak_rss_kb=65536,
        )
        base.update(over)
        return RunProgress(**base)

    def test_rates_and_eta(self):
        p = self.mk()
        assert p.events_per_sec == pytest.approx(2000.0)
        assert p.sim_rate == pytest.approx(4.0)
        assert p.eta_s == pytest.approx(1.5)  # 6 sim-s left at 4 sim-s/wall-s

    def test_zero_wall_is_safe(self):
        p = self.mk(wall_s=0.0)
        assert p.events_per_sec == 0.0
        assert p.sim_rate == 0.0
        assert p.eta_s == 0.0

    def test_line_renders_running_and_done(self):
        running = self.mk().line()
        assert "t=2.0/8s" in running and "ev/s" in running
        done = self.mk(done=True, events=5000, wall_s=1.0).line()
        assert "done" in done and "5,000 ev" in done


class TestRunnerTelemetry:
    def test_serial_runner_streams_and_persists_runtime(self, tmp_path):
        specs = [small_spec(1), small_spec(2)]
        beats: list[RunProgress] = []
        store = ResultStore(tmp_path)
        report = run_specs(
            specs, store=store, telemetry=beats.append, slices=3
        )
        assert report.executed == 2
        assert len(beats) == 2 * 4  # (3 slices + done) per cell
        for spec in specs:
            stats = store.runtime_stats(spec.key())
            assert stats["events"] == report.results[spec.key()].events_executed

    def test_pooled_runner_matches_serial_results(self, tmp_path):
        specs = [small_spec(1), small_spec(2), small_spec(3)]
        beats: list[RunProgress] = []
        store = ResultStore(tmp_path / "live")
        live = run_specs(
            specs, jobs=2, store=store, telemetry=beats.append, slices=3
        )
        plain = run_specs(specs)
        for spec in specs:
            key = spec.key()
            assert strip_wallclock(live.results[key]) == (
                strip_wallclock(plain.results[key])
            )
        # Every cell heartbeated across the process boundary.
        assert {b.key for b in beats} == {s.key() for s in specs}
        assert sum(1 for b in beats if b.done) == 3

    def test_cached_cells_emit_no_heartbeats(self, tmp_path):
        spec = small_spec(1)
        store = ResultStore(tmp_path)
        run_specs([spec], store=store)
        beats: list[RunProgress] = []
        report = run_specs([spec], store=store, telemetry=beats.append)
        assert report.cached == 1 and report.executed == 0
        assert beats == []
