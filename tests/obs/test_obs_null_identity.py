"""Null observability must be invisible; recording must be passive.

Acceptance guards for the flight recorder's core contract:

* default spec (no observability slot) and explicit ``observability: null``
  produce bit-identical :class:`ExperimentResult`s (wallclock aside),
  including ``events_executed``;
* a run with trace recording on executes the *exact same event count* and
  identical metrics — recording observes dispatch, it never schedules;
* probes add exactly the arithmetic number of sampler ticks and change no
  metric; profiling on top of probes adds nothing further.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import ScenarioConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec


def small_cfg(**overrides) -> ScenarioConfig:
    defaults = dict(node_count=10, duration_s=5.0, seed=3)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def strip_wallclock(result):
    """Zero the only legitimately nondeterministic field."""
    return replace(result, wallclock_s=0.0)


class TestNullObservabilityIdentity:
    @pytest.mark.parametrize("protocol", ["basic", "pcmac"])
    def test_default_equals_explicit_null(self, protocol):
        default = ScenarioSpec(cfg=small_cfg(), mac=protocol).run()
        explicit = ScenarioSpec(
            cfg=small_cfg(), mac=protocol, observability=ComponentSpec("null")
        ).run()
        assert default.timeseries is None and default.profile is None
        assert explicit.timeseries is None and explicit.profile is None
        assert strip_wallclock(default) == strip_wallclock(explicit)
        assert default.events_executed == explicit.events_executed

    @pytest.mark.parametrize("protocol", ["basic", "pcmac"])
    def test_trace_recording_is_passive(self, protocol):
        plain = ScenarioSpec(cfg=small_cfg(), mac=protocol).run()
        spec = ScenarioSpec(
            cfg=small_cfg(),
            mac=protocol,
            observability=ComponentSpec(
                "trace", categories=("app.tx", "app.rx", "mac.handshake")
            ),
        )
        net = spec.build()
        traced = net.run()
        # Records were actually collected...
        assert net.tracer.records
        assert net.tracer.count("app.tx") > 0
        # ...yet the run is bit-identical: recording never schedules.
        assert traced.events_executed == plain.events_executed
        assert strip_wallclock(traced) == strip_wallclock(plain)

    def test_probes_add_exactly_the_sampler_ticks(self):
        cfg = small_cfg()
        plain = ScenarioSpec(cfg=cfg, mac="basic").run()
        probed = ScenarioSpec(
            cfg=cfg, mac="basic",
            observability=ComponentSpec("probes", interval_s=1.0),
        ).run()
        expected_ticks = int(cfg.duration_s // 1.0) + 1  # t=0 included
        assert probed.events_executed == plain.events_executed + expected_ticks
        assert probed.timeseries is not None
        assert probed.timeseries.samples == expected_ticks
        # Sampling is read-only: every metric besides the new payloads and
        # the tick count matches the unprobed run exactly.
        comparable = replace(
            strip_wallclock(probed),
            events_executed=plain.events_executed,
            timeseries=None,
        )
        assert comparable == strip_wallclock(plain)

    def test_profiling_adds_no_events_over_probes(self):
        cfg = small_cfg()
        probed = ScenarioSpec(
            cfg=cfg, mac="basic",
            observability=ComponentSpec("probes", interval_s=1.0),
        ).run()
        flight = ScenarioSpec(
            cfg=cfg, mac="basic",
            observability=ComponentSpec("flight", interval_s=1.0),
        ).run()
        assert flight.profile is not None
        assert flight.events_executed == probed.events_executed
        assert flight.profile.total_events == flight.events_executed
        comparable = replace(strip_wallclock(flight), profile=None)
        assert comparable == strip_wallclock(probed)

    def test_mobile_scenario_identity(self):
        cfg = small_cfg()
        plain = ScenarioSpec(cfg=cfg, mac="basic", mobility="waypoint").run()
        traced = ScenarioSpec(
            cfg=cfg, mac="basic", mobility="waypoint",
            observability=ComponentSpec("trace", categories=("phy.tx",)),
        ).run()
        assert traced.events_executed == plain.events_executed


class TestObservabilityInSpecKey:
    def test_probes_change_the_content_key(self):
        # A probed scenario dispatches a different schedule — it must be a
        # different cell in the campaign store.
        base = ScenarioSpec(cfg=small_cfg(), mac="basic")
        probed = replace(
            base, observability=ComponentSpec("probes", interval_s=1.0)
        )
        assert base.key() != probed.key()

    def test_null_is_the_default_slot(self):
        spec = ScenarioSpec(cfg=small_cfg(), mac="basic")
        assert spec.observability.name == "null"
