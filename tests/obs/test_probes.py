"""Time-series probes: sampling cadence, gauge semantics, store round trip."""

from __future__ import annotations

import json

import pytest

from repro.campaign.store import result_from_dict, result_to_dict
from repro.config import ScenarioConfig
from repro.obs.probes import DEFAULT_GAUGES, GAUGE_FNS, TimeSeries
from repro.scenariospec import ComponentSpec, ScenarioSpec


def probed_spec(**params) -> ScenarioSpec:
    params.setdefault("interval_s", 1.0)
    return ScenarioSpec(
        cfg=ScenarioConfig(node_count=6, duration_s=5.0, seed=3),
        mac="basic",
        observability=ComponentSpec("probes", **params),
    )


class TestSamplingCadence:
    def test_tick_times_are_the_arithmetic_grid(self):
        ts = probed_spec().run().timeseries
        assert ts.times == (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)
        assert ts.samples == 6
        assert ts.interval_s == 1.0
        assert ts.node_count == 6

    def test_fractional_interval(self):
        ts = probed_spec(interval_s=2.5).run().timeseries
        assert ts.times == (0.0, 2.5, 5.0)

    def test_default_gauges_in_canonical_order(self):
        ts = probed_spec().run().timeseries
        assert ts.gauges == DEFAULT_GAUGES
        assert len(ts.data) == len(DEFAULT_GAUGES)

    def test_gauge_subset_is_respected(self):
        ts = probed_spec(gauges=("cw", "route_count")).run().timeseries
        assert ts.gauges == ("cw", "route_count")
        assert len(ts.data) == 2

    def test_unknown_gauge_rejected_at_build(self):
        with pytest.raises(ValueError, match="unknown gauge"):
            probed_spec(gauges=("not_a_gauge",)).build()

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            probed_spec(interval_s=0.0).build()


class TestGaugeSemantics:
    def test_battery_gauge_is_sentinel_when_unmetered(self):
        ts = probed_spec(gauges=("battery_j",)).run().timeseries
        assert all(v == -1.0 for row in ts.gauge("battery_j") for v in row)

    def test_battery_gauge_drains_when_metered(self):
        spec = ScenarioSpec(
            cfg=ScenarioConfig(node_count=6, duration_s=5.0, seed=3),
            mac="basic",
            energy=ComponentSpec("wavelan", battery_j=30.0),
            observability=ComponentSpec("probes", gauges=("battery_j",)),
        )
        ts = spec.run().timeseries
        series = ts.node_series("battery_j", 0)
        assert series[0] == pytest.approx(30.0)
        assert series[-1] < series[0]
        # Batteries only discharge: the trajectory is monotone non-rising.
        assert all(b <= a for a, b in zip(series, series[1:]))

    def test_cw_starts_at_cwmin(self):
        ts = probed_spec(gauges=("cw",)).run().timeseries
        assert all(v >= 31.0 for v in ts.gauge("cw")[0])

    def test_radio_state_codes_are_in_range(self):
        ts = probed_spec(gauges=("radio_state",)).run().timeseries
        values = {v for row in ts.gauge("radio_state") for v in row}
        assert values <= {0.0, 1.0, 2.0, 3.0}

    def test_every_registered_gauge_samples_every_node(self):
        ts = probed_spec().run().timeseries
        for name in GAUGE_FNS:
            rows = ts.gauge(name)
            assert len(rows) == ts.samples
            assert all(len(row) == ts.node_count for row in rows)

    def test_unknown_gauge_lookup_raises(self):
        ts = probed_spec().run().timeseries
        with pytest.raises(KeyError, match="unknown gauge"):
            ts.gauge("nope")


class TestTimeSeriesRoundTrip:
    def test_store_serialisation_is_lossless(self):
        result = probed_spec().run()
        rebuilt = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert rebuilt == result
        assert isinstance(rebuilt.timeseries, TimeSeries)
        assert rebuilt.timeseries.gauge("cw") == result.timeseries.gauge("cw")

    def test_pre_observability_store_lines_still_load(self):
        result = ScenarioSpec(
            cfg=ScenarioConfig(node_count=6, duration_s=2.0, seed=1),
            mac="basic",
        ).run()
        payload = result_to_dict(result)
        del payload["timeseries"]  # a line written before the obs fields
        del payload["profile"]
        rebuilt = result_from_dict(payload)
        assert rebuilt.timeseries is None and rebuilt.profile is None
        assert rebuilt == result

    def test_full_store_round_trip_through_disk(self, tmp_path):
        from repro.campaign.spec import RunSpec
        from repro.campaign.store import ResultStore

        spec = RunSpec(scenario=probed_spec())
        result = spec.run()
        ResultStore(tmp_path).put(spec, result)
        reloaded = ResultStore(tmp_path)  # fresh load from disk
        stored = reloaded.get(spec.key())
        assert stored == result
        assert stored.timeseries.times == result.timeseries.times
