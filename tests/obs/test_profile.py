"""Kernel self-profiling: identical dispatch, accurate attribution."""

from __future__ import annotations

import json

import pytest

from repro.obs.profile import ProfileEntry, ProfileReport
from repro.sim.kernel import Simulator


def schedule_workload(sim: Simulator) -> list[str]:
    """A small labelled workload; returns the fired-label log."""
    log: list[str] = []
    for i in range(5):
        sim.schedule(float(i), lambda i=i: log.append(f"tick{i}"), label="tick")
    sim.schedule(2.5, lambda: log.append("mid"), label="mid")

    def unlabelled():
        log.append("un")

    sim.schedule(3.5, unlabelled)  # no label: falls back to qualname
    return log


class TestProfiledKernel:
    def test_dispatch_is_identical_to_unprofiled(self):
        plain, profiled = Simulator(), Simulator()
        log_a = schedule_workload(plain)
        log_b = schedule_workload(profiled)
        profiled.enable_profiling()
        plain.run_until(10.0)
        profiled.run_until(10.0)
        assert log_a == log_b
        assert plain.events_executed == profiled.events_executed == 7
        assert plain.now == profiled.now == 10.0

    def test_attribution_by_label_with_qualname_fallback(self):
        sim = Simulator()
        schedule_workload(sim)
        sim.enable_profiling()
        sim.run_until(10.0)
        raw = sim.profile
        assert raw["tick"][0] == 5
        assert raw["mid"][0] == 1
        # The unlabelled event lands under its handler's qualified name.
        (fallback_kind,) = [k for k in raw if "unlabelled" in k]
        assert raw[fallback_kind][0] == 1
        assert all(cum >= 0.0 for _, cum in raw.values())

    def test_profile_is_off_by_default(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None, label="x")
        sim.run_until(5.0)
        assert sim.profile is None

    def test_enable_is_idempotent(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None, label="x")
        sim.enable_profiling()
        sim.run_until(0.5)
        sim.enable_profiling()  # must not wipe accumulated data
        sim.run_until(5.0)
        assert sim.profile["x"][0] == 1

    def test_stop_is_honoured_in_profiled_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.enable_profiling()
        sim.run_until(10.0)
        assert fired == [1]
        assert sim.pending_events == 1

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append("no"), label="dead")
        sim.schedule(2.0, lambda: fired.append("yes"), label="live")
        ev.cancel()
        sim.enable_profiling()
        sim.run_until(10.0)
        assert fired == ["yes"]
        assert "dead" not in sim.profile


class TestProfileReport:
    def test_from_raw_sorts_hottest_first(self):
        report = ProfileReport.from_raw(
            {"cold": [10, 0.001], "hot": [5, 0.5], "warm": [2, 0.01]}
        )
        assert [e.kind for e in report.entries] == ["hot", "warm", "cold"]
        assert report.total_events == 17
        assert report.attributed_s == pytest.approx(0.511)

    def test_per_call_and_rate_derivations(self):
        entry = ProfileEntry(kind="x", calls=4, cum_s=0.002)
        assert entry.per_call_us == pytest.approx(500.0)
        report = ProfileReport.from_raw({"x": [4, 0.002]})
        assert report.events_per_sec == pytest.approx(2000.0)

    def test_zero_calls_and_empty_report_do_not_divide_by_zero(self):
        assert ProfileEntry(kind="x", calls=0, cum_s=0.0).per_call_us == 0.0
        empty = ProfileReport.from_raw({})
        assert empty.events_per_sec == 0.0
        assert "total" in empty.table()

    def test_from_sim_none_when_disabled(self):
        assert ProfileReport.from_sim(Simulator()) is None

    def test_json_round_trip(self):
        report = ProfileReport.from_raw({"a": [3, 0.03], "b": [1, 0.5]})
        from dataclasses import asdict

        rebuilt = ProfileReport.from_payload(
            json.loads(json.dumps(asdict(report)))
        )
        assert rebuilt == report

    def test_table_renders_top_n(self):
        report = ProfileReport.from_raw(
            {f"kind{i}": [1, 0.01 * (i + 1)] for i in range(30)}
        )
        table = report.table(top=5)
        assert table.count("\n") == 6  # header + 5 rows + total
        assert "kind29" in table  # hottest survives the cut
        assert "kind0" not in table
