"""Streaming sinks: consumed records bypass the cap, declined ones don't.

The acceptance criterion for the JSONL sink: a run emitting far more
records than ``max_records`` must export *every* record with zero dropped
— the cap only governs the in-memory ring.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.sinks import JsonlSink, TraceSink, read_jsonl_trace
from repro.sim.trace import Tracer


def emit_n(tracer: Tracer, category: str, n: int, start: int = 0) -> None:
    h = tracer.handle(category)
    for i in range(start, start + n):
        h.count += 1
        if h.store:
            h.record(float(i), node=i % 4, seq=i)


class TestJsonlSinkExport:
    def test_volume_past_cap_exports_everything(self, tmp_path):
        """100 records through a cap of 5: all on disk, zero dropped."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        t = Tracer(enabled_categories={"phy.tx"}, max_records=5, sink=sink)
        emit_n(t, "phy.tx", 100)
        sink.close()
        assert t.count("phy.tx") == 100
        assert t.dropped == 0
        assert t.records == []  # everything was sunk, nothing ringed
        assert sink.written == 100
        rows = read_jsonl_trace(path)
        assert len(rows) == 100
        assert rows[0] == {"time": 0.0, "category": "phy.tx", "node": 0, "seq": 0}
        assert [r["seq"] for r in rows] == list(range(100))

    def test_category_filter_declines_to_memory_ring(self, tmp_path):
        """Filtered-out categories fall back to the capped ring."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, categories={"phy.tx"})
        t = Tracer(
            enabled_categories={"phy.tx", "app.rx"}, max_records=3, sink=sink
        )
        emit_n(t, "phy.tx", 50)
        emit_n(t, "app.rx", 10)
        sink.close()
        # phy.tx all sunk; app.rx declined -> 3 in ring, 7 dropped.
        assert sink.written == 50
        assert len(t.records) == 3
        assert all(r.category == "app.rx" for r in t.records)
        assert t.handle("app.rx").dropped == 7
        assert t.handle("phy.tx").dropped == 0
        assert t.dropped == 7
        # Counters stay exact regardless of destination.
        assert t.count("phy.tx") == 50
        assert t.count("app.rx") == 10

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        t = Tracer(enabled_categories={"x"}, sink=sink)
        emit_n(t, "x", 1)
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            emit_n(t, "x", 1)

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            t = Tracer(enabled_categories={"x"}, sink=sink)
            emit_n(t, "x", 3)
        assert len(read_jsonl_trace(path)) == 3

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with JsonlSink(path) as sink:
            t = Tracer(enabled_categories={"x"}, sink=sink)
            emit_n(t, "x", 1)
        assert path.exists()

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            t = Tracer(enabled_categories={"x"}, sink=sink)
            emit_n(t, "x", 2)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"time": 3.0, "categ')  # interrupted mid-write
        assert len(read_jsonl_trace(path)) == 2

    def test_detail_values_survive_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            t = Tracer(enabled_categories={"mac.handshake"}, sink=sink)
            h = t.handle("mac.handshake")
            h.count += 1
            h.record(1.25, node=3, kind="DATA", power_w=0.2818, ok=True)
        (row,) = read_jsonl_trace(path)
        assert row == {
            "time": 1.25, "category": "mac.handshake", "node": 3,
            "kind": "DATA", "power_w": 0.2818, "ok": True,
        }


class TestBaseSink:
    def test_base_sink_swallows_and_counts(self):
        sink = TraceSink()
        t = Tracer(enabled_categories={"x"}, max_records=2, sink=sink)
        emit_n(t, "x", 10)
        assert sink.written == 10
        assert t.records == []
        assert t.dropped == 0

    def test_json_roundtrip_of_sink_file_matches_counters(self, tmp_path):
        """Whole-pipeline consistency on a mixed emission pattern."""
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, categories={"a", "b"})
        t = Tracer(enabled_categories={"a", "b", "c"}, max_records=4, sink=sink)
        emit_n(t, "a", 7)
        emit_n(t, "b", 5)
        emit_n(t, "c", 9)
        sink.close()
        rows = read_jsonl_trace(path)
        by_cat: dict[str, int] = {}
        for r in rows:
            by_cat[r["category"]] = by_cat.get(r["category"], 0) + 1
        assert by_cat == {"a": 7, "b": 5}
        # c: 4 ringed + 5 dropped, and the invariant holds per channel.
        for cat in ("a", "b", "c"):
            h = t.handle(cat)
            stored = sum(1 for r in t.records if r.category == cat)
            sunk = by_cat.get(cat, 0)
            assert h.count == stored + sunk + h.dropped

    def test_sunk_records_render_as_dicts(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            t = Tracer(enabled_categories={"x"}, sink=sink)
            emit_n(t, "x", 1)
        raw = path.read_text().strip()
        assert json.loads(raw)["category"] == "x"
