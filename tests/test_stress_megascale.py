"""Mega-scale stress: a 2000-node world under both schedulers, leak-guarded.

Slow-marked (deselected from tier-1; run with ``python -m pytest -m slow``).
One paper-density 2000-node static world is executed for two simulated
seconds under the ``default`` engine (binary heap, scalar fan-out) and the
``turbo`` engine (calendar queue, SoA fan-out, pooled events).  The runs
must execute the *identical* number of events — the mega-scale analogue of
the differential suite's bit-identity — and the turbo run must hold its
memory: the kernel freelist stays bounded and extending the run does not
grow peak RSS beyond a modest allowance (an unbounded freelist or a
fan-out cache leak would blow well past it at this scale).
"""

from __future__ import annotations

import math
import resource
from dataclasses import replace

import pytest

from repro.builder import NetworkBuilder
from repro.config import MobilityConfig, ScenarioConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec
from repro.sim.kernel import _FREELIST_MAX

N_NODES = 2000
HORIZON_S = 2.0
#: Paper Section IV density (5·10⁻⁵ nodes/m²) at 2000 nodes.
SIDE_M = math.sqrt(N_NODES / 5e-5)
#: Peak-RSS growth allowance for one extra simulated second [KiB].
RSS_ALLOWANCE_KIB = 256 * 1024


def _peak_rss_kib() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _build(engine: ComponentSpec):
    cfg = replace(
        ScenarioConfig(),
        node_count=N_NODES,
        duration_s=HORIZON_S + 2.0,
        seed=3,
        mobility=MobilityConfig(field_width_m=SIDE_M, field_height_m=SIDE_M),
    )
    spec = replace(
        ScenarioSpec.from_legacy(cfg, "basic", mobile=False), engine=engine
    )
    return NetworkBuilder(spec).build()


@pytest.mark.slow
def test_2000_node_world_schedulers_agree_and_memory_is_bounded():
    executed = {}
    for name in ("default", "turbo"):
        net = _build(ComponentSpec(name))
        net.sim.run_until(HORIZON_S)
        executed[name] = net.sim.events_executed
        if name != "turbo":
            continue

        # Freelist leak guard: pooling recycles transient events through a
        # hard-capped freelist — it must never balloon past its cap.
        free = net.sim._free
        assert free is not None  # turbo really has pooling on
        assert len(free) <= _FREELIST_MAX

        # RSS guard: another simulated second at steady state must reuse
        # pooled events and cached fan-outs, not allocate proportionally.
        before = _peak_rss_kib()
        net.sim.run_until(HORIZON_S + 1.0)
        growth = _peak_rss_kib() - before
        assert growth < RSS_ALLOWANCE_KIB, f"peak RSS grew {growth} KiB"
        assert len(free) <= _FREELIST_MAX

    assert executed["default"] == executed["turbo"]
    # Non-vacuous: a 2000-node world at paper density is busy.
    assert executed["default"] > 1_000_000
