"""Registry mechanism tests: lookup, param validation, error paths."""

from __future__ import annotations

import pytest

from repro.registry import (
    REQUIRED,
    ComponentEntry,
    Param,
    ParamError,
    Registry,
    RegistryError,
    SLOTS,
    UnknownComponentError,
    all_registries,
    registry,
)


class TestSlots:
    def test_every_slot_has_a_registry(self):
        for slot in SLOTS:
            assert registry(slot).slot == slot

    def test_unknown_slot_rejected(self):
        with pytest.raises(RegistryError, match="unknown slot"):
            registry("transport")

    def test_all_registries_ordered_and_populated(self):
        regs = all_registries()
        assert tuple(regs) == SLOTS
        for slot, reg in regs.items():
            assert reg.names(), f"slot {slot} has no builtin components"


class TestLookupErrors:
    def test_unknown_component_lists_available_names(self):
        with pytest.raises(UnknownComponentError) as exc:
            registry("mac").get("tdma")
        message = str(exc.value)
        for name in ("basic", "pcmac", "scheme1", "scheme2"):
            assert name in message

    def test_unknown_component_is_a_value_error(self):
        # Callers historically catch ValueError for bad protocol names.
        with pytest.raises(ValueError):
            registry("placement").get("spiral")

    def test_contains(self):
        assert "uniform" in registry("placement")
        assert "spiral" not in registry("placement")


class TestParamValidation:
    def entry(self) -> ComponentEntry:
        return ComponentEntry(
            slot="placement",
            name="demo",
            factory=lambda ctx, **kw: kw,
            params=(
                Param("count", int, 4),
                Param("spread_m", float, 80.0),
                Param("anchor", (list, tuple), REQUIRED),
            ),
        )

    def test_defaults_fill_in(self):
        out = self.entry().validate({"anchor": (1.0, 2.0)})
        assert out == {"count": 4, "spread_m": 80.0, "anchor": (1.0, 2.0)}

    def test_unknown_param_names_the_offending_key(self):
        with pytest.raises(ParamError, match="countz") as exc:
            self.entry().validate({"anchor": (0, 0), "countz": 9})
        assert exc.value.key == "countz"
        # And lists what is declared, so the fix is obvious.
        assert "count" in str(exc.value)

    def test_missing_required_param_names_the_key(self):
        with pytest.raises(ParamError, match="anchor"):
            self.entry().validate({})

    def test_wrong_type_names_the_key(self):
        with pytest.raises(ParamError, match="spread_m") as exc:
            self.entry().validate({"anchor": (0, 0), "spread_m": "wide"})
        assert exc.value.key == "spread_m"

    def test_int_accepted_where_float_declared(self):
        out = self.entry().validate({"anchor": (0, 0), "spread_m": 5})
        assert out["spread_m"] == 5

    def test_bool_rejected_where_float_declared(self):
        with pytest.raises(ParamError, match="spread_m"):
            self.entry().validate({"anchor": (0, 0), "spread_m": True})

    def test_param_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            self.entry().validate({"bogus": 1})


class TestRegistration:
    def test_duplicate_name_rejected(self):
        reg = Registry("demo-slot")

        @reg.register("thing")
        def _factory(ctx):
            return None

        with pytest.raises(RegistryError, match="already registered"):

            @reg.register("thing")
            def _factory2(ctx):
                return None

    def test_doc_falls_back_to_factory_docstring(self):
        reg = Registry("demo-slot")

        @reg.register("documented")
        def _factory(ctx):
            """First line becomes the doc.

            Second paragraph is ignored.
            """

        # Bypass the lazy builtin loader: read the private table directly.
        assert reg._entries["documented"].doc == "First line becomes the doc."

    def test_signature_rendering(self):
        entry = ComponentEntry(
            slot="s",
            name="n",
            factory=lambda ctx: None,
            params=(Param("a", int, 1), Param("b", float, REQUIRED)),
        )
        assert entry.signature() == "a:int=1, b:float (required)"


class TestFailedBuiltinImportRecovery:
    def test_user_components_survive_builtin_import_failure(self, monkeypatch):
        """A failed repro.components import must roll back to the
        pre-import state, keeping user-registered components intact."""
        import importlib

        import repro.registry as regmod

        reg = regmod.registry("placement")
        assert "uniform" in reg  # builtins loaded for real first

        @reg.register("ring-test")
        def _ring(ctx):
            return []

        try:
            # Simulate a cold process whose builtin import blows up.
            monkeypatch.setattr(regmod, "_builtins_loaded", False)

            def boom(name):
                raise ImportError("broken optional dependency")

            monkeypatch.setattr(importlib, "import_module", boom)
            with pytest.raises(ImportError, match="broken"):
                reg.get("uniform")
            # The real error resurfaces on retry (flag was reset)...
            with pytest.raises(ImportError, match="broken"):
                reg.get("uniform")
            monkeypatch.undo()
            # ...and the user's component survived the rollback.
            assert "ring-test" in reg
            assert "uniform" in reg
        finally:
            reg._entries.pop("ring-test", None)


class TestPackageSurface:
    def test_submodule_not_shadowed_by_function(self):
        """`import repro.registry as X` must bind the module, even after
        `import repro` ran (the accessor function is not re-exported)."""
        import importlib
        import types

        import repro  # noqa: F401 - trigger package __init__

        mod = importlib.import_module("repro.registry")
        assert isinstance(getattr(repro, "registry"), types.ModuleType)
        assert getattr(repro, "registry") is mod


class TestBuiltinCatalogue:
    """The registered component set the paper + this PR promise."""

    EXPECTED = {
        "mac": {"basic", "pcmac", "scheme1", "scheme2"},
        "placement": {"cluster", "explicit", "grid", "line", "uniform"},
        "mobility": {"static", "waypoint"},
        "routing": {"aodv", "static"},
        "traffic": {"cbr", "poisson"},
        "propagation": {"free_space", "log_distance", "two_ray"},
    }

    @pytest.mark.parametrize("slot", sorted(EXPECTED))
    def test_builtins_registered(self, slot):
        assert set(registry(slot).names()) >= self.EXPECTED[slot]

    def test_every_entry_has_a_doc(self):
        for slot, reg in all_registries().items():
            for entry in reg.entries():
                assert entry.doc, f"{slot}:{entry.name} has no doc line"
