"""RunSpec / Campaign tests: content addressing and grid expansion."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.campaign.spec import Campaign, RunSpec
from repro.config import ScenarioConfig, TrafficConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec


def small_cfg(**overrides) -> ScenarioConfig:
    defaults = dict(
        node_count=6,
        duration_s=4.0,
        seed=3,
        traffic=TrafficConfig(flow_count=2, offered_load_bps=80e3),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestRunSpecKey:
    def test_key_is_deterministic(self):
        a = RunSpec(cfg=small_cfg(), protocol="basic")
        b = RunSpec(cfg=small_cfg(), protocol="basic")
        assert a.key() == b.key()

    def test_key_is_stable_across_processes(self):
        # The key must not depend on PYTHONHASHSEED or object identity —
        # it addresses results persisted by *other* processes.
        spec = RunSpec(cfg=small_cfg(), protocol="basic")
        blob = spec.describe()
        assert isinstance(blob["cfg"], dict)
        assert spec.key() == RunSpec(cfg=small_cfg(), protocol="basic").key()
        assert len(spec.key()) == 32
        assert all(c in "0123456789abcdef" for c in spec.key())

    def test_key_is_the_scenario_key(self):
        # RunSpec content-hashes the serialized ScenarioSpec: the same
        # scenario reached through the legacy keywords and through the
        # declarative API addresses the same stored result.
        legacy = RunSpec(cfg=small_cfg(), protocol="pcmac")
        declarative = RunSpec(
            scenario=ScenarioSpec(cfg=small_cfg(), mac="pcmac")
        )
        assert legacy.key() == declarative.key()
        assert legacy.key() == legacy.scenario.key()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: replace(s, mac=ComponentSpec("pcmac")),
            lambda s: replace(s, cfg=replace(s.cfg, seed=99)),
            lambda s: replace(s, cfg=replace(s.cfg, duration_s=5.0)),
            lambda s: replace(
                s,
                cfg=replace(
                    s.cfg, traffic=replace(s.cfg.traffic, offered_load_bps=90e3)
                ),
            ),
            lambda s: replace(
                s, mobility=ComponentSpec("static"), routing=ComponentSpec("static")
            ),
            lambda s: replace(s, flow_pairs=((0, 1),)),
            lambda s: replace(
                s,
                placement=ComponentSpec("explicit", positions=((0.0, 0.0),) * 6),
            ),
            lambda s: replace(
                s, propagation=ComponentSpec("log_distance", exponent=3.0)
            ),
            lambda s: replace(s, placement=ComponentSpec("grid")),
            lambda s: replace(s, traffic=ComponentSpec("poisson")),
        ],
    )
    def test_any_field_change_changes_key(self, mutate):
        base = ScenarioSpec(cfg=small_cfg(), mac="basic")
        assert RunSpec(scenario=mutate(base)).key() != RunSpec(scenario=base).key()

    def test_component_param_change_changes_key(self):
        a = ScenarioSpec(
            cfg=small_cfg(), placement=ComponentSpec("cluster", clusters=2)
        )
        b = ScenarioSpec(
            cfg=small_cfg(), placement=ComponentSpec("cluster", clusters=3)
        )
        assert a.key() != b.key()

    def test_rejects_mixed_constructor_arguments(self):
        with pytest.raises(ValueError):
            RunSpec(
                cfg=small_cfg(),
                protocol="basic",
                scenario=ScenarioSpec(cfg=small_cfg()),
            )
        with pytest.raises(ValueError):
            RunSpec(cfg=small_cfg())  # legacy form needs a protocol too

    def test_seed_and_load_accessors(self):
        spec = RunSpec(cfg=small_cfg(seed=7), protocol="basic")
        assert spec.seed == 7
        assert spec.load_kbps == pytest.approx(80.0)
        assert "basic" in spec.label()
        assert spec.protocol == "basic"
        assert spec.cfg == small_cfg(seed=7)

    def test_spec_runs_like_build_network(self):
        from repro.experiments.scenario import build_network

        spec = RunSpec(cfg=small_cfg(), protocol="basic")
        direct = build_network(small_cfg(), "basic").run()
        via_spec = spec.run()
        assert via_spec.throughput_kbps == direct.throughput_kbps
        assert via_spec.events_executed == direct.events_executed


class TestCampaign:
    def test_grid_expansion_order_and_size(self):
        camp = Campaign.build(
            small_cfg(), ["basic", "pcmac"], [50.0, 100.0], [1, 2]
        )
        specs = camp.specs()
        assert camp.size == len(specs) == 8
        # Load outermost, then protocol, then seed (the paper's sweep order).
        cells = [(s.load_kbps, s.protocol, s.seed) for s in specs]
        assert cells == [
            (50.0, "basic", 1),
            (50.0, "basic", 2),
            (50.0, "pcmac", 1),
            (50.0, "pcmac", 2),
            (100.0, "basic", 1),
            (100.0, "basic", 2),
            (100.0, "pcmac", 1),
            (100.0, "pcmac", 2),
        ]

    def test_specs_embed_load_and_seed_in_config(self):
        camp = Campaign.build(small_cfg(), ["basic"], [50.0], [9])
        (spec,) = camp.specs()
        assert spec.cfg.seed == 9
        assert spec.cfg.traffic.offered_load_bps == pytest.approx(50e3)

    def test_all_keys_distinct(self):
        camp = Campaign.build(
            small_cfg(), ["basic", "pcmac"], [50.0, 100.0], [1, 2]
        )
        keys = [s.key() for s in camp.specs()]
        assert len(set(keys)) == len(keys)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            Campaign.build(small_cfg(), ["tdma"], [50.0], [1])

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError):
            Campaign.build(small_cfg(), [], [50.0], [1])
