"""error_record: bounded tracebacks and spec labels on failure lines."""

from __future__ import annotations

from repro.campaign.runner import (
    MAX_TRACEBACK_CHARS,
    _bound_traceback,
    error_record,
)


def deep_failure(depth: int) -> Exception:
    """An exception whose traceback has ``depth`` frames."""

    def recurse(n: int) -> None:
        if n == 0:
            raise ValueError("bottom of the well")
        recurse(n - 1)

    try:
        recurse(depth)
    except ValueError as exc:
        return exc
    raise AssertionError("unreachable")


class TestBoundTraceback:
    def test_short_text_untouched(self):
        assert _bound_traceback("tiny") == "tiny"

    def test_long_text_keeps_head_and_tail(self):
        text = "HEAD" + "x" * 20000 + "TAIL"
        bounded = _bound_traceback(text)
        assert len(bounded) <= MAX_TRACEBACK_CHARS
        assert bounded.startswith("HEAD")
        assert bounded.endswith("TAIL")
        assert "chars elided" in bounded

    def test_elision_marker_counts_the_cut(self):
        text = "a" * 10000
        bounded = _bound_traceback(text, limit=1000)
        half = (1000 - 60) // 2
        assert f"[{10000 - 2 * half} chars elided]" in bounded


class TestErrorRecord:
    def test_basic_shape(self):
        record = error_record(deep_failure(2), attempts=3)
        assert record["kind"] == "ValueError"
        assert record["message"] == "bottom of the well"
        assert record["attempts"] == 3
        assert record["traceback"].startswith("Traceback")
        assert "label" not in record

    def test_label_carried_when_known(self):
        record = error_record(deep_failure(1), attempts=1, label="basic@300kbps/seed9")
        assert record["label"] == "basic@300kbps/seed9"

    def test_huge_traceback_is_bounded(self):
        try:
            raise ValueError("long story: " + "x" * 20000)
        except ValueError as exc:
            record = error_record(exc, attempts=1)
        assert len(record["traceback"]) <= MAX_TRACEBACK_CHARS
        # Head names the call site, tail ends with the exception text.
        assert record["traceback"].startswith("Traceback")
        assert record["traceback"].rstrip().endswith("x")
        assert "chars elided" in record["traceback"]
