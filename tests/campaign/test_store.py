"""ResultStore tests: round trips, resume across instances, torn writes."""

from __future__ import annotations

import json

from repro.campaign.spec import RunSpec
from repro.campaign.store import (
    ResultStore,
    result_from_dict,
    result_to_dict,
)
from repro.config import ScenarioConfig, TrafficConfig
from repro.experiments.scenario import ExperimentResult, FlowSummary


def make_spec(seed: int = 1) -> RunSpec:
    cfg = ScenarioConfig(
        node_count=4,
        duration_s=2.0,
        seed=seed,
        traffic=TrafficConfig(flow_count=2, offered_load_bps=50e3),
    )
    return RunSpec(cfg=cfg, protocol="basic")


def make_result(seed: int = 1) -> ExperimentResult:
    return ExperimentResult(
        protocol="basic",
        offered_load_kbps=50.0,
        duration_s=1.0,
        throughput_kbps=12.5,
        avg_delay_ms=3.25,
        delivery_ratio=0.5,
        fairness=0.9,
        sent=10,
        received=5,
        drops={"ifq": 2, "retry": 3},
        mac_totals={"rts_sent": 9.0},
        routing_totals={"rreq": 4},
        events_executed=1234,
        wallclock_s=0.01,
        seed=seed,
        flows=(
            FlowSummary(0, 5, 3, 0.6, 6.0, 2.0),
            FlowSummary(1, 5, 2, 0.4, 6.5, 4.5),
        ),
    )


class TestSerialisation:
    def test_result_dict_round_trip(self):
        original = make_result()
        rebuilt = result_from_dict(json.loads(json.dumps(result_to_dict(original))))
        assert rebuilt == original

    def test_legacy_dict_without_flows(self):
        payload = result_to_dict(make_result())
        payload.pop("flows")
        rebuilt = result_from_dict(payload)
        assert rebuilt.flows == ()


class TestResultStore:
    def test_put_then_get(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec, result = make_spec(), make_result()
        key = store.put(spec, result)
        assert key == spec.key()
        assert key in store
        assert store.get(key) == result
        assert len(store) == 1

    def test_resume_across_instances(self, tmp_path):
        root = tmp_path / "store"
        first = ResultStore(root)
        spec, result = make_spec(), make_result()
        first.put(spec, result)

        second = ResultStore(root)
        assert spec.key() in second
        assert second.get(spec.key()) == result
        assert second.spec_summary(spec.key())["protocol"] == "basic"

    def test_audit_record_carries_rerunnable_scenario(self, tmp_path):
        """The stored spec summary embeds the full serialized ScenarioSpec,
        so a store entry can be re-expanded into the exact cell that ran."""
        from repro.scenariospec import ScenarioSpec

        store = ResultStore(tmp_path / "store")
        spec, result = make_spec(), make_result()
        key = store.put(spec, result)

        reloaded = ResultStore(tmp_path / "store")
        scenario_dict = reloaded.spec_summary(key)["scenario"]
        rebuilt = ScenarioSpec.from_dict(scenario_dict)
        assert rebuilt == spec.scenario
        assert rebuilt.key() == key

    def test_missing_key_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("deadbeef") is None
        assert "deadbeef" not in store

    def test_last_write_wins_on_duplicate_key(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root)
        spec = make_spec()
        store.put(spec, make_result())
        newer = make_result()
        newer.throughput_kbps = 99.0
        store.put(spec, newer)
        reloaded = ResultStore(root)
        assert len(reloaded) == 1
        assert reloaded.get(spec.key()).throughput_kbps == 99.0

    def test_torn_final_line_is_ignored(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root)
        spec, result = make_spec(), make_result()
        store.put(spec, result)
        # Simulate a crash mid-append: a truncated JSON tail.
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "abc", "result": {"proto')

        reloaded = ResultStore(root)
        assert len(reloaded) == 1
        assert reloaded.get(spec.key()) == result

    def test_meta_file_written_once(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root)
        meta = json.loads((root / "meta.json").read_text())
        assert meta["store_format"] >= 1
        assert meta["spec_schema"] >= 1
        # Reopening must not rewrite it.
        before = (root / "meta.json").stat().st_mtime_ns
        ResultStore(root)
        assert (root / "meta.json").stat().st_mtime_ns == before
