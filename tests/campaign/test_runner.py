"""Campaign runner tests: cross-process determinism, caching, resume.

The determinism regression is the load-bearing test: a campaign executed on
a worker pool must produce results identical (wallclock aside) to the same
specs run serially in-process — each cell carries its own seed, so fan-out
must not change any simulated quantity.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.campaign.runner import run_campaign, run_specs
from repro.campaign.spec import Campaign, RunSpec
from repro.campaign.store import ResultStore
from repro.config import ScenarioConfig, TrafficConfig


def small_cfg(**overrides) -> ScenarioConfig:
    defaults = dict(
        node_count=6,
        duration_s=3.0,
        seed=1,
        traffic=TrafficConfig(flow_count=2, offered_load_bps=80e3),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def small_campaign() -> Campaign:
    return Campaign.build(small_cfg(), ["basic", "pcmac"], [50.0, 80.0], [1, 2])


def deterministic_fields(result) -> dict:
    """Every result field except the wallclock measurement."""
    fields = asdict(result)
    fields.pop("wallclock_s")
    return fields


class TestDeterminismAcrossProcesses:
    def test_pool_results_identical_to_serial(self):
        specs = small_campaign().specs()
        serial = run_specs(specs, jobs=1)
        pooled = run_specs(specs, jobs=4)
        assert serial.executed == pooled.executed == len(specs)
        assert set(serial.results) == set(pooled.results)
        for key in serial.results:
            assert deterministic_fields(serial.results[key]) == (
                deterministic_fields(pooled.results[key])
            )

    def test_single_spec_short_circuits_the_pool(self):
        spec = RunSpec(cfg=small_cfg(), protocol="basic")
        # jobs > 1 with one pending cell must not pay pool start-up.
        report = run_specs([spec], jobs=8)
        assert report.executed == 1
        assert spec.key() in report.results


class TestCachingAndResume:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        campaign = small_campaign()
        store = ResultStore(tmp_path / "store")
        first = run_campaign(campaign, jobs=2, store=store)
        assert first.executed == campaign.size
        assert first.cached == 0

        second = run_campaign(campaign, jobs=2, store=ResultStore(tmp_path / "store"))
        assert second.executed == 0
        assert second.cached == campaign.size
        for key in first.results:
            assert deterministic_fields(first.results[key]) == (
                deterministic_fields(second.results[key])
            )

    def test_interrupted_campaign_resumes_partial_store(self, tmp_path):
        campaign = small_campaign()
        specs = campaign.specs()
        store = ResultStore(tmp_path / "store")
        # Simulate an interruption: only half the cells completed.
        run_specs(specs[: len(specs) // 2], store=store)
        assert len(store) == len(specs) // 2

        report = run_campaign(campaign, store=ResultStore(tmp_path / "store"))
        assert report.cached == len(specs) // 2
        assert report.executed == len(specs) - len(specs) // 2
        assert set(report.results) == {s.key() for s in specs}

    def test_no_resume_recomputes_everything(self, tmp_path):
        campaign = small_campaign()
        store = ResultStore(tmp_path / "store")
        run_campaign(campaign, store=store)
        again = run_campaign(campaign, store=store, resume=False)
        assert again.executed == campaign.size
        assert again.cached == 0

    def test_duplicate_specs_collapse(self):
        spec = RunSpec(cfg=small_cfg(), protocol="basic")
        report = run_specs([spec, spec, spec])
        assert report.executed == 1
        assert report.total == 1

    def test_progress_lines_and_report_accounting(self, tmp_path):
        campaign = small_campaign()
        store = ResultStore(tmp_path / "store")
        lines: list[str] = []
        run_campaign(campaign, store=store, progress=lines.append)
        assert len(lines) == campaign.size
        cached_lines: list[str] = []
        run_campaign(campaign, store=store, progress=cached_lines.append)
        assert len(cached_lines) == campaign.size
        assert all(line.startswith("[cached]") for line in cached_lines)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            run_specs([], jobs=0)

    def test_in_spec_order(self):
        campaign = small_campaign()
        specs = campaign.specs()
        report = run_specs(specs, jobs=2)
        ordered = report.in_spec_order(specs)
        assert [r.seed for r in ordered] == [s.seed for s in specs]
        assert [r.protocol for r in ordered] == [s.protocol for s in specs]


class TestSweepFacade:
    def test_parallel_sweep_matches_serial_sweep(self):
        from repro.experiments.sweep import run_load_sweep

        kwargs = dict(seeds=(1, 2))
        serial = run_load_sweep(small_cfg(), ["basic"], [50.0, 80.0], **kwargs)
        pooled = run_load_sweep(
            small_cfg(), ["basic"], [50.0, 80.0], jobs=3, **kwargs
        )
        assert serial.throughput_series() == pooled.throughput_series()
        assert serial.delay_series() == pooled.delay_series()

    def test_sweep_through_store_hits_cache(self, tmp_path):
        from repro.experiments.sweep import run_load_sweep

        store = ResultStore(tmp_path / "store")
        first = run_load_sweep(
            small_cfg(), ["basic"], [50.0], seeds=(1,), store=store
        )
        lines: list[str] = []
        second = run_load_sweep(
            small_cfg(),
            ["basic"],
            [50.0],
            seeds=(1,),
            store=store,
            progress=lines.append,
        )
        assert all(line.startswith("[cached]") for line in lines)
        assert first.throughput_series() == second.throughput_series()
