"""ResultStore corruption quarantine and error-line semantics.

The store used to silently drop unparseable JSONL lines — a torn write
from a crashed campaign would vanish without a trace.  Now bad lines move
to a ``.corrupt`` sidecar with a warning, the main file is rewritten
atomically, and structured error lines coexist with results (success
always outranking error for the same key).
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.campaign.spec import RunSpec
from repro.campaign.store import CORRUPT_SUFFIX, ResultStore
from repro.config import ScenarioConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec


def cell(seed: int = 1) -> RunSpec:
    cfg = ScenarioConfig(node_count=6, duration_s=2.0, seed=seed)
    return RunSpec(scenario=ScenarioSpec(cfg=cfg, mac=ComponentSpec("basic")))


def populated_store(tmp_path, seeds=(1, 2)):
    store = ResultStore(tmp_path / "store")
    for seed in seeds:
        spec = cell(seed)
        store.put(spec, spec.scenario.run())
    return store


class TestQuarantine:
    def test_corrupt_lines_move_to_sidecar(self, tmp_path):
        store = populated_store(tmp_path)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "torn-off-mid-wri\n')
            fh.write("not json at all\n")

        with pytest.warns(RuntimeWarning, match="quarantined 2 corrupt"):
            reloaded = ResultStore(tmp_path / "store")

        assert len(reloaded) == 2
        sidecar = store.path.with_name(store.path.name + CORRUPT_SUFFIX)
        assert len(sidecar.read_text().splitlines()) == 2
        # The main file is clean now: a third load warns about nothing.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = ResultStore(tmp_path / "store")
        assert len(again) == 2

    def test_results_survive_the_rewrite_intact(self, tmp_path):
        store = populated_store(tmp_path)
        originals = {k: store.get(k) for k in store.keys()}
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("garbage\n")
        with pytest.warns(RuntimeWarning):
            reloaded = ResultStore(tmp_path / "store")
        for key, result in originals.items():
            assert reloaded.get(key) == result


class TestErrorLines:
    def test_put_error_stays_out_of_the_index(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = cell()
        key = store.put_error(spec, {"kind": "ValueError", "message": "x"})
        assert key == spec.key()
        assert store.get(key) is None
        assert key not in store
        assert store.error(key)["kind"] == "ValueError"
        assert store.errors() == {key: store.error(key)}

    def test_error_lines_survive_reload(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_error(cell(), {"kind": "ValueError", "message": "x"})
        reloaded = ResultStore(tmp_path / "store")
        assert reloaded.error(cell().key()) is not None
        assert len(reloaded) == 0

    def test_success_outranks_error_in_either_order(self, tmp_path):
        spec = cell()
        result = spec.scenario.run()

        # error then success (the retry-eventually-worked order)...
        store = ResultStore(tmp_path / "a")
        store.put_error(spec, {"kind": "ValueError", "message": "x"})
        store.put(spec, result)
        assert store.get(spec.key()) == result
        assert store.error(spec.key()) is None
        reloaded = ResultStore(tmp_path / "a")
        assert reloaded.get(spec.key()) == result
        assert reloaded.error(spec.key()) is None

        # ...and success then error (a later campaign failed the cell):
        # the deterministic result still wins on reload.
        store_b = ResultStore(tmp_path / "b")
        store_b.put(spec, result)
        with store_b.path.open("a", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {
                        "key": spec.key(),
                        "spec": {},
                        "error": {"kind": "ValueError", "message": "x"},
                    }
                )
                + "\n"
            )
        reloaded_b = ResultStore(tmp_path / "b")
        assert reloaded_b.get(spec.key()) == result
        assert reloaded_b.error(spec.key()) is None


class TestSidecarDedupe:
    """A sidecar that sees the same torn line twice records it once, and a
    load that adds nothing new to the sidecar stays silent."""

    def test_repeat_corruption_is_not_duplicated(self, tmp_path):
        store = populated_store(tmp_path)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("same garbage\n")
        with pytest.warns(RuntimeWarning, match="quarantined 1 corrupt"):
            ResultStore(tmp_path / "store")
        # The identical bad line lands again (a crash-looping writer).
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("same garbage\n")
        # It is removed from the main file but NOT re-counted: the
        # sidecar already holds it, so the load warns about nothing.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reloaded = ResultStore(tmp_path / "store")
        assert len(reloaded) == 2
        sidecar = store.path.with_name(store.path.name + CORRUPT_SUFFIX)
        assert sidecar.read_text().splitlines() == ["same garbage"]

    def test_growing_sidecar_reports_the_total(self, tmp_path):
        store = populated_store(tmp_path)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("first garbage\n")
        with pytest.warns(RuntimeWarning, match="sidecar now holds 1"):
            ResultStore(tmp_path / "store")
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write("second garbage\n")
        with pytest.warns(RuntimeWarning, match="sidecar now holds 2"):
            ResultStore(tmp_path / "store")
        sidecar = store.path.with_name(store.path.name + CORRUPT_SUFFIX)
        assert sidecar.read_text().splitlines() == [
            "first garbage",
            "second garbage",
        ]
