"""Failure containment: the campaign runner must outlive its workers.

A chaos campaign is exactly the kind of run that dies nine hours in, so
these tests pin the containment contract from ISSUE 7: worker exceptions
are retried with backoff and then recorded as structured errors (never a
dead campaign), hung workers are reaped by the per-cell timeout, stops are
cooperative, and errored cells re-run on resume because the store keeps
them out of the result index.
"""

from __future__ import annotations

import pytest

from repro.campaign.runner import error_record, run_specs
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore
from repro.config import ScenarioConfig, TrafficConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec


def good_cell(seed: int, duration_s: float = 2.0) -> RunSpec:
    cfg = ScenarioConfig(
        node_count=6,
        duration_s=duration_s,
        seed=seed,
        traffic=TrafficConfig(flow_count=1, offered_load_bps=50e3),
    )
    return RunSpec(scenario=ScenarioSpec(cfg=cfg, mac=ComponentSpec("basic")))


def doomed_cell(seed: int = 99) -> RunSpec:
    """Raises ValueError inside the worker: 1 position for 6 nodes."""
    cfg = ScenarioConfig(node_count=6, duration_s=2.0, seed=seed)
    return RunSpec(
        scenario=ScenarioSpec(
            cfg=cfg,
            mac=ComponentSpec("basic"),
            placement=ComponentSpec("explicit", positions=((0.0, 0.0),)),
        )
    )


class TestSerialContainment:
    def test_error_is_recorded_not_raised(self):
        report = run_specs(
            [good_cell(1), doomed_cell(), good_cell(2)],
            retries=1,
            backoff_s=0.01,
        )
        assert len(report.results) == 2
        assert len(report.errors) == 1
        err = next(iter(report.errors.values()))
        assert err["kind"] == "ValueError"
        assert err["attempts"] == 2
        assert "positions" in err["message"]
        assert "Traceback" in err["traceback"]

    def test_zero_retries_records_first_failure(self):
        report = run_specs([doomed_cell()], retries=0, backoff_s=0.01)
        assert next(iter(report.errors.values()))["attempts"] == 1

    def test_should_stop_halts_between_cells(self):
        seen: list[str] = []
        report = run_specs(
            [good_cell(1), good_cell(2), good_cell(3)],
            progress=seen.append,
            should_stop=lambda: len(seen) >= 1,
        )
        assert report.stopped
        assert len(report.results) == 1

    def test_stop_cuts_retries_short(self):
        # Once shutdown is requested, a failing cell must be recorded
        # immediately instead of burning its remaining retry budget.
        stop = {"now": False}

        def stopping() -> bool:
            result = stop["now"]
            stop["now"] = True  # stop right after the first attempt fails
            return result

        report = run_specs(
            [doomed_cell()],
            retries=50,
            backoff_s=0.01,
            should_stop=stopping,
        )
        assert next(iter(report.errors.values()))["attempts"] <= 2


class TestPooledContainment:
    def test_dying_worker_is_retried_then_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = [good_cell(1), doomed_cell(), good_cell(2)]
        report = run_specs(
            specs, jobs=2, store=store, retries=2, backoff_s=0.01
        )
        assert len(report.results) == 2
        key = doomed_cell().key()
        assert report.errors[key]["attempts"] == 3
        assert store.error(key) is not None
        assert store.get(key) is None

    def test_resume_reruns_errored_cells_only(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = [good_cell(1), doomed_cell()]
        run_specs(specs, jobs=2, store=store, retries=0, backoff_s=0.01)

        ran: list[str] = []
        fresh = ResultStore(tmp_path / "store")
        report = run_specs(
            specs, jobs=2, store=fresh, retries=0, backoff_s=0.01,
            progress=ran.append,
        )
        assert doomed_cell().key() in report.errors
        assert sum("cached" in line for line in ran) == 1

    def test_stop_before_start_drops_all_queued_cells(self):
        report = run_specs(
            [good_cell(1), good_cell(2), good_cell(3)],
            jobs=2,
            should_stop=lambda: True,
        )
        assert report.stopped
        assert report.results == {}
        assert report.errors == {}

    def test_worker_init_resets_inherited_signal_handlers(self):
        # Forked workers inherit the CLI's SIGINT/SIGTERM handlers.  The
        # initializer must shield SIGINT (so Ctrl-C drains instead of
        # killing in-flight cells) and restore SIGTERM to the default —
        # an inherited no-kill handler would neuter Pool.terminate() and
        # leave the parent blocked forever in pool.join().
        import signal

        from repro.campaign.runner import _init_worker

        def handler(signum, frame):  # pragma: no cover - never fired
            pass

        old_int = signal.signal(signal.SIGINT, handler)
        old_term = signal.signal(signal.SIGTERM, handler)
        try:
            _init_worker(None)
            assert signal.getsignal(signal.SIGINT) is signal.SIG_IGN
            assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL
        finally:
            signal.signal(signal.SIGINT, old_int)
            signal.signal(signal.SIGTERM, old_term)

    @pytest.mark.slow
    def test_hung_worker_times_out_and_bystander_survives(self):
        # A cell that would simulate for hours stands in for a hang; the
        # per-cell budget must reap it without losing the honest cell.
        hung = good_cell(5, duration_s=100000.0)
        report = run_specs(
            [hung, good_cell(6)],
            jobs=2,
            timeout_s=2.0,
            retries=0,
            backoff_s=0.01,
        )
        assert hung.key() in report.errors
        assert report.errors[hung.key()]["kind"] == "Timeout"
        assert len(report.results) == 1


class TestErrorRecord:
    def test_shape(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError as exc:
            record = error_record(exc, attempts=3)
        assert record["kind"] == "RuntimeError"
        assert record["message"] == "boom"
        assert record["attempts"] == 3
        assert "RuntimeError: boom" in record["traceback"]
