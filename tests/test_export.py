"""CSV export tests."""

from __future__ import annotations

import csv
import io

from repro.analysis.export import (
    RESULT_FIELDS,
    series_to_csv,
    sweep_to_csv,
    write_results_csv,
)
from repro.config import ScenarioConfig, TrafficConfig
from repro.experiments.sweep import run_load_sweep


def small_sweep():
    cfg = ScenarioConfig(
        node_count=6,
        duration_s=3.0,
        seed=2,
        traffic=TrafficConfig(flow_count=2, offered_load_bps=80e3),
    )
    return run_load_sweep(cfg, ["basic"], [40.0, 80.0], seeds=(1, 2))


class TestCsvExport:
    def test_sweep_row_count(self):
        text = sweep_to_csv(small_sweep())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == list(RESULT_FIELDS)
        assert len(rows) == 1 + 2 * 2  # header + loads × seeds

    def test_values_roundtrip(self):
        sweep = small_sweep()
        text = sweep_to_csv(sweep)
        rows = list(csv.DictReader(io.StringIO(text)))
        originals = {
            (r.protocol, float(r.offered_load_kbps), r.seed): r
            for runs in sweep.results.values()
            for r in runs
        }
        for row in rows:
            key = (row["protocol"], float(row["offered_load_kbps"]), int(row["seed"]))
            assert key in originals
            assert float(row["throughput_kbps"]) == originals[key].throughput_kbps

    def test_write_results_returns_count(self):
        sweep = small_sweep()
        runs = [r for v in sweep.results.values() for r in v]
        buf = io.StringIO()
        assert write_results_csv(runs, buf) == len(runs)

    def test_series_csv_columns(self):
        text = series_to_csv(
            "load", [100.0, 200.0], {"basic": [1.0, 2.0], "pcmac": [3.0, 4.0]}
        )
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["load", "basic", "pcmac"]
        assert rows[1] == ["100.0", "1.0", "3.0"]
