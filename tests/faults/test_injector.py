"""FaultInjector behaviour: crash/recover edges, channel faults, cleanup.

Runs small end-to-end scenarios (the injector's contract is about what it
does to a *wired* network) and asserts the observable consequences: edge
counters, ``fault.*`` trace records, radio fault-state lifecycle, and
exact determinism of the runtime corruption stream.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import MobilityConfig, ScenarioConfig, TrafficConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec

FAULT_CATEGORIES = (
    "fault.crash",
    "fault.recover",
    "fault.noise",
    "fault.link",
    "fault.corrupt",
)


def line_spec(duration_s: float = 15.0, **fault_params) -> ScenarioSpec:
    """One CBR flow across an 8-node line; node 3 is a mid-path relay."""
    cfg = ScenarioConfig(
        node_count=8,
        duration_s=duration_s,
        seed=7,
        traffic=TrafficConfig(
            flow_count=1, offered_load_bps=100e3, start_time_s=0.5
        ),
        mobility=MobilityConfig(
            speed_mps=0.0, field_width_m=1400.0, field_height_m=100.0
        ),
    )
    return ScenarioSpec(
        cfg=cfg,
        mac=ComponentSpec("basic"),
        placement=ComponentSpec("line", spacing_m=180.0),
        mobility=ComponentSpec("static"),
        faults=ComponentSpec("scripted", **fault_params),
        observability=ComponentSpec(
            "trace", categories=FAULT_CATEGORIES, max_records=2000
        ),
        flow_pairs=((0, 7),),
    )


def strip_wallclock(result):
    return replace(result, wallclock_s=0.0)


class TestCrashRecover:
    def test_crash_and_rejoin_edges(self):
        net = line_spec(crashes=[[3, 4.0, 8.0]]).build()
        injector = net.extras["faults"]
        result = net.run()

        assert injector.stats()["crashes"] == 1
        assert injector.stats()["recoveries"] == 1
        assert net.tracer.count("fault.crash") == 1
        assert net.tracer.count("fault.recover") == 1
        # The node came back: MAC alive, radio listening again.
        mac = net.nodes[3].mac
        assert not getattr(mac, "dead", True)
        assert mac.radio.listener is mac
        # Mid-path relay down on a line = delivery pauses, then resumes.
        rep = result.resilience
        assert rep is not None
        assert len(rep.crashes) == 1
        assert rep.crashes[0].reroute_s is not None
        assert rep.delivery_during_faults < rep.delivery_outside_faults

    def test_permanent_crash_severs_a_line(self):
        result = line_spec(crashes=[[3, 4.0, -1]]).run()
        rep = result.resilience
        # A line has no alternate path: nothing is delivered after the
        # relay dies for good.
        post_crash_bins = [
            r for t, r in zip(rep.times, rep.received) if t > 5.0
        ]
        assert sum(post_crash_bins) == 0

    def test_resilience_bins_cover_the_horizon(self):
        result = line_spec(crashes=[[3, 4.0, 8.0]]).run()
        rep = result.resilience
        assert rep.interval_s == 1.0
        assert rep.times[-1] == pytest.approx(15.0)
        assert len(rep.times) == len(rep.sent) == len(rep.received)
        assert rep.fault_windows == ((4.0, 8.0),)


class TestChannelFaults:
    def test_corruption_kills_delivery_then_uninstalls(self):
        clean = line_spec().run()
        corrupted_spec = line_spec(corrupt=[[0.5, 13.0, 1.0]])
        net = corrupted_spec.build()
        result = net.run()
        # p=1.0 during the window: nothing decodes until it closes.
        assert result.resilience.delivery_during_faults == 0.0
        assert result.received < clean.received
        # Window closed before the horizon: every fault state was removed.
        for node in net.nodes:
            assert node.mac.radio.faults is None
        assert net.tracer.count("fault.corrupt") > 0

    def test_corruption_is_deterministic(self):
        spec = line_spec(corrupt=[[0.5, 13.0, 0.4]])
        first, second = spec.run(), spec.run()
        assert strip_wallclock(first) == strip_wallclock(second)
        assert first.events_executed == second.events_executed

    def test_noise_burst_degrades_decoding(self):
        clean = line_spec().run()
        noisy = line_spec(noise_bursts=[[2.0, 13.0, 1e-9]]).run()
        assert noisy.received < clean.received

    def test_link_fade_breaks_one_hop(self):
        clean = line_spec().run()
        net = line_spec(link_fades=[[3, 4, 2.0, 13.0, 1e-6]]).build()
        faded = net.run()
        # The 3→4 hop is on the only path; fading it to nothing stalls
        # the flow for the window.
        assert faded.received < clean.received
        assert net.tracer.count("fault.link") == 2  # on + off
        for node in net.nodes:
            assert node.mac.radio.faults is None


class TestArming:
    def test_double_arm_raises(self):
        net = line_spec(crashes=[[3, 4.0, 8.0]]).build()
        with pytest.raises(RuntimeError, match="armed"):
            net.extras["faults"].arm(15.0)

    def test_invalid_plan_rejected_at_build_time(self):
        with pytest.raises(ValueError, match="out of range"):
            line_spec(crashes=[[99, 4.0, 8.0]]).build()
