"""The null faults component must be invisible — bit-identical runs.

Mirrors the energy and obs null-identity guards: the ``faults`` slot's
default must add *nothing* — same results, same ``events_executed`` — so
every pre-faults result (and every recorded benchmark baseline) stays
valid.  ``tools/bench_faults.py`` checks the same property against the
full BENCH_engine grid; this is the fast tier-1 version.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.campaign.store import result_from_dict, result_to_dict
from repro.config import ScenarioConfig
from repro.scenariospec import ComponentSpec, ScenarioSpec


def small_cfg(**overrides) -> ScenarioConfig:
    defaults = dict(node_count=10, duration_s=5.0, seed=3)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def strip_wallclock(result):
    """Zero the only legitimately nondeterministic field."""
    return replace(result, wallclock_s=0.0)


class TestNullFaultsIdentity:
    @pytest.mark.parametrize("protocol", ["basic", "pcmac"])
    def test_default_equals_explicit_null(self, protocol):
        default = ScenarioSpec(cfg=small_cfg(), mac=protocol).run()
        explicit = ScenarioSpec(
            cfg=small_cfg(), mac=protocol, faults=ComponentSpec("null")
        ).run()
        assert default.resilience is None and explicit.resilience is None
        assert strip_wallclock(default) == strip_wallclock(explicit)
        assert default.events_executed == explicit.events_executed

    def test_null_faults_wires_nothing(self):
        net = ScenarioSpec(
            cfg=small_cfg(), mac="basic", faults=ComponentSpec("null")
        ).build()
        assert "faults" not in net.extras
        assert "resilience" not in net.extras
        for node in net.nodes:
            assert node.mac.radio.faults is None

    @pytest.mark.parametrize("protocol", ["basic", "pcmac"])
    def test_injection_changes_the_run(self, protocol):
        """The converse guard: a real plan must NOT be a silent no-op."""
        plain = ScenarioSpec(cfg=small_cfg(), mac=protocol).run()
        churned = ScenarioSpec(
            cfg=small_cfg(),
            mac=protocol,
            faults=ComponentSpec("churn", crash_count=2, downtime_s=1.0),
        ).run()
        assert churned.events_executed != plain.events_executed
        assert churned.resilience is not None

    def test_resilience_survives_store_round_trip(self):
        spec = ScenarioSpec(
            cfg=small_cfg(),
            mac="basic",
            faults=ComponentSpec("churn", crash_count=1, downtime_s=1.0),
        )
        result = spec.run()
        assert result.resilience is not None
        restored = result_from_dict(result_to_dict(result))
        assert restored == result
