"""FaultPlan determinism and validation properties.

The load-bearing regression is the hypothesis property: the ``churn``
component's plan must be a pure function of (seed, params) — the whole
BASIC-vs-PCM resilience comparison rests on both protocols seeing the
identical crash schedule at a given seed.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ScenarioConfig
from repro.faults.plan import (
    CorruptionWindow,
    CrashEvent,
    FaultPlan,
    LinkFade,
    NoiseBurst,
)
from repro.registry import registry
from repro.sim.rng import RngRegistry


def churn_plan(
    seed: int,
    *,
    node_count: int = 12,
    duration_s: float = 30.0,
    crash_count: int = 2,
    window_start_s: float = 0.0,
    window_end_s: float = 0.0,
    downtime_s: float = 5.0,
    rejoin: bool = True,
    exclude: tuple[int, ...] = (),
) -> FaultPlan:
    """Invoke the churn factory the way the builder does — fresh streams."""
    cfg = ScenarioConfig(node_count=node_count, duration_s=duration_s, seed=seed)
    ctx = SimpleNamespace(cfg=cfg, rngs=RngRegistry(seed))
    return registry("faults").get("churn").factory(
        ctx,
        crash_count=crash_count,
        window_start_s=window_start_s,
        window_end_s=window_end_s,
        downtime_s=downtime_s,
        rejoin=rejoin,
        exclude=exclude,
        resilience_interval_s=1.0,
    )


class TestChurnDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        crash_count=st.integers(min_value=0, max_value=5),
        downtime_s=st.floats(min_value=0.5, max_value=10.0),
        exclude=st.sets(st.integers(min_value=0, max_value=11), max_size=4),
    )
    def test_plan_is_pure_function_of_seed_and_params(
        self, seed, crash_count, downtime_s, exclude
    ):
        kwargs = dict(
            crash_count=crash_count,
            downtime_s=downtime_s,
            exclude=tuple(sorted(exclude)),
        )
        first = churn_plan(seed, **kwargs)
        second = churn_plan(seed, **kwargs)
        assert first == second

        assert len(first.crashes) == crash_count
        victims = [c.node for c in first.crashes]
        assert len(set(victims)) == crash_count
        for c in first.crashes:
            assert c.node not in exclude
            assert 0 <= c.node < 12
            assert 0.0 <= c.at_s <= 30.0
            assert c.recover_at_s == pytest.approx(c.at_s + downtime_s)
        assert victims == [
            c.node for c in sorted(first.crashes, key=lambda c: (c.at_s, c.node))
        ]

    def test_no_rejoin_means_permanent(self):
        plan = churn_plan(7, crash_count=3, rejoin=False)
        assert all(c.recover_at_s is None for c in plan.crashes)

    def test_window_bounds_respected(self):
        plan = churn_plan(5, crash_count=4, window_start_s=10.0, window_end_s=20.0)
        assert all(10.0 <= c.at_s <= 20.0 for c in plan.crashes)

    def test_spec_level_rebuild_yields_equal_plans(self):
        from repro.scenariospec import ComponentSpec, ScenarioSpec

        spec = ScenarioSpec(
            cfg=ScenarioConfig(node_count=10, duration_s=5.0, seed=11),
            mac=ComponentSpec("basic"),
            faults=ComponentSpec("churn", crash_count=2, downtime_s=1.5),
        )
        assert spec.build().extras["faults"].plan == (
            spec.build().extras["faults"].plan
        )


class TestChurnValidation:
    def test_too_many_crashes_for_candidates(self):
        with pytest.raises(ValueError, match="exceeds"):
            churn_plan(1, node_count=6, crash_count=5, exclude=(0, 1, 2))

    def test_nonpositive_downtime(self):
        with pytest.raises(ValueError, match="downtime"):
            churn_plan(1, downtime_s=0.0)

    def test_empty_window(self):
        with pytest.raises(ValueError, match="window"):
            churn_plan(1, window_start_s=20.0, window_end_s=10.0)


class TestScriptedRows:
    def test_wrong_row_width_is_named(self):
        factory = registry("faults").get("scripted").factory
        ctx = SimpleNamespace()
        with pytest.raises(ValueError, match="crash row needs 3"):
            factory(
                ctx,
                crashes=[[1, 2.0]],
                noise_bursts=(),
                link_fades=(),
                corrupt=(),
                resilience_interval_s=1.0,
            )

    def test_negative_recovery_means_never(self):
        factory = registry("faults").get("scripted").factory
        plan = factory(
            SimpleNamespace(),
            crashes=[[4, 2.0, -1]],
            noise_bursts=(),
            link_fades=(),
            corrupt=(),
            resilience_interval_s=1.0,
        )
        assert plan.crashes == (CrashEvent(node=4, at_s=2.0, recover_at_s=None),)


class TestPlanValidate:
    def test_node_out_of_range(self):
        plan = FaultPlan(crashes=(CrashEvent(node=9, at_s=1.0),))
        with pytest.raises(ValueError, match="out of range"):
            plan.validate(node_count=5, duration_s=10.0)

    def test_crash_beyond_horizon(self):
        plan = FaultPlan(crashes=(CrashEvent(node=0, at_s=99.0),))
        with pytest.raises(ValueError, match="horizon"):
            plan.validate(node_count=5, duration_s=10.0)

    def test_recovery_must_follow_crash(self):
        plan = FaultPlan(
            crashes=(CrashEvent(node=0, at_s=5.0, recover_at_s=5.0),)
        )
        with pytest.raises(ValueError, match="does not follow"):
            plan.validate(node_count=5, duration_s=10.0)

    def test_permanent_crash_cannot_repeat(self):
        plan = FaultPlan(
            crashes=(
                CrashEvent(node=0, at_s=2.0, recover_at_s=None),
                CrashEvent(node=0, at_s=5.0, recover_at_s=None),
            )
        )
        with pytest.raises(ValueError, match="crashes again"):
            plan.validate(node_count=5, duration_s=10.0)

    def test_fade_factor_range(self):
        plan = FaultPlan(
            link_fades=(LinkFade(src=0, dst=1, start_s=1.0, end_s=2.0, factor=1.5),)
        )
        with pytest.raises(ValueError, match="factor"):
            plan.validate(node_count=5, duration_s=10.0)

    def test_corruption_probability_range(self):
        plan = FaultPlan(
            corruption=(CorruptionWindow(start_s=1.0, end_s=2.0, probability=1.5),)
        )
        with pytest.raises(ValueError, match="probability"):
            plan.validate(node_count=5, duration_s=10.0)

    def test_empty_noise_window(self):
        plan = FaultPlan(
            noise_bursts=(NoiseBurst(start_s=2.0, end_s=2.0, noise_w=1e-9),)
        )
        with pytest.raises(ValueError, match="empty"):
            plan.validate(node_count=5, duration_s=10.0)


class TestFaultWindows:
    def test_windows_cover_all_kinds_and_clamp(self):
        plan = FaultPlan(
            crashes=(
                CrashEvent(node=0, at_s=1.0, recover_at_s=3.0),
                CrashEvent(node=1, at_s=6.0, recover_at_s=None),
            ),
            noise_bursts=(NoiseBurst(start_s=2.0, end_s=99.0, noise_w=1e-9),),
            corruption=(CorruptionWindow(start_s=0.5, end_s=1.5, probability=0.5),),
        )
        assert plan.fault_windows(10.0) == (
            (0.5, 1.5),
            (1.0, 3.0),
            (2.0, 10.0),
            (6.0, 10.0),
        )

    def test_empty_plan(self):
        assert FaultPlan().empty
        assert FaultPlan().fault_windows(10.0) == ()
        assert not FaultPlan(crashes=(CrashEvent(node=0, at_s=1.0),)).empty
