"""Static routing tests."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.net.static_routing import StaticRouting


class TestNextHopTable:
    def test_shortest_path_next_hop(self):
        g = nx.path_graph(4)  # 0-1-2-3
        r = StaticRouting(g)
        assert r.next_hop(0, 3) == 1
        assert r.next_hop(1, 3) == 2
        assert r.next_hop(2, 3) == 3

    def test_disconnected_pair_has_no_hop(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        r = StaticRouting(g)
        assert r.next_hop(0, 1) is None

    def test_self_route_absent(self):
        r = StaticRouting(nx.path_graph(3))
        assert r.next_hop(1, 1) is None

    def test_from_positions_builds_disc_graph(self):
        r = StaticRouting.from_positions(
            {0: (0, 0), 1: (100, 0), 2: (200, 0)}, comm_range_m=150.0
        )
        assert r.next_hop(0, 2) == 1  # 0→2 is 200 m: out of range directly

    def test_from_positions_direct_when_in_range(self):
        r = StaticRouting.from_positions(
            {0: (0, 0), 1: (100, 0)}, comm_range_m=150.0
        )
        assert r.next_hop(0, 1) == 1

    def test_views_share_table_but_not_counters(self):
        base = StaticRouting(nx.path_graph(3))
        v1, v2 = base.view(), base.view()
        assert v1.next_hop(0, 2) == v2.next_hop(0, 2) == 1
        v1._unroutable += 1
        assert v2._unroutable == 0
