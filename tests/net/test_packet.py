"""Network packet tests."""

from __future__ import annotations

import pytest

from repro.net.packet import Packet


def packet(**overrides) -> Packet:
    kwargs = dict(
        flow_id=1, seq=1, src=0, dst=5, size_bytes=512, created_at=0.0
    )
    kwargs.update(overrides)
    return Packet(**kwargs)


class TestPacket:
    def test_defaults(self):
        p = packet()
        assert p.kind == "data"
        assert p.hops == 0
        assert p.ttl > 0

    def test_uids_unique(self):
        assert packet().uid != packet().uid

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            packet(size_bytes=0)

    def test_rejects_bad_ttl(self):
        with pytest.raises(ValueError):
            packet(ttl=0)

    def test_session_identity_fields(self):
        """(flow_id, seq) is the identity PCMAC's tables key on."""
        p = packet(flow_id=7, seq=42)
        assert (p.flow_id, p.seq) == (7, 42)
