"""AODV routing table semantics (RFC 3561 §6.2 update rules)."""

from __future__ import annotations

import pytest

from repro.net.aodv.routing_table import AodvRoutingTable


@pytest.fixture
def table() -> AodvRoutingTable:
    return AodvRoutingTable()


class TestLookup:
    def test_empty_lookup(self, table):
        assert table.lookup(5, 0.0) is None

    def test_install_and_lookup(self, table):
        table.update(5, next_hop=2, hop_count=3, dst_seq=1, expires=10.0)
        route = table.lookup(5, 0.0)
        assert route.next_hop == 2
        assert route.hop_count == 3

    def test_expired_route_invisible(self, table):
        table.update(5, 2, 3, 1, expires=10.0)
        assert table.lookup(5, 11.0) is None

    def test_expiry_invalidates_entry(self, table):
        table.update(5, 2, 3, 1, expires=10.0)
        table.lookup(5, 11.0)
        assert not table.entry(5).valid


class TestUpdateRules:
    def test_fresher_seq_replaces(self, table):
        table.update(5, 2, 3, dst_seq=1, expires=10.0)
        assert table.update(5, 9, 5, dst_seq=2, expires=10.0)
        assert table.lookup(5, 0.0).next_hop == 9

    def test_stale_seq_rejected(self, table):
        table.update(5, 2, 3, dst_seq=5, expires=10.0)
        assert not table.update(5, 9, 1, dst_seq=4, expires=10.0)
        assert table.lookup(5, 0.0).next_hop == 2

    def test_equal_seq_shorter_path_wins(self, table):
        table.update(5, 2, 3, dst_seq=1, expires=10.0)
        assert table.update(5, 9, 2, dst_seq=1, expires=10.0)
        assert table.lookup(5, 0.0).next_hop == 9

    def test_equal_seq_longer_path_rejected(self, table):
        table.update(5, 2, 3, dst_seq=1, expires=10.0)
        assert not table.update(5, 9, 4, dst_seq=1, expires=10.0)

    def test_same_route_refreshes_lifetime(self, table):
        table.update(5, 2, 3, dst_seq=1, expires=10.0)
        table.update(5, 2, 3, dst_seq=1, expires=20.0)
        assert table.entry(5).expires == 20.0

    def test_invalid_route_always_replaceable(self, table):
        table.update(5, 2, 3, dst_seq=5, expires=10.0)
        table.invalidate(5)
        assert table.update(5, 9, 7, dst_seq=1, expires=10.0)


class TestRefresh:
    def test_refresh_extends_active_route(self, table):
        table.update(5, 2, 3, 1, expires=10.0)
        table.refresh(5, now=8.0, lifetime_s=10.0)
        assert table.entry(5).expires == 18.0

    def test_refresh_never_shortens(self, table):
        table.update(5, 2, 3, 1, expires=100.0)
        table.refresh(5, now=0.0, lifetime_s=10.0)
        assert table.entry(5).expires == 100.0


class TestInvalidation:
    def test_invalidate_via_collects_broken_routes(self, table):
        table.update(5, 2, 3, 1, expires=10.0)
        table.update(6, 2, 4, 1, expires=10.0)
        table.update(7, 3, 2, 1, expires=10.0)
        broken = table.invalidate_via(2)
        assert sorted(r.dst for r in broken) == [5, 6]
        assert table.lookup(7, 0.0) is not None

    def test_invalidate_via_bumps_seq(self, table):
        """RFC §6.11: the destination seq increments on invalidation so the
        RERR convinces upstream nodes."""
        table.update(5, 2, 3, dst_seq=4, expires=10.0)
        (broken,) = table.invalidate_via(2)
        assert broken.dst_seq == 5

    def test_invalidate_specific_destination(self, table):
        table.update(5, 2, 3, 1, expires=10.0)
        table.invalidate(5, dst_seq=9)
        assert table.lookup(5, 0.0) is None
        assert table.entry(5).dst_seq == 9

    def test_precursors_survive_reinstall(self, table):
        table.update(5, 2, 3, 1, expires=10.0)
        table.add_precursor(5, 8)
        table.invalidate(5)
        table.update(5, 4, 2, 2, expires=10.0)
        assert 8 in table.entry(5).precursors


class TestValidRoutes:
    def test_only_live_routes_listed(self, table):
        table.update(5, 2, 3, 1, expires=10.0)
        table.update(6, 2, 3, 1, expires=1.0)
        table.update(7, 2, 3, 1, expires=10.0)
        table.invalidate(7)
        assert [r.dst for r in table.valid_routes(5.0)] == [5]
