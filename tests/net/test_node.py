"""Node container tests: delivery, forwarding, TTL, drop attribution."""

from __future__ import annotations

import pytest

from repro.metrics.collector import MetricsCollector
from repro.mobility.static import StaticMobility
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.routing_base import RoutingProtocol
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


class RecordingRouting(RoutingProtocol):
    """Captures routing calls."""

    def __init__(self):
        self.routed = []
        self.failures = []
        self.control = []

    def route_packet(self, packet):
        self.routed.append(packet)

    def on_mac_failure(self, packet, next_hop):
        self.failures.append((packet, next_hop))

    def on_packet(self, packet, from_node):
        self.control.append((packet, from_node))


class RecordingMac:
    """Captures MAC calls; provides the callbacks Node wires."""

    def __init__(self):
        self.enqueued = []
        self.deliver_up = None
        self.on_link_failure = None
        self.name = "fake"

    def enqueue_packet(self, packet, next_hop, needs_ack=True):
        self.enqueued.append((packet, next_hop))
        return True

    def on_route_event(self, event, neighbour):
        pass


@pytest.fixture
def node():
    sim = Simulator()
    mac = RecordingMac()
    routing = RecordingRouting()
    n = Node(
        sim,
        5,
        mobility=StaticMobility((1.0, 2.0)),
        mac=mac,
        routing=routing,
        metrics=MetricsCollector(),
        rngs=RngRegistry(1),
    )
    return n


def pkt(dst=5, kind="data", ttl=8, flow=0, seq=1):
    return Packet(
        flow_id=flow, seq=seq, src=0, dst=dst, size_bytes=512,
        created_at=0.0, kind=kind, ttl=ttl,
    )


class TestDelivery:
    def test_data_for_me_reaches_metrics(self, node):
        p = pkt(dst=5)
        node.metrics.on_app_send(p)
        node._on_mac_deliver(p, from_node=3)
        assert node.metrics.total_received == 1

    def test_aodv_packet_goes_to_routing(self, node):
        p = pkt(dst=5, kind="aodv")
        node._on_mac_deliver(p, from_node=3)
        assert node.routing.control == [(p, 3)]
        assert node.metrics.total_received == 0

    def test_foreign_data_is_forwarded(self, node):
        p = pkt(dst=9, ttl=8)
        node._on_mac_deliver(p, from_node=3)
        assert node.routing.routed == [p]
        assert p.ttl == 7
        assert p.hops == 1

    def test_ttl_expiry_drops(self, node):
        p = pkt(dst=9, ttl=1)
        node.metrics.on_app_send(p)
        node._on_mac_deliver(p, from_node=3)
        assert node.routing.routed == []
        assert node.metrics.drop_breakdown()["ttl_expired"] == 1

    def test_delivery_counts_final_hop(self, node):
        p = pkt(dst=5)
        node.metrics.on_app_send(p)
        node._on_mac_deliver(p, from_node=3)
        assert p.hops == 1


class TestSendPath:
    def test_app_send_routes_and_counts(self, node):
        p = pkt(dst=9)
        node.app_send(p)
        assert node.metrics.total_sent == 1
        assert node.routing.routed == [p]

    def test_mac_send_enqueues(self, node):
        p = pkt(dst=9)
        node.mac_send(p, next_hop=2)
        assert node.mac.enqueued == [(p, 2)]

    def test_mac_failure_propagates_to_routing(self, node):
        p = pkt(dst=9)
        node._on_mac_failure(p, 2)
        assert node.routing.failures == [(p, 2)]

    def test_position_from_mobility(self, node):
        assert node.position == (1.0, 2.0)
