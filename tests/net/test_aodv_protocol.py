"""AODV protocol behaviour over the full stack (static topologies)."""

from __future__ import annotations

import pytest

from repro.config import MobilityConfig, ScenarioConfig, TrafficConfig
from repro.experiments.scenario import build_network
from repro.mobility.placement import line_positions


def chain_network(protocol="basic", hops=3, spacing=150.0, load_kbps=40.0,
                  duration=15.0, flow=None):
    """A line of nodes spaced inside decode range; one end-to-end flow."""
    n = hops + 1
    cfg = ScenarioConfig(
        node_count=n,
        duration_s=duration,
        seed=3,
        traffic=TrafficConfig(flow_count=1, offered_load_bps=load_kbps * 1000),
        mobility=MobilityConfig(speed_mps=0.0),
    )
    return build_network(
        cfg,
        protocol,
        positions=line_positions(n, spacing),
        mobile=False,
        routing="aodv",
        flow_pairs=[flow or (0, n - 1)],
    )


class TestRouteDiscovery:
    def test_multihop_chain_delivers(self):
        net = chain_network(hops=3)
        r = net.run()
        assert r.delivery_ratio > 0.95
        # Spacing 150 m forces true multihop: ≥ 3 MAC hops per packet.
        flow = net.metrics.flows[0]
        assert flow.avg_hops == pytest.approx(3.0, abs=0.01)

    def test_discovery_emits_one_rreq_flood(self):
        net = chain_network(hops=3, duration=5.0)
        r = net.run()
        assert r.routing_totals["rreq_originated"] >= 1
        assert r.routing_totals["rrep_sent"] >= 1

    def test_intermediate_nodes_forward(self):
        net = chain_network(hops=3, duration=5.0)
        r = net.run()
        assert r.routing_totals["data_forwarded"] > 0

    def test_single_hop_needs_no_forwarding(self):
        net = chain_network(hops=1, duration=5.0)
        r = net.run()
        assert r.delivery_ratio > 0.95
        assert r.routing_totals.get("data_forwarded", 0) == 0

    def test_unreachable_destination_drops_with_no_route(self):
        """A node beyond every radio horizon can never be found."""
        cfg = ScenarioConfig(
            node_count=3,
            duration_s=10.0,
            seed=3,
            traffic=TrafficConfig(flow_count=1, offered_load_bps=40e3),
            mobility=MobilityConfig(speed_mps=0.0),
        )
        net = build_network(
            cfg,
            "basic",
            positions=[(0, 0), (150, 0), (5000, 0)],
            mobile=False,
            routing="aodv",
            flow_pairs=[(0, 2)],
        )
        r = net.run()
        assert r.received == 0
        assert r.drops.get("no_route", 0) > 0
        assert r.routing_totals["discovery_failures"] >= 1


class TestAllProtocolsOverAodv:
    @pytest.mark.parametrize("protocol", ["basic", "scheme1", "scheme2", "pcmac"])
    def test_chain_delivery_per_protocol(self, protocol):
        net = chain_network(protocol=protocol, hops=2)
        r = net.run()
        assert r.delivery_ratio > 0.9, f"{protocol} failed on a quiet chain"


class TestPcmacRouteHooks:
    def test_rrep_resets_receiver_table_entries(self):
        """PCMAC: the paper's table-maintenance on RREP traffic is wired
        through AODV (smoke: the run completes with tables consistent)."""
        net = chain_network(protocol="pcmac", hops=2, duration=5.0)
        r = net.run()
        assert r.delivery_ratio > 0.9
        assert r.routing_totals["rrep_sent"] >= 1
