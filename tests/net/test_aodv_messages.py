"""AODV message wire-format tests."""

from __future__ import annotations

from repro.net.aodv.messages import (
    RERR_BASE_SIZE,
    RERR_PER_DEST,
    RErrMessage,
    RRepMessage,
    RReqMessage,
)


class TestRreq:
    def test_rfc_size(self):
        msg = RReqMessage(1, 0, 1, 5, None, 0)
        assert msg.size_bytes == 24

    def test_hopped_increments_only_hop_count(self):
        msg = RReqMessage(1, 0, 1, 5, 3, 2)
        nxt = msg.hopped()
        assert nxt.hop_count == 3
        assert (nxt.rreq_id, nxt.origin, nxt.dst, nxt.dst_seq) == (1, 0, 5, 3)

    def test_immutability(self):
        msg = RReqMessage(1, 0, 1, 5, None, 0)
        try:
            msg.hop_count = 9
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestRrep:
    def test_rfc_size(self):
        assert RRepMessage(0, 5, 2, 0, 10.0).size_bytes == 20

    def test_hopped_preserves_lifetime(self):
        msg = RRepMessage(0, 5, 2, 1, 10.0)
        assert msg.hopped().lifetime_s == 10.0
        assert msg.hopped().hop_count == 2


class TestRerr:
    def test_size_scales_with_destinations(self):
        one = RErrMessage(unreachable=((5, 2),))
        three = RErrMessage(unreachable=((5, 2), (6, 1), (7, 9)))
        assert one.size_bytes == RERR_BASE_SIZE + RERR_PER_DEST
        assert three.size_bytes == RERR_BASE_SIZE + 3 * RERR_PER_DEST
