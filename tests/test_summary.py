"""Efficiency summary tests."""

from __future__ import annotations

import pytest

from repro.experiments.scenario import ExperimentResult
from repro.metrics.summary import efficiency_table, summarise_efficiency


def result(**overrides) -> ExperimentResult:
    kwargs = dict(
        protocol="basic",
        offered_load_kbps=600.0,
        duration_s=10.0,
        throughput_kbps=400.0,
        avg_delay_ms=100.0,
        delivery_ratio=0.9,
        fairness=0.95,
        sent=1000,
        received=900,
        drops={},
        mac_totals={
            "tx_energy_j": 2.0,
            "airtime_control_s": 1.0,
            "airtime_data_s": 3.0,
            "data_sent": 1800.0,
        },
        routing_totals={},
        events_executed=1,
        wallclock_s=0.1,
    )
    kwargs.update(overrides)
    return ExperimentResult(**kwargs)


class TestSummarise:
    def test_energy_per_bit(self):
        s = summarise_efficiency(result())
        # 400 kbps × 10 s = 4e6 bits; 2 J / 4e6 = 5e-7 J/bit.
        assert s.energy_per_bit_j == pytest.approx(5e-7)

    def test_control_airtime_fraction(self):
        s = summarise_efficiency(result())
        assert s.control_airtime_fraction == pytest.approx(0.25)

    def test_data_tx_per_delivery(self):
        s = summarise_efficiency(result())
        assert s.data_tx_per_delivery == pytest.approx(2.0)

    def test_zero_delivery_is_safe(self):
        s = summarise_efficiency(
            result(throughput_kbps=0.0, received=0)
        )
        assert s.energy_per_bit_j == 0.0

    def test_table_renders_all_protocols(self):
        table = efficiency_table({"basic": result(), "pcmac": result(protocol="pcmac")})
        assert "basic" in table
        assert "pcmac" in table
        assert "J/Mbit" in table
