"""CLI smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_ranges_command(self, capsys):
        assert main(["ranges"]) == 0
        out = capsys.readouterr().out
        assert "281.80" in out
        assert "decode 250.0 m" in out

    def test_quickrun_command(self, capsys):
        code = main([
            "quickrun", "--protocol", "basic", "--nodes", "6",
            "--duration", "4", "--load-kbps", "80",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "thr=" in out
        assert "fairness" in out

    def test_quickrun_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            main(["quickrun", "--protocol", "tdma"])

    def test_figure8_tiny(self, capsys):
        code = main([
            "figure8", "--scale", "quick", "--seeds", "1",
            "--loads", "80,160", "--nodes", "8", "--duration", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "basic (paper)" in out
        assert "Figure 8" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
