"""CLI smoke tests."""

from __future__ import annotations

import pathlib

import pytest

from repro.cli import main

EXAMPLE_SPEC = (
    pathlib.Path(__file__).resolve().parent.parent
    / "examples"
    / "grid_poisson.spec.json"
)

BATTERY_SPEC = EXAMPLE_SPEC.parent / "battery_lifetime.spec.json"


class TestCli:
    def test_ranges_command(self, capsys):
        assert main(["ranges"]) == 0
        out = capsys.readouterr().out
        assert "281.80" in out
        assert "decode 250.0 m" in out

    def test_quickrun_command(self, capsys):
        code = main([
            "quickrun", "--protocol", "basic", "--nodes", "6",
            "--duration", "4", "--load-kbps", "80",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "thr=" in out
        assert "fairness" in out

    def test_quickrun_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            main(["quickrun", "--protocol", "tdma"])

    def test_figure8_tiny(self, capsys):
        code = main([
            "figure8", "--scale", "quick", "--seeds", "1",
            "--loads", "80,160", "--nodes", "8", "--duration", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "basic (paper)" in out
        assert "Figure 8" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


#: Golden registry contents: ``repro list`` must show exactly these
#: components per slot.  A failure here means a component was added
#: (extend the table) or silently disappeared (a regression).
GOLDEN_COMPONENTS = {
    "mac": ["basic", "pcmac", "scheme1", "scheme2"],
    "placement": ["cluster", "explicit", "grid", "line", "uniform"],
    "mobility": ["static", "waypoint"],
    "routing": ["aodv", "static"],
    "traffic": ["cbr", "poisson"],
    "propagation": ["free_space", "log_distance", "two_ray"],
    "energy": ["null", "wavelan"],
    "observability": ["flight", "null", "probes", "trace"],
    "faults": ["churn", "null", "scripted"],
    "reception": ["null", "sinr"],
    "engine": ["default", "turbo"],
}


class TestListCommand:
    def parse(self, out: str) -> dict[str, list[str]]:
        slots: dict[str, list[str]] = {}
        current = None
        for line in out.splitlines():
            if line.endswith(":") and not line.startswith(" "):
                current = line[:-1]
                slots[current] = []
            elif line.startswith("  ") and current and "params:" not in line:
                slots[current].append(line.split()[0])
        return slots

    def test_golden_registry_listing(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert self.parse(out) == GOLDEN_COMPONENTS

    def test_param_schemas_shown(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "clusters:int=4" in out
        assert "exponent:float=2.7" in out


class TestScenarioFile:
    def test_quick_runs_checked_in_spec(self, capsys):
        """A scenario defined purely as data runs end-to-end from a file."""
        assert main(["quick", "--scenario", str(EXAMPLE_SPEC)]) == 0
        out = capsys.readouterr().out
        assert "placement=grid" in out
        assert "traffic=poisson" in out
        assert "key: " in out
        assert "thr=" in out

    def test_quickrun_alias_still_works(self, capsys):
        code = main([
            "quickrun", "--protocol", "basic", "--nodes", "6",
            "--duration", "3", "--load-kbps", "80",
        ])
        assert code == 0
        assert "thr=" in capsys.readouterr().out

    def test_energy_command_prints_per_node_table(self, capsys):
        """Golden shape of `repro energy`: header, per-node rows, deaths."""
        assert main(["energy", "--scenario", str(BATTERY_SPEC)]) == 0
        out = capsys.readouterr().out
        assert "energy model: wavelan(battery_j=30.0)" in out
        assert "key: " in out
        # Table header and the aggregate row.
        for column in ("tx J", "rx J", "idle J", "sleep J", "total J",
                       "radiated J", "left J", "died at"):
            assert column in out
        assert "total" in out
        # The 30 J batteries cannot survive the 40 s horizon at ≥1.15 W.
        assert "deaths: 6 node(s)" in out
        assert "full-stack energy per delivered bit:" in out

    def test_energy_command_without_accounting_explains(self, capsys, tmp_path):
        """A null-energy spec still runs and says what is missing."""
        from repro.config import ScenarioConfig
        from repro.scenariospec import ScenarioSpec

        spec = ScenarioSpec(cfg=ScenarioConfig(node_count=6, duration_s=2.0))
        path = tmp_path / "plain.spec.json"
        spec.save(path)
        assert main(["energy", "--scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no energy accounting in this run" in out

    def test_energy_command_requires_scenario(self):
        with pytest.raises(SystemExit):
            main(["energy"])

    def test_trace_command_prints_records(self, capsys):
        """Golden shape of `repro trace`: counters line + record rows."""
        assert main(["trace", "--scenario", str(EXAMPLE_SPEC),
                     "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "categories: app.tx, app.rx" in out
        assert "counters: " in out
        assert "app.tx=" in out
        # Record rows render as "  <time>  n<node> <category> k=v ...".
        assert any(" app.tx " in ln or " mac.handshake " in ln
                   for ln in out.splitlines())

    def test_trace_command_exports_jsonl(self, capsys, tmp_path):
        """--out streams every record to disk and reports zero dropped."""
        import json

        out_path = tmp_path / "trace.jsonl"
        assert main(["trace", "--scenario", str(EXAMPLE_SPEC),
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "(dropped: 0)" in out
        lines = out_path.read_text().splitlines()
        assert lines
        rec = json.loads(lines[0])
        assert {"time", "category", "node"} <= rec.keys()

    def test_trace_rejects_empty_categories(self, capsys):
        assert main(["trace", "--scenario", str(EXAMPLE_SPEC),
                     "--categories", ""]) == 2

    def test_stats_command_prints_gauge_table(self, capsys):
        """Golden shape of `repro stats`: one summary row per gauge."""
        assert main(["stats", "--scenario", str(EXAMPLE_SPEC),
                     "--interval", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "observability: probes(interval_s=1.0)" in out
        assert "timeseries:" in out
        for gauge in ("ifq_depth", "cw", "tx_power_w", "radio_state",
                      "battery_j", "route_count", "rx_drops"):
            assert gauge in out

    def test_stats_profile_prints_kernel_attribution(self, capsys):
        assert main(["stats", "--scenario", str(EXAMPLE_SPEC),
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "observability: flight(" in out
        assert "event kind" in out
        assert "ev/s attributed" in out

    def test_stats_node_drilldown(self, capsys):
        assert main(["stats", "--scenario", str(EXAMPLE_SPEC),
                     "--gauges", "cw", "--node", "0"]) == 0
        out = capsys.readouterr().out
        assert "cw:" in out
        assert "trend" in out

    def test_campaign_live_streams_progress(self, capsys, tmp_path):
        """--live renders heartbeat lines and persists runtime stats."""
        from repro.campaign.store import ResultStore

        store_dir = tmp_path / "store"
        assert main([
            "campaign", "--protocols", "basic", "--loads", "80",
            "--seeds", "1", "--nodes", "6", "--duration", "4",
            "--live", "--store", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "done " in out  # the final heartbeat line
        assert "ev/s" in out
        store = ResultStore(store_dir)
        (key,) = store.keys()
        stats = store.runtime_stats(key)
        assert stats["events"] > 0
        assert stats["wall_s"] > 0

    def test_scenario_key_matches_campaign_addressing(self, capsys, tmp_path):
        """quick --scenario and a RunSpec of the same spec share a key."""
        from repro.campaign.spec import RunSpec
        from repro.scenariospec import ScenarioSpec

        spec = ScenarioSpec.load(EXAMPLE_SPEC)
        main(["quick", "--scenario", str(EXAMPLE_SPEC)])
        out = capsys.readouterr().out
        (key_line,) = [ln for ln in out.splitlines() if "key: " in ln]
        assert key_line.split("key: ")[1].strip() == RunSpec(scenario=spec).key()


class TestFleetCli:
    """`repro fleet serve|work|status|compact` end to end on a tmp store."""

    GRID = ["--protocols", "basic", "--loads", "80", "--seeds", "1",
            "--nodes", "6", "--duration", "4"]

    def test_serve_then_status_then_compact(self, capsys, tmp_path):
        from repro.fleet import ShardedResultStore

        store_dir = str(tmp_path / "store")
        assert main(["fleet", "serve", store_dir, *self.GRID,
                     "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "fleet serve: 1 cells" in out
        assert "done: 1 simulated" in out
        store = ShardedResultStore(store_dir)
        assert len(store) == 1

        assert main(["fleet", "status", store_dir]) == 0
        out = capsys.readouterr().out
        assert "fleet: 0 task(s) queued" in out
        assert "1 result(s)" in out
        assert "exited" in out  # the serve worker's last heartbeat

        assert main(["fleet", "compact", store_dir]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out
        assert set(ShardedResultStore(store_dir).keys()) == set(store.keys())

    def test_serve_resume_is_cached(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        assert main(["fleet", "serve", store_dir, *self.GRID,
                     "--jobs", "1"]) == 0
        capsys.readouterr()
        assert main(["fleet", "serve", store_dir, *self.GRID,
                     "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "done: 0 simulated, 1 cached" in out

    def test_work_drains_an_enqueued_run(self, capsys, tmp_path):
        from repro.campaign.spec import Campaign
        from repro.config import ScenarioConfig
        from repro.fleet import WorkQueue, enqueue_specs, open_store

        store = open_store(tmp_path / "store", shards=4)
        queue = WorkQueue(store.root / "fleet")
        campaign = Campaign.build(
            ScenarioConfig(node_count=6, duration_s=4.0),
            ["basic"], [80.0], [1],
        )
        enqueue_specs(campaign.specs(), store, queue)
        assert main(["fleet", "work", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "executed=1" in out
        assert queue.drained()

    def test_work_on_empty_queue_exits_cleanly(self, capsys, tmp_path):
        assert main(["fleet", "work", str(tmp_path / "store")]) == 0
        assert "executed=0" in capsys.readouterr().out

    def test_status_stop_round_trip(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        assert main(["fleet", "status", store_dir, "--stop"]) == 0
        assert "STOP requested" in capsys.readouterr().out
        assert main(["fleet", "status", store_dir, "--clear-stop"]) == 0
        assert "STOP requested" not in capsys.readouterr().out

    def test_compact_refuses_flat_store(self, capsys, tmp_path):
        from repro.campaign.store import ResultStore

        ResultStore(tmp_path / "flat")
        assert main(["fleet", "compact", str(tmp_path / "flat")]) == 2
        assert "flat" in capsys.readouterr().err

    def test_fleet_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["fleet"])
