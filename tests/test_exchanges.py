"""Exchange reconstruction tests — synthetic traces and live harness runs."""

from __future__ import annotations

import pytest

from repro.analysis.exchanges import (
    Exchange,
    exchange_summary,
    reconstruct_exchanges,
)
from repro.core.pcmac import PcmacMac
from repro.sim.trace import TraceRecord
from tests.mac.harness import FakePacket, MacHarness


def rec(time, kind, node, dst, power=0.1):
    return TraceRecord(
        time, "mac.handshake", node,
        (("kind", kind), ("dst", dst), ("power_w", power)),
    )


class TestSyntheticTraces:
    def test_four_way_exchange(self):
        records = [
            rec(0.000, "RTS", 0, 1),
            rec(0.001, "CTS", 1, 0),
            rec(0.002, "DATA", 0, 1),
            rec(0.005, "ACK", 1, 0),
        ]
        (ex,) = reconstruct_exchanges(records)
        assert ex.frames == ["RTS", "CTS", "DATA", "ACK"]
        assert ex.completed_data
        assert not ex.three_way
        assert ex.duration_s == pytest.approx(0.005)

    def test_three_way_exchange(self):
        records = [
            rec(0.000, "RTS", 0, 1),
            rec(0.001, "CTS", 1, 0),
            rec(0.002, "DATA", 0, 1),
        ]
        (ex,) = reconstruct_exchanges(records)
        assert ex.three_way

    def test_failed_exchange_has_no_cts(self):
        records = [rec(0.000, "RTS", 0, 1)]
        (ex,) = reconstruct_exchanges(records)
        assert ex.frames == ["RTS"]
        assert not ex.completed_data

    def test_interleaved_pairs_kept_separate(self):
        records = [
            rec(0.000, "RTS", 0, 1),
            rec(0.0001, "RTS", 2, 3),
            rec(0.001, "CTS", 1, 0),
            rec(0.0011, "CTS", 3, 2),
            rec(0.002, "DATA", 0, 1),
            rec(0.0021, "DATA", 2, 3),
        ]
        exchanges = reconstruct_exchanges(records)
        assert len(exchanges) == 2
        assert all(e.completed_data for e in exchanges)

    def test_broadcast_data_ignored(self):
        records = [rec(0.0, "DATA", 0, -1)]
        assert reconstruct_exchanges(records) == []

    def test_stale_cts_not_attached(self):
        records = [
            rec(0.000, "RTS", 0, 1),
            rec(0.500, "CTS", 1, 0),  # far beyond the gap window
        ]
        (ex,) = reconstruct_exchanges(records)
        assert ex.frames == ["RTS"]

    def test_summary_rates(self):
        records = [
            rec(0.000, "RTS", 0, 1),
            rec(0.001, "CTS", 1, 0),
            rec(0.002, "DATA", 0, 1),
            rec(0.010, "RTS", 0, 1),  # failed exchange
        ]
        summary = exchange_summary(reconstruct_exchanges(records))
        assert summary["count"] == 2
        assert summary["completed"] == 1
        assert summary["completion_rate"] == 0.5
        assert summary["three_way_rate"] == 1.0

    def test_empty_summary(self):
        assert exchange_summary([])["count"] == 0


class TestLiveTraces:
    def test_pcmac_run_reconstructs_three_way(self, tracer):
        h = MacHarness([(0, 0), (100, 0)], mac_cls=PcmacMac, tracer=tracer)
        for k in range(3):
            h.send(0, 1, FakePacket(flow_id=1, seq=k + 1, kind="data"))
        h.run(1.0)
        exchanges = reconstruct_exchanges(tracer.records)
        assert len(exchanges) == 3
        assert all(e.three_way for e in exchanges)

    def test_basic_run_reconstructs_four_way(self, tracer):
        h = MacHarness([(0, 0), (100, 0)], tracer=tracer)
        h.send(0, 1)
        h.run(1.0)
        (ex,) = reconstruct_exchanges(tracer.records)
        assert ex.frames == ["RTS", "CTS", "DATA", "ACK"]

    def test_power_learning_visible_in_exchanges(self, tracer):
        h = MacHarness([(0, 0), (60, 0)], mac_cls=PcmacMac, tracer=tracer)
        h.send(0, 1, FakePacket(seq=1, kind="data"))
        h.run(0.5)
        h.send(0, 1, FakePacket(seq=2, kind="data"))
        h.run(0.5)
        first, second = reconstruct_exchanges(tracer.records)
        assert first.rts_power_w == pytest.approx(0.2818)  # cold start
        assert second.rts_power_w < first.rts_power_w      # learned
