"""Metrics collector and fairness tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.collector import MetricsCollector
from repro.metrics.fairness import jain_index
from repro.net.packet import Packet


def pkt(flow=0, seq=1, created=0.0, size=512) -> Packet:
    return Packet(
        flow_id=flow, seq=seq, src=0, dst=1, size_bytes=size, created_at=created
    )


class TestCollector:
    def test_send_receive_accounting(self):
        m = MetricsCollector()
        p = pkt()
        m.on_app_send(p)
        m.on_app_receive(p, now=0.5)
        assert m.total_sent == 1
        assert m.total_received == 1
        assert m.delivery_ratio() == 1.0

    def test_throughput_kbps(self):
        m = MetricsCollector()
        for k in range(10):
            p = pkt(seq=k, size=512)
            m.on_app_send(p)
            m.on_app_receive(p, now=1.0)
        # 10 × 512 B = 40.96 kbit over 2 s → 20.48 kbps.
        assert m.throughput_kbps(2.0) == pytest.approx(20.48)

    def test_delay_ms(self):
        m = MetricsCollector()
        p = pkt(created=1.0)
        m.on_app_send(p)
        m.on_app_receive(p, now=1.25)
        assert m.avg_delay_ms() == pytest.approx(250.0)

    def test_duplicates_counted_once(self):
        m = MetricsCollector()
        p = pkt()
        m.on_app_send(p)
        m.on_app_receive(p, now=0.5)
        m.on_app_receive(p, now=0.6)
        assert m.total_received == 1
        assert m.flows[0].duplicates == 1

    def test_drop_attribution_only_for_data(self):
        m = MetricsCollector()
        m.on_drop(pkt(), "link_break")
        aodv = Packet(flow_id=-1, seq=1, src=0, dst=1, size_bytes=24,
                      created_at=0.0, kind="aodv")
        m.on_drop(aodv, "link_break")
        assert m.drop_breakdown()["link_break"] == 1

    def test_per_flow_throughput(self):
        m = MetricsCollector()
        for flow, n in ((0, 4), (1, 2)):
            for k in range(n):
                p = pkt(flow=flow, seq=k)
                m.on_app_send(p)
                m.on_app_receive(p, now=1.0)
        tp = m.per_flow_throughput_kbps(1.0)
        assert tp[0] == pytest.approx(2 * tp[1])

    def test_hops_tracked(self):
        m = MetricsCollector()
        p = pkt()
        p.hops = 3
        m.on_app_send(p)
        m.on_app_receive(p, now=0.5)
        assert m.flows[0].avg_hops == 3.0

    def test_rejects_nonpositive_duration(self):
        m = MetricsCollector()
        with pytest.raises(ValueError):
            m.throughput_kbps(0.0)

    def test_empty_collector_reports_zeroes(self):
        m = MetricsCollector()
        assert m.delivery_ratio() == 0.0
        assert m.avg_delay_ms() == 0.0
        assert m.throughput_kbps(1.0) == 0.0


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_total_unfairness(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_is_zero(self):
        assert jain_index([]) == 0.0

    def test_all_zero_is_zero(self):
        assert jain_index([0.0, 0.0]) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_property_bounds(self, values):
        idx = jain_index(values)
        assert 0.0 <= idx <= 1.0 + 1e-12

    @given(
        st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=1e-3, max_value=100.0),
    )
    def test_property_scale_invariant(self, values, scale):
        assert jain_index(values) == pytest.approx(
            jain_index([v * scale for v in values]), rel=1e-6
        )
