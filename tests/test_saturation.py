"""Saturation-point search tests."""

from __future__ import annotations

import pytest

from repro.config import MobilityConfig, ScenarioConfig, TrafficConfig
from repro.experiments.saturation import find_saturation
from repro.mobility.placement import line_positions


def tiny_cfg() -> ScenarioConfig:
    # A 100 m × 100 m field guarantees the two nodes share a link.
    return ScenarioConfig(
        node_count=2,
        duration_s=5.0,
        seed=1,
        traffic=TrafficConfig(flow_count=1, offered_load_bps=100e3),
        mobility=MobilityConfig(
            speed_mps=0.0, field_width_m=100.0, field_height_m=100.0
        ),
    )


class TestFindSaturation:
    def test_single_link_saturates_near_channel_capacity(self):
        """One 2 Mbps link with RTS/CTS overhead saturates near ~1.4 Mbps."""
        point = find_saturation(
            tiny_cfg(),
            "basic",
            start_kbps=400.0,
            step_kbps=400.0,
            max_kbps=2400.0,
        )
        assert 800.0 <= point.throughput_kbps <= 1800.0
        assert point.probes[-1][0] <= 2400.0

    def test_knee_throughput_is_max_probed(self):
        point = find_saturation(
            tiny_cfg(), "basic", start_kbps=400.0, step_kbps=400.0,
            max_kbps=2000.0,
        )
        assert point.throughput_kbps == pytest.approx(
            max(thr for _, thr in point.probes)
        )

    def test_probe_sequence_is_ascending_in_load(self):
        point = find_saturation(
            tiny_cfg(), "basic", start_kbps=200.0, step_kbps=200.0,
            max_kbps=1000.0,
        )
        loads = [load for load, _ in point.probes]
        assert loads == sorted(loads)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            find_saturation(tiny_cfg(), "basic", start_kbps=0.0)
        with pytest.raises(ValueError):
            find_saturation(tiny_cfg(), "basic", step_kbps=-1.0)
