#!/usr/bin/env python3
"""Guard the observability layer's hot-path cost against ``BENCH_engine.json``.

The flight recorder touches the two hottest paths in the simulator — the
trace emit sites inside the MAC/PHY handlers and the kernel dispatch loop —
so this harness proves three things about it:

* **Bit-identity (null).** With the default ``null`` observability component
  every ``BENCH_engine.json`` cell executes *exactly* the event count the
  engine benchmark recorded: no events, no schedule change, the only cost is
  the pre-existing ``h.store`` flag check.
* **Passivity (trace).** A run with trace categories *enabled* must still
  execute the identical event count — recording observes dispatch, it never
  schedules.  Its throughput cost is reported informationally.
* **Determinism (probes).** A probed run adds exactly the arithmetic number
  of sampler ticks (``floor(duration/interval) + 1``) and nothing else.

Throughput is judged on the **geometric mean across all cells** of the null
cells vs the recorded PR-4 numbers (default budget 2 %) — per-cell wall
clock on a shared machine swings ±10-15 % run to run.  Wall-clock checks
are only meaningful on the machine that produced the baseline; the event
-count identities are deterministic everywhere, which is what
``--events-only`` runs in CI::

    PYTHONPATH=src python tools/bench_obs.py               # report + BENCH_obs.json
    PYTHONPATH=src python tools/bench_obs.py --check       # fail if >2% slower (geomean)
    PYTHONPATH=src python tools/bench_obs.py --events-only --check   # CI: identities only
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from dataclasses import replace  # noqa: E402

from repro.config import ScenarioConfig  # noqa: E402
from repro.scenariospec import ComponentSpec, ScenarioSpec  # noqa: E402

#: Mirrors tools/bench_engine.py — the cells BENCH_engine.json records.
DURATIONS_S = {10: 25.0, 50: 4.0, 200: 2.5}
PROTOCOLS = ("basic", "pcmac")
MOBILITIES = (("static", False), ("mobile", True))
SEED = 7

#: Categories for the passive-trace cell (the `repro trace` default set).
TRACE_CATEGORIES = ("app.tx", "app.rx", "mac.drop", "net.drop", "mac.handshake")

PROBE_INTERVAL_S = 1.0


def _spec(protocol: str, mobile: bool, n: int, obs: ComponentSpec) -> ScenarioSpec:
    cfg = replace(
        ScenarioConfig(), node_count=n, duration_s=DURATIONS_S[n], seed=SEED
    )
    return ScenarioSpec(
        cfg=cfg,
        mac=ComponentSpec(protocol),
        mobility=ComponentSpec("waypoint" if mobile else "static"),
        observability=obs,
    )


def run_cell(
    protocol: str, mobile: bool, n: int, repeat: int, obs: ComponentSpec
) -> dict:
    """Best-of-``repeat`` whole-run measurement for one cell."""
    spec = _spec(protocol, mobile, n, obs)
    duration = DURATIONS_S[n]
    best = None
    events = None
    for _ in range(repeat):
        net = spec.build()
        t0 = time.perf_counter()
        net.sim.run_until(duration)
        wall = time.perf_counter() - t0
        executed = net.sim.events_executed
        if events is None:
            events = executed
        elif executed != events:
            raise AssertionError(
                f"non-deterministic run: {executed} events vs {events}"
            )
        if best is None or wall < best:
            best = wall
    return {
        "scenario": f"{protocol}-{'mobile' if mobile else 'static'}-n{n}",
        "observability": obs.name,
        "events": events,
        "wall_s": round(best, 4),
        "events_per_sec": round(events / best, 1),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(ROOT / "BENCH_obs.json"))
    ap.add_argument("--baseline", default=str(ROOT / "BENCH_engine.json"))
    ap.add_argument("--repeat", type=int, default=3, help="best-of repeats")
    ap.add_argument(
        "--budget", type=float, default=2.0,
        help="allowed null-observability slowdown vs the baseline [%%]",
    )
    ap.add_argument(
        "--events-only", action="store_true",
        help="single repeat, event-count identities only (deterministic on "
             "any machine — the CI mode); skips the throughput budget",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 on any event-count mismatch, or (unless --events-only) "
             "a null geomean over budget",
    )
    args = ap.parse_args(argv)
    repeat = 1 if args.events_only else args.repeat

    base = json.loads(Path(args.baseline).read_text())
    base_by_name = {r["scenario"]: r for r in base["results"]}

    rows = []
    failures = []
    for protocol in PROTOCOLS:
        for _mob_name, mobile in MOBILITIES:
            for n in sorted(DURATIONS_S):
                null_row = run_cell(
                    protocol, mobile, n, repeat, ComponentSpec("null")
                )
                traced = run_cell(
                    protocol, mobile, n, repeat,
                    ComponentSpec("trace", categories=TRACE_CATEGORIES),
                )
                probed = run_cell(
                    protocol, mobile, n, 1,
                    ComponentSpec("probes", interval_s=PROBE_INTERVAL_S),
                )
                name = null_row["scenario"]
                recorded = base_by_name.get(name)
                if recorded is None:
                    continue
                if null_row["events"] != recorded["events"]:
                    failures.append(
                        f"{name}: null-observability event count "
                        f"{null_row['events']} != recorded {recorded['events']}"
                    )
                if traced["events"] != recorded["events"]:
                    failures.append(
                        f"{name}: traced event count {traced['events']} != "
                        f"recorded {recorded['events']} (recording must not "
                        "schedule)"
                    )
                expected_samples = int(DURATIONS_S[n] // PROBE_INTERVAL_S) + 1
                if probed["events"] != recorded["events"] + expected_samples:
                    failures.append(
                        f"{name}: probed event count {probed['events']} != "
                        f"recorded {recorded['events']} + {expected_samples} "
                        "sampler ticks"
                    )
                overhead = (
                    1.0 - null_row["events_per_sec"] / recorded["events_per_sec"]
                ) * 100.0
                trace_cost = (
                    1.0 - traced["events_per_sec"] / null_row["events_per_sec"]
                ) * 100.0
                rows.append(
                    {
                        "scenario": name,
                        "events": null_row["events"],
                        "baseline_events_per_sec": recorded["events_per_sec"],
                        "null_events_per_sec": null_row["events_per_sec"],
                        "null_overhead_pct": round(overhead, 2),
                        "trace_events_per_sec": traced["events_per_sec"],
                        "trace_overhead_pct": round(trace_cost, 2),
                        "probe_events": probed["events"],
                    }
                )
                print(
                    f"{name:>20}  {null_row['events']:>9d} ev  "
                    f"base {recorded['events_per_sec']:>9,.0f}  "
                    f"null {null_row['events_per_sec']:>9,.0f} "
                    f"({overhead:+5.1f}%)  trace "
                    f"{traced['events_per_sec']:>9,.0f} ({trace_cost:+5.1f}%)"
                )

    def geomean_overhead(key: str) -> float:
        """Geometric-mean slowdown [%] across cells for one ratio column."""
        ratios = [r[key] / r["baseline_events_per_sec"] for r in rows]
        gm = math.exp(sum(math.log(x) for x in ratios) / len(ratios))
        return (1.0 - gm) * 100.0

    null_gm = geomean_overhead("null_events_per_sec")
    trace_gm = geomean_overhead("trace_events_per_sec")
    print(
        f"\ngeomean overhead vs baseline: null {null_gm:+.2f}%  "
        f"trace {trace_gm:+.2f}%  (budget {args.budget:.1f}% on null"
        + (", skipped: --events-only)" if args.events_only else ")")
    )
    if not args.events_only and null_gm > args.budget:
        failures.append(
            f"null observability geomean {null_gm:+.2f}% slower than "
            f"baseline (budget {args.budget:.1f}%)"
        )

    payload = {
        "benchmark": "observability_null_overhead",
        "schema": 1,
        "generated_by": "tools/bench_obs.py",
        "config": {
            "repeat": repeat,
            "seed": SEED,
            "budget_pct": args.budget,
            "baseline": str(Path(args.baseline).name),
            "trace_categories": list(TRACE_CATEGORIES),
            "probe_interval_s": PROBE_INTERVAL_S,
            "unit": "events per second of wall time, whole run (build excluded)",
        },
        "geomean_overhead_pct": {
            "null": round(null_gm, 2),
            "trace": round(trace_gm, 2),
        },
        "results": rows,
    }
    if not args.events_only:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")

    if failures:
        print("\nFAILURES:")
        for f in failures:
            print(f"  {f}")
        if args.check:
            return 1
        print("(informational — pass --check to make this fatal)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
