#!/usr/bin/env python3
"""Measure fleet campaign throughput: cold execution vs content-cache hits.

Drives the same grid twice through ``run_specs(fleet=True)`` — the exact
service boundary ``repro fleet serve`` uses, supervised workers and all —
against one sharded store:

* **cold**: empty store, every cell simulated by the worker fleet;
* **cached**: identical grid resubmitted, every cell answered from the
  content-addressed cache without execution.

Reports specs/sec for both and the resulting speedup, and writes
``BENCH_fleet.json`` at the repo root.  The interesting number is the
cached rate: it bounds how fast overlapping campaigns (or a resume after
a crash) can confirm work is already done — pure queue + store overhead,
no simulation.

``--check`` additionally asserts the determinism contract that makes the
cache safe at all: the cached pass executes *zero* cells and serves
results bit-identical to the cold pass.  That assertion is
machine-independent, so CI runs it; the wall-clock rates are only
comparable on the machine that produced them::

    PYTHONPATH=src python tools/bench_fleet.py            # report + BENCH_fleet.json
    PYTHONPATH=src python tools/bench_fleet.py --check    # CI: identity only
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.campaign.runner import run_specs  # noqa: E402
from repro.campaign.spec import Campaign  # noqa: E402
from repro.config import ScenarioConfig, TrafficConfig  # noqa: E402
from repro.fleet import ShardedResultStore  # noqa: E402

JOBS = 2
#: protocol × load × seed grid: 8 cells, a few wall-seconds cold.
PROTOCOLS = ["basic", "pcmac"]
LOADS = [200.0, 400.0]
SEEDS = [1, 2]


def _campaign() -> Campaign:
    base = ScenarioConfig(
        node_count=10,
        duration_s=8.0,
        traffic=TrafficConfig(flow_count=3, offered_load_bps=200e3),
    )
    return Campaign.build(base, PROTOCOLS, LOADS, SEEDS)


def _fields(result) -> dict:
    fields = asdict(result)
    fields.pop("wallclock_s")
    return fields


def _pass(specs, store) -> tuple[dict, dict]:
    t0 = time.perf_counter()
    report = run_specs(specs, jobs=JOBS, store=store, fleet=True)
    wall = time.perf_counter() - t0
    assert not report.errors, report.errors
    stats = {
        "specs": len(specs),
        "executed": report.executed,
        "cached": report.cached,
        "wall_s": round(wall, 3),
        "specs_per_s": round(len(specs) / wall, 2),
    }
    return stats, dict(report.results)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the cache-identity contract (CI mode); still reports",
    )
    parser.add_argument(
        "--out",
        default=str(ROOT / "BENCH_fleet.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args()

    campaign = _campaign()
    specs = campaign.specs()
    with tempfile.TemporaryDirectory() as tmp:
        store = ShardedResultStore(Path(tmp) / "store", shards=4)
        cold, cold_results = _pass(specs, store)
        cached, cached_results = _pass(specs, store)

    assert cold["executed"] == len(specs), cold
    if args.check:
        assert cached["executed"] == 0, (
            f"cache pass re-executed {cached['executed']} cells"
        )
        assert cached["cached"] == len(specs), cached
        for key, result in cold_results.items():
            assert _fields(cached_results[key]) == _fields(result), (
                f"cache served a different result for {key[:12]}"
            )
        print("bench_fleet: cache identity OK "
              f"({len(specs)} cells, 0 re-executed, bit-identical)")

    speedup = cached["specs_per_s"] / cold["specs_per_s"]
    payload = {
        "grid": {
            "protocols": PROTOCOLS,
            "loads_kbps": LOADS,
            "seeds": SEEDS,
            "jobs": JOBS,
        },
        "cold": cold,
        "cache_hit": cached,
        "speedup": round(speedup, 1),
    }
    print(f"cold:      {cold['specs_per_s']:>8.2f} specs/s "
          f"({cold['wall_s']:.2f}s wall, {cold['executed']} executed)")
    print(f"cache-hit: {cached['specs_per_s']:>8.2f} specs/s "
          f"({cached['wall_s']:.2f}s wall, {cached['cached']} cached)")
    print(f"speedup:   {speedup:>8.1f}x")
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
