#!/usr/bin/env python3
"""CI smoke: the fleet survives a SIGKILLed worker with nothing lost.

Enqueues a small campaign into a sharded fleet store, starts two real
worker processes, SIGKILLs one the moment its heartbeat proves it is
mid-simulation, and asserts the fault-tolerance contract end to end:

* the campaign still completes — the dead worker's leased run lapses and
  is stolen (by the surviving worker or a finisher started afterwards);
* the store ends with **exactly** the enqueued key set: no run lost to
  the kill, none recorded twice (one JSONL line per key across shards);
* compaction preserves that exact key set and every stored result.

Exits non-zero (via assert) on any violation.  Kept as a script rather
than a pytest so CI exercises the same queue/worker/store machinery the
``repro fleet`` CLI uses, with real processes and a real ``kill -9``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.campaign.spec import Campaign  # noqa: E402
from repro.config import ScenarioConfig, TrafficConfig  # noqa: E402
from repro.fleet import (  # noqa: E402
    FleetWorker,
    ShardedResultStore,
    WorkQueue,
    enqueue_specs,
)

#: Short lease so the steal happens within the smoke's budget; a healthy
#: worker renews every telemetry slice, far more often than this.
LEASE_TTL_S = 1.0


def _campaign() -> Campaign:
    base = ScenarioConfig(
        node_count=20,
        duration_s=20.0,
        traffic=TrafficConfig(flow_count=4, offered_load_bps=300e3),
    )
    return Campaign.build(base, ["basic"], [300.0], [1, 2])


def _worker_entry(store_root: str, worker_id: str) -> None:
    store = ShardedResultStore(store_root)
    queue = WorkQueue(store.root / "fleet")
    FleetWorker(
        store, queue, worker_id=worker_id, lease_ttl_s=LEASE_TTL_S, slices=60
    ).run()


def _wait_for(predicate, timeout_s: float, what: str) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def _store_lines(store: ShardedResultStore) -> list[str]:
    lines: list[str] = []
    for path in store._result_files():
        if path.exists():
            lines.extend(path.read_text().splitlines())
    return lines


def main() -> int:
    campaign = _campaign()
    keys = {spec.key() for spec in campaign.specs()}
    with tempfile.TemporaryDirectory() as tmp:
        store = ShardedResultStore(Path(tmp) / "store", shards=4)
        queue = WorkQueue(store.root / "fleet")
        report = enqueue_specs(campaign.specs(), store, queue)
        assert report.queued == len(keys), report

        ctx = multiprocessing.get_context("fork")
        workers = {
            wid: ctx.Process(target=_worker_entry, args=(str(store.root), wid))
            for wid in ("victim", "survivor")
        }
        for proc in workers.values():
            proc.start()
        try:
            # Kill the victim once its heartbeat shows simulated progress —
            # it is then verifiably holding a lease mid-run.
            _wait_for(
                lambda: queue.heartbeats()
                .get("victim", {})
                .get("sim_time_s", 0.0)
                > 0.0,
                timeout_s=60.0,
                what="the victim to be mid-simulation",
            )
            os.kill(workers["victim"].pid, signal.SIGKILL)
            workers["victim"].join(timeout=10.0)
            assert not workers["victim"].is_alive(), "SIGKILL did not land"
            print("fleet_smoke: victim killed mid-run")

            workers["survivor"].join(timeout=120.0)
            assert not workers["survivor"].is_alive(), "survivor hung"

            # The survivor may have exited while the victim's lease was
            # still live (queue not drained from its point of view is
            # impossible — it polls — but a final steal may still be
            # pending if the kill landed between claim and expiry).
            # A finisher pass drains whatever remains.
            if not queue.drained():
                FleetWorker(
                    store,
                    queue,
                    worker_id="finisher",
                    lease_ttl_s=LEASE_TTL_S,
                    max_attempts=5,
                ).run()
        finally:
            for proc in workers.values():
                if proc.is_alive():
                    proc.kill()
                    proc.join()

        assert queue.drained(), "tasks left behind"
        store.refresh()
        stored = set(store.keys())
        assert stored == keys, f"lost/extra keys: {stored ^ keys}"
        lines = _store_lines(store)
        assert len(lines) == len(keys), (
            f"expected one line per key, found {len(lines)} lines "
            f"for {len(keys)} keys"
        )
        print(f"fleet_smoke: campaign completed ({len(keys)} keys, "
              f"{len(lines)} lines) despite the kill")

        # Compaction must preserve the exact key set and every result.
        before = {key: store.get(key) for key in stored}
        stats = store.compact()
        after = {key: store.get(key) for key in store.keys()}
        assert after == before, "compaction changed the stored results"
        reopened = ShardedResultStore(store.root)
        assert set(reopened.keys()) == keys, "compaction lost keys on reload"
        print(f"fleet_smoke: compaction preserved the key set "
              f"({stats.lines_before} -> {stats.lines_after} lines)")

    print("fleet_smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
