#!/usr/bin/env python3
"""CI smoke: a campaign survives a dying worker and resumes cleanly.

Runs a tiny pooled campaign in which one cell is rigged to blow up in the
worker (an ``explicit`` placement whose position count contradicts
``node_count`` — the builder raises inside the child process) and asserts
the failure-containment contract end to end:

* the healthy cells complete and land in the store;
* the rigged cell is retried (``attempts == retries + 1``) and recorded
  as a structured error line — kind, message, traceback — not silence;
* the errored key stays *out* of the result index, so a resumed campaign
  re-attempts exactly that cell while the healthy ones are cache hits.

Exits non-zero (via assert) on any violation.  Kept as a script rather
than a pytest so CI exercises the same ``run_specs`` entry points the
``repro campaign`` CLI uses, with a real process pool.
"""

from __future__ import annotations

import sys
import tempfile
from dataclasses import replace
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.campaign.runner import run_specs  # noqa: E402
from repro.campaign.spec import RunSpec  # noqa: E402
from repro.campaign.store import ResultStore  # noqa: E402
from repro.config import ScenarioConfig  # noqa: E402
from repro.scenariospec import ComponentSpec, ScenarioSpec  # noqa: E402


def _cell(seed: int) -> RunSpec:
    cfg = replace(ScenarioConfig(), node_count=10, duration_s=3.0, seed=seed)
    return RunSpec(scenario=ScenarioSpec(cfg=cfg, mac=ComponentSpec("basic")))


def _doomed() -> RunSpec:
    # One position for a 10-node scenario: the builder raises in the worker.
    cfg = replace(ScenarioConfig(), node_count=10, duration_s=3.0, seed=99)
    return RunSpec(
        scenario=ScenarioSpec(
            cfg=cfg,
            mac=ComponentSpec("basic"),
            placement=ComponentSpec("explicit", positions=((0.0, 0.0),)),
        )
    )


def main() -> int:
    specs = [_cell(1), _doomed(), _cell(2)]
    doomed_key = specs[1].key()
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "store"

        store = ResultStore(store_path)
        report = run_specs(
            specs, jobs=2, store=store, retries=1, backoff_s=0.01,
            progress=lambda s: print("  " + s),
        )
        assert len(report.results) == 2, report.results.keys()
        assert doomed_key in report.errors, "dying worker not recorded"
        err = report.errors[doomed_key]
        assert err["attempts"] == 2, err
        assert err["kind"] == "ValueError", err
        assert "traceback" in err, err
        assert not report.stopped

        # A fresh store load sees the error but keeps it out of the index.
        store2 = ResultStore(store_path)
        assert len(store2) == 2
        assert store2.error(doomed_key) is not None
        assert store2.get(doomed_key) is None

        # Resume: healthy cells are cache hits, the doomed cell re-runs.
        ran: list[str] = []
        report2 = run_specs(
            specs, jobs=2, store=store2, retries=0, backoff_s=0.01,
            progress=lambda s: ran.append(s),
        )
        assert len(report2.results) == 2
        assert doomed_key in report2.errors
        cached = [line for line in ran if "cached" in line]
        assert len(cached) == 2, ran

    print("chaos_smoke: OK (worker death contained, recorded, resumed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
