#!/usr/bin/env python3
"""Guard the energy subsystem's hot-path cost against ``BENCH_engine.json``.

The energy ledger hooks sit on the radio's state transitions — the hottest
code in the simulator — so this harness proves two things about them:

* **Bit-identity.** With the default ``null`` energy component every
  ``BENCH_engine.json`` cell executes *exactly* the event count the engine
  benchmark recorded (the hooks are a single ``is not None`` check; no
  events, no schedule change).  A metered (``wavelan``, no battery) run
  must match the same count: meters integrate lazily and never schedule.
* **Throughput.** The null model's events/sec stays within a small budget
  (default 2 %) of the recorded PR-4 numbers, judged on the **geometric
  mean across all cells** — per-cell wall clock on a shared machine swings
  ±10-15 % either way run to run, so individual cells are reported but
  only informational.  Wall-clock comparisons are only meaningful against
  a baseline measured on the same machine in the same state; regenerate
  one from the pre-energy engine with::

      git worktree add /tmp/seedtree <pre-energy-commit>
      PYTHONPATH=/tmp/seedtree/src python /tmp/seedtree/tools/bench_engine.py \
          --out /tmp/seed_bench.json --repeat 5

  ``--check`` makes a geomean over budget (or any event-count mismatch —
  those are deterministic and always bugs) exit 1.

    PYTHONPATH=src python tools/bench_energy.py                # report + BENCH_energy.json
    PYTHONPATH=src python tools/bench_energy.py --check        # fail if >2% slower (geomean)
    PYTHONPATH=src python tools/bench_energy.py --baseline /tmp/seed_bench.json --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from dataclasses import replace  # noqa: E402

from repro.config import ScenarioConfig  # noqa: E402
from repro.scenariospec import ComponentSpec, ScenarioSpec  # noqa: E402

#: Mirrors tools/bench_engine.py — the cells BENCH_engine.json records.
DURATIONS_S = {10: 25.0, 50: 4.0, 200: 2.5}
PROTOCOLS = ("basic", "pcmac")
MOBILITIES = (("static", False), ("mobile", True))
SEED = 7


def run_cell(
    protocol: str, mobile: bool, n: int, repeat: int, energy: str
) -> dict:
    """Best-of-``repeat`` whole-run measurement for one cell."""
    cfg = replace(
        ScenarioConfig(), node_count=n, duration_s=DURATIONS_S[n], seed=SEED
    )
    spec = ScenarioSpec(
        cfg=cfg,
        mac=ComponentSpec(protocol),
        mobility=ComponentSpec("waypoint" if mobile else "static"),
        energy=ComponentSpec(energy),
    )
    best = None
    events = None
    for _ in range(repeat):
        net = spec.build()
        t0 = time.perf_counter()
        net.sim.run_until(cfg.duration_s)
        wall = time.perf_counter() - t0
        executed = net.sim.events_executed
        if events is None:
            events = executed
        elif executed != events:
            raise AssertionError(
                f"non-deterministic run: {executed} events vs {events}"
            )
        if best is None or wall < best:
            best = wall
    return {
        "scenario": f"{protocol}-{'mobile' if mobile else 'static'}-n{n}",
        "energy": energy,
        "events": events,
        "wall_s": round(best, 4),
        "events_per_sec": round(events / best, 1),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(ROOT / "BENCH_energy.json"))
    ap.add_argument("--baseline", default=str(ROOT / "BENCH_engine.json"))
    ap.add_argument("--repeat", type=int, default=3, help="best-of repeats")
    ap.add_argument(
        "--budget", type=float, default=2.0,
        help="allowed null-model slowdown vs the baseline [%%]",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 when any cell's event count differs or the null model "
             "exceeds the budget (wall clock is machine-specific — only "
             "meaningful on the baseline's machine)",
    )
    args = ap.parse_args(argv)

    base = json.loads(Path(args.baseline).read_text())
    base_by_name = {r["scenario"]: r for r in base["results"]}

    rows = []
    failures = []
    for protocol in PROTOCOLS:
        for mob_name, mobile in MOBILITIES:
            for n in sorted(DURATIONS_S):
                null_row = run_cell(protocol, mobile, n, args.repeat, "null")
                metered = run_cell(protocol, mobile, n, args.repeat, "wavelan")
                name = null_row["scenario"]
                recorded = base_by_name.get(name)
                if recorded is None:
                    continue
                if null_row["events"] != recorded["events"]:
                    failures.append(
                        f"{name}: null-model event count {null_row['events']} "
                        f"!= recorded {recorded['events']}"
                    )
                if metered["events"] != recorded["events"]:
                    failures.append(
                        f"{name}: wavelan event count {metered['events']} "
                        f"!= recorded {recorded['events']} (meters must not "
                        "schedule)"
                    )
                overhead = (
                    1.0 - null_row["events_per_sec"] / recorded["events_per_sec"]
                ) * 100.0
                meter_cost = (
                    1.0 - metered["events_per_sec"] / null_row["events_per_sec"]
                ) * 100.0
                rows.append(
                    {
                        "scenario": name,
                        "events": null_row["events"],
                        "baseline_events_per_sec": recorded["events_per_sec"],
                        "null_events_per_sec": null_row["events_per_sec"],
                        "null_overhead_pct": round(overhead, 2),
                        "wavelan_events_per_sec": metered["events_per_sec"],
                        "wavelan_overhead_pct": round(meter_cost, 2),
                    }
                )
                print(
                    f"{name:>20}  {null_row['events']:>9d} ev  "
                    f"base {recorded['events_per_sec']:>9,.0f}  "
                    f"null {null_row['events_per_sec']:>9,.0f} "
                    f"({overhead:+5.1f}%)  wavelan "
                    f"{metered['events_per_sec']:>9,.0f} ({meter_cost:+5.1f}%)"
                )

    import math

    def geomean_overhead(key: str) -> float:
        """Geometric-mean slowdown [%] across cells for one ratio column."""
        ratios = [
            r[key] / r["baseline_events_per_sec"] for r in rows
        ]
        gm = math.exp(sum(math.log(x) for x in ratios) / len(ratios))
        return (1.0 - gm) * 100.0

    null_gm = geomean_overhead("null_events_per_sec")
    wavelan_gm = geomean_overhead("wavelan_events_per_sec")
    print(
        f"\ngeomean overhead vs baseline: null {null_gm:+.2f}%  "
        f"wavelan {wavelan_gm:+.2f}%  (budget {args.budget:.1f}% on null)"
    )
    if null_gm > args.budget:
        failures.append(
            f"null model geomean {null_gm:+.2f}% slower than baseline "
            f"(budget {args.budget:.1f}%)"
        )

    payload = {
        "benchmark": "energy_null_overhead",
        "schema": 1,
        "generated_by": "tools/bench_energy.py",
        "config": {
            "repeat": args.repeat,
            "seed": SEED,
            "budget_pct": args.budget,
            "baseline": str(Path(args.baseline).name),
            "unit": "events per second of wall time, whole run (build excluded)",
        },
        "geomean_overhead_pct": {
            "null": round(null_gm, 2),
            "wavelan": round(wavelan_gm, 2),
        },
        "results": rows,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if failures:
        print("\nFAILURES:")
        for f in failures:
            print(f"  {f}")
        if args.check:
            return 1
        print("(informational — pass --check to make this fatal)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
