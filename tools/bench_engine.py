#!/usr/bin/env python3
"""Measure whole-run engine throughput and dump ``BENCH_engine.json``.

Where ``tools/bench_phy.py`` times one hot call (``Channel.transmit``),
this harness times *entire runs* — build a paper scenario, execute it to
its horizon, and report events/sec and wall time.  That is the number the
campaign subsystem actually multiplies by hundreds of runs per sweep, and
it exercises every layer of the per-event hot path at once: kernel pop,
MAC timers, PHY fan-out, radio bookkeeping, tracing and metrics.

Grid: protocol (basic, pcmac) × mobility (static, mobile) × N ∈ {10, 50,
200}, matching the paper's Section IV environment (the sim horizon shrinks
as N grows so every cell costs roughly the same wall time), plus
mega-scale rows at N ∈ {2000, 10000} (static, paper density — the field
side grows ∝ √(N/50)) where each cell is run under both the ``default``
engine (binary heap, scalar fan-out) and the ``turbo`` engine (calendar
queue, SoA fan-out, pooled events) and the event counts are asserted
identical — the bench doubles as a mega-scale identity gate.

    PYTHONPATH=src python tools/bench_engine.py                 # writes BENCH_engine.json
    PYTHONPATH=src python tools/bench_engine.py --repeat 5 --out /tmp/e.json
    PYTHONPATH=src python tools/bench_engine.py --smoke-mega    # CI: one N=2000 round
    # compare against a previous run (e.g. one taken on an older commit):
    PYTHONPATH=src python tools/bench_engine.py --baseline OLD.json

Each cell reports the best-of-``--repeat`` run (highest events/sec; the
event count itself is deterministic and is asserted identical across
repeats).  With ``--baseline`` the output embeds the old numbers and a
per-cell speedup so the perf trajectory is a checked-in number.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

from dataclasses import replace  # noqa: E402

from bench_grid import MEGA_SIZES  # noqa: E402

from repro.builder import NetworkBuilder  # noqa: E402
from repro.config import MobilityConfig, ScenarioConfig  # noqa: E402
from repro.experiments.scenario import build_network  # noqa: E402
from repro.scenariospec import ComponentSpec, ScenarioSpec  # noqa: E402

#: Simulated horizon per network size [s] — sized so each cell takes on the
#: order of a second of wall time and the grid stays runnable in CI-ish time.
DURATIONS_S = {10: 25.0, 50: 4.0, 200: 2.5}
PROTOCOLS = ("basic", "pcmac")
MOBILITIES = (("static", False), ("mobile", True))
SEED = 7

#: Mega-scale horizons [s]: traffic starts at t=1.0 s, so these buy a short
#: steady-state window while keeping a 10k-node cell to ~a minute of wall.
MEGA_DURATIONS_S = {2000: 1.6, 10000: 1.3}
#: Engines A/B-ed on every mega cell.
MEGA_ENGINES = ("default", "turbo")


def run_cell(protocol: str, mobile: bool, n: int, repeat: int) -> dict:
    """Best-of-``repeat`` whole-run measurement for one grid cell."""
    cfg = replace(ScenarioConfig(), node_count=n, duration_s=DURATIONS_S[n], seed=SEED)
    best = None
    events = None
    for _ in range(repeat):
        net = build_network(cfg, protocol, mobile=mobile)
        t0 = time.perf_counter()
        net.sim.run_until(cfg.duration_s)
        wall = time.perf_counter() - t0
        executed = net.sim.events_executed
        if events is None:
            events = executed
        elif executed != events:
            raise AssertionError(
                f"non-deterministic run: {executed} events vs {events}"
            )
        if best is None or wall < best:
            best = wall
    return {
        "scenario": f"{protocol}-{'mobile' if mobile else 'static'}-n{n}",
        "protocol": protocol,
        "mobile": mobile,
        "n": n,
        "sim_duration_s": DURATIONS_S[n],
        "events": events,
        "wall_s": round(best, 4),
        "events_per_sec": round(events / best, 1),
    }


def run_mega_cell(protocol: str, n: int, repeat: int) -> dict:
    """One mega row: both engines, best-of-``repeat``, identical events.

    Fields are density-matched to the paper's Section IV (the field side
    scales ∝ √(N/50) from the 50-node 1000 m square).
    """
    duration = MEGA_DURATIONS_S[n]
    side = 1000.0 * math.sqrt(n / 50.0)
    events = None
    rates: dict[str, float] = {}
    for engine in MEGA_ENGINES:
        best = None
        for _ in range(repeat):
            cfg = replace(
                ScenarioConfig(),
                node_count=n,
                duration_s=duration,
                seed=SEED,
                mobility=MobilityConfig(field_width_m=side, field_height_m=side),
            )
            spec = replace(
                ScenarioSpec.from_legacy(cfg, protocol, mobile=False),
                engine=ComponentSpec(engine),
            )
            net = NetworkBuilder(spec).build()
            t0 = time.perf_counter()
            net.sim.run_until(duration)
            wall = time.perf_counter() - t0
            executed = net.sim.events_executed
            if events is None:
                events = executed
            elif executed != events:
                raise AssertionError(
                    f"engine divergence at n={n}: {executed} events vs {events}"
                )
            if best is None or wall < best:
                best = wall
        rates[engine] = events / best
    return {
        "scenario": f"{protocol}-static-n{n}",
        "protocol": protocol,
        "mobile": False,
        "n": n,
        "mega": True,
        "sim_duration_s": duration,
        "field_side_m": round(side, 1),
        "events": events,
        "default_events_per_sec": round(rates["default"], 1),
        "turbo_events_per_sec": round(rates["turbo"], 1),
        "turbo_speedup": round(rates["turbo"] / rates["default"], 2),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(ROOT / "BENCH_engine.json"))
    ap.add_argument("--repeat", type=int, default=3, help="best-of repeats")
    ap.add_argument(
        "--mega-repeat", type=int, default=2,
        help="best-of repeats for the mega-scale rows",
    )
    ap.add_argument(
        "--no-mega", action="store_true",
        help="skip the N in {2000, 10000} rows (quick classic-grid run)",
    )
    ap.add_argument(
        "--smoke-mega", action="store_true",
        help="CI smoke: one single-repeat N=2000 mega cell (both engines, "
        "event counts asserted identical), no file written unless --out is "
        "given explicitly",
    )
    ap.add_argument(
        "--baseline",
        default=None,
        help="previous bench_engine JSON to embed and compute speedups against",
    )
    args = ap.parse_args(argv)

    if args.smoke_mega:
        row = run_mega_cell("basic", 2000, repeat=1)
        print(
            f"{row['scenario']:>20}  {row['events']:>9d} events  "
            f"default {row['default_events_per_sec']:>10,.0f} ev/s  "
            f"turbo {row['turbo_events_per_sec']:>10,.0f} ev/s  "
            f"({row['turbo_speedup']:.2f}x)"
        )
        print("mega smoke OK: engines dispatched identical event counts")
        return 0

    results = []
    for protocol in PROTOCOLS:
        for mob_name, mobile in MOBILITIES:
            for n in sorted(DURATIONS_S):
                row = run_cell(protocol, mobile, n, args.repeat)
                results.append(row)
                print(
                    f"{row['scenario']:>20}  {row['events']:>9d} events  "
                    f"{row['wall_s']:7.3f} s  {row['events_per_sec']:>10,.0f} ev/s"
                )
    if not args.no_mega:
        for protocol in PROTOCOLS:
            for n in MEGA_SIZES:
                row = run_mega_cell(protocol, n, args.mega_repeat)
                results.append(row)
                print(
                    f"{row['scenario']:>20}  {row['events']:>9d} events  "
                    f"default {row['default_events_per_sec']:>10,.0f} ev/s  "
                    f"turbo {row['turbo_events_per_sec']:>10,.0f} ev/s  "
                    f"({row['turbo_speedup']:.2f}x)"
                )

    payload = {
        "benchmark": "engine_whole_run",
        "schema": 2,
        "generated_by": "tools/bench_engine.py",
        "config": {
            "repeat": args.repeat,
            "mega_repeat": args.mega_repeat,
            "seed": SEED,
            "durations_s": {str(k): v for k, v in sorted(DURATIONS_S.items())},
            "mega_durations_s": {
                str(k): v for k, v in sorted(MEGA_DURATIONS_S.items())
            },
            "unit": "events per second of wall time, whole run (build excluded)",
            "note": (
                "mega rows (mega: true) run static worlds at paper density "
                "under both the default and turbo engines; event counts are "
                "asserted identical across engines"
            ),
        },
        "results": results,
    }

    if args.baseline:
        base = json.loads(Path(args.baseline).read_text())
        base_by_name = {r["scenario"]: r for r in base.get("results", [])}
        speedups = {}
        for row in results:
            old = base_by_name.get(row["scenario"])
            if old is None:
                continue
            if old["events"] != row["events"]:
                print(
                    f"WARNING: {row['scenario']} event count changed "
                    f"{old['events']} -> {row['events']} (schedule not comparable)"
                )
            row["baseline_events_per_sec"] = old["events_per_sec"]
            speedup = row["events_per_sec"] / old["events_per_sec"]
            row["speedup"] = round(speedup, 2)
            speedups[row["scenario"]] = row["speedup"]
            print(f"{row['scenario']:>20}  speedup {speedup:5.2f}x")
        payload["baseline"] = {
            "generated_by": base.get("generated_by"),
            "note": "measured on the pre-optimisation engine (see git history)",
            "results": list(base_by_name.values()),
        }
        payload["speedup_vs_baseline"] = speedups

    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
