#!/usr/bin/env python3
"""Measure whole-run engine throughput and dump ``BENCH_engine.json``.

Where ``tools/bench_phy.py`` times one hot call (``Channel.transmit``),
this harness times *entire runs* — build a paper scenario, execute it to
its horizon, and report events/sec and wall time.  That is the number the
campaign subsystem actually multiplies by hundreds of runs per sweep, and
it exercises every layer of the per-event hot path at once: kernel pop,
MAC timers, PHY fan-out, radio bookkeeping, tracing and metrics.

Grid: protocol (basic, pcmac) × mobility (static, mobile) × N ∈ {10, 50,
200}, matching the paper's Section IV environment (the sim horizon shrinks
as N grows so every cell costs roughly the same wall time).

    PYTHONPATH=src python tools/bench_engine.py                 # writes BENCH_engine.json
    PYTHONPATH=src python tools/bench_engine.py --repeat 5 --out /tmp/e.json
    # compare against a previous run (e.g. one taken on an older commit):
    PYTHONPATH=src python tools/bench_engine.py --baseline OLD.json

Each cell reports the best-of-``--repeat`` run (highest events/sec; the
event count itself is deterministic and is asserted identical across
repeats).  With ``--baseline`` the output embeds the old numbers and a
per-cell speedup so the perf trajectory is a checked-in number.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from dataclasses import replace  # noqa: E402

from repro.config import ScenarioConfig  # noqa: E402
from repro.experiments.scenario import build_network  # noqa: E402

#: Simulated horizon per network size [s] — sized so each cell takes on the
#: order of a second of wall time and the grid stays runnable in CI-ish time.
DURATIONS_S = {10: 25.0, 50: 4.0, 200: 2.5}
PROTOCOLS = ("basic", "pcmac")
MOBILITIES = (("static", False), ("mobile", True))
SEED = 7


def run_cell(protocol: str, mobile: bool, n: int, repeat: int) -> dict:
    """Best-of-``repeat`` whole-run measurement for one grid cell."""
    cfg = replace(ScenarioConfig(), node_count=n, duration_s=DURATIONS_S[n], seed=SEED)
    best = None
    events = None
    for _ in range(repeat):
        net = build_network(cfg, protocol, mobile=mobile)
        t0 = time.perf_counter()
        net.sim.run_until(cfg.duration_s)
        wall = time.perf_counter() - t0
        executed = net.sim.events_executed
        if events is None:
            events = executed
        elif executed != events:
            raise AssertionError(
                f"non-deterministic run: {executed} events vs {events}"
            )
        if best is None or wall < best:
            best = wall
    return {
        "scenario": f"{protocol}-{'mobile' if mobile else 'static'}-n{n}",
        "protocol": protocol,
        "mobile": mobile,
        "n": n,
        "sim_duration_s": DURATIONS_S[n],
        "events": events,
        "wall_s": round(best, 4),
        "events_per_sec": round(events / best, 1),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(ROOT / "BENCH_engine.json"))
    ap.add_argument("--repeat", type=int, default=3, help="best-of repeats")
    ap.add_argument(
        "--baseline",
        default=None,
        help="previous bench_engine JSON to embed and compute speedups against",
    )
    args = ap.parse_args(argv)

    results = []
    for protocol in PROTOCOLS:
        for mob_name, mobile in MOBILITIES:
            for n in sorted(DURATIONS_S):
                row = run_cell(protocol, mobile, n, args.repeat)
                results.append(row)
                print(
                    f"{row['scenario']:>20}  {row['events']:>9d} events  "
                    f"{row['wall_s']:7.3f} s  {row['events_per_sec']:>10,.0f} ev/s"
                )

    payload = {
        "benchmark": "engine_whole_run",
        "schema": 1,
        "generated_by": "tools/bench_engine.py",
        "config": {
            "repeat": args.repeat,
            "seed": SEED,
            "durations_s": {str(k): v for k, v in sorted(DURATIONS_S.items())},
            "unit": "events per second of wall time, whole run (build excluded)",
        },
        "results": results,
    }

    if args.baseline:
        base = json.loads(Path(args.baseline).read_text())
        base_by_name = {r["scenario"]: r for r in base.get("results", [])}
        speedups = {}
        for row in results:
            old = base_by_name.get(row["scenario"])
            if old is None:
                continue
            if old["events"] != row["events"]:
                print(
                    f"WARNING: {row['scenario']} event count changed "
                    f"{old['events']} -> {row['events']} (schedule not comparable)"
                )
            row["baseline_events_per_sec"] = old["events_per_sec"]
            speedup = row["events_per_sec"] / old["events_per_sec"]
            row["speedup"] = round(speedup, 2)
            speedups[row["scenario"]] = row["speedup"]
            print(f"{row['scenario']:>20}  speedup {speedup:5.2f}x")
        payload["baseline"] = {
            "generated_by": base.get("generated_by"),
            "note": "measured on the pre-optimisation engine (see git history)",
            "results": list(base_by_name.values()),
        }
        payload["speedup_vs_baseline"] = speedups

    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
