#!/usr/bin/env python3
"""cProfile one scenario run and print the hottest call sites.

The perf playbook's step zero — measure before touching anything.  Takes
any declarative ``spec.json`` (the :class:`~repro.scenariospec.ScenarioSpec`
format, same as ``repro quick --scenario``), builds it, runs it to its
horizon under :mod:`cProfile`, and prints the top cumulative hot spots plus
whole-run events/sec:

    PYTHONPATH=src python tools/profile_run.py --scenario examples/grid_poisson.spec.json
    PYTHONPATH=src python tools/profile_run.py --scenario spec.json --sort tottime --top 40
    PYTHONPATH=src python tools/profile_run.py --scenario spec.json --duration 5 --dump /tmp/run.prof

``--dump`` writes the raw stats for snakeviz/pstats digging; ``--duration``
overrides the spec's horizon so a 400 s paper scenario can be profiled in
seconds.  Build time is excluded — only the run loop is profiled, matching
what ``tools/bench_engine.py`` measures.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from dataclasses import replace
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.builder import NetworkBuilder  # noqa: E402
from repro.scenariospec import ScenarioSpec  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--scenario", required=True, help="path to a ScenarioSpec spec.json"
    )
    ap.add_argument(
        "--duration", type=float, default=None,
        help="override the spec's duration_s (profile a short slice)",
    )
    ap.add_argument(
        "--sort", default="cumulative",
        choices=["cumulative", "tottime", "calls"],
        help="pstats sort key (default: cumulative)",
    )
    ap.add_argument("--top", type=int, default=20, help="rows to print")
    ap.add_argument(
        "--brute-force", action="store_true",
        help="disable the spatial-index fan-out (profile the oracle path)",
    )
    ap.add_argument(
        "--reference-kernel", action="store_true",
        help="use the unfused peek+pop kernel loop (profile the oracle path)",
    )
    ap.add_argument("--dump", default=None, help="write raw pstats to this path")
    ap.add_argument(
        "--out", default=None,
        help="also write the formatted report to this text file",
    )
    args = ap.parse_args(argv)

    spec = ScenarioSpec.load(args.scenario)
    if args.duration is not None:
        spec = replace(spec, cfg=replace(spec.cfg, duration_s=args.duration))
    print(f"scenario: {args.scenario}  (content key {spec.key()[:16]})")
    print(
        f"mac={spec.mac.name} n={spec.cfg.node_count} "
        f"duration={spec.cfg.duration_s}s seed={spec.cfg.seed}"
    )

    net = NetworkBuilder(
        spec,
        spatial_index=not args.brute_force,
        fused_kernel=not args.reference_kernel,
    ).build()

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    net.sim.run_until(spec.cfg.duration_s)
    profiler.disable()
    wall = time.perf_counter() - t0

    events = net.sim.events_executed
    summary = (
        f"{events} events in {wall:.3f} s wall "
        f"({events / wall:,.0f} events/s under the profiler — expect "
        "~2x faster unprofiled)"
    )
    print(f"\n{summary}\n")
    stats = pstats.Stats(profiler)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw stats written to {args.dump}")
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(
                f"scenario: {args.scenario}  (content key {spec.key()[:16]})\n"
                f"{summary}\n\n"
            )
            pstats.Stats(profiler, stream=fh).sort_stats(args.sort).print_stats(
                args.top
            )
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
