#!/usr/bin/env python3
"""Guard the reception layer's hot-path cost against ``BENCH_engine.json``.

The ``reception`` slot touches the two hottest PHY paths — every signal
edge now passes a ``radio.reception is None`` branch — so this harness
proves:

* **Bit-identity (null).** With the default ``null`` reception component
  every ``BENCH_engine.json`` cell executes *exactly* the event count the
  engine benchmark recorded: no receiver object, no schedule change — the
  only cost is the per-edge ``is None`` check.
* **Determinism (sinr).** A sinr cell run twice executes the identical
  event count: the receiver schedules no events of its own and evaluates
  SINR lazily in deterministic event order.
* **Activity (sinr).** Across the whole grid at least one sinr cell
  executes a *different* event count than its baseline — the model
  genuinely changes decode outcomes somewhere (per-cell it may legitimately
  coincide: sparse fields rarely overlap transmissions, and both models
  then make identical decisions).

Throughput is judged on the **geometric mean across all cells** of the null
cells vs the recorded BENCH_engine numbers (default budget 2 %) — per-cell
wall clock on a shared machine swings ±10-15 % run to run.  Wall-clock
checks are only meaningful on the machine that produced the baseline; the
event-count identities are deterministic everywhere, which is what
``--events-only`` runs in CI::

    PYTHONPATH=src python tools/bench_sinr.py             # report + BENCH_sinr.json
    PYTHONPATH=src python tools/bench_sinr.py --check     # fail if >2% slower (geomean)
    PYTHONPATH=src python tools/bench_sinr.py --events-only --check   # CI: identities only
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from dataclasses import replace  # noqa: E402

from repro.config import ScenarioConfig  # noqa: E402
from repro.scenariospec import ComponentSpec, ScenarioSpec  # noqa: E402

#: Mirrors tools/bench_engine.py — the cells BENCH_engine.json records.
DURATIONS_S = {10: 25.0, 50: 4.0, 200: 2.5}
PROTOCOLS = ("basic", "pcmac")
MOBILITIES = (("static", False), ("mobile", True))
SEED = 7


def _spec(
    protocol: str, mobile: bool, n: int, reception: ComponentSpec
) -> ScenarioSpec:
    cfg = replace(
        ScenarioConfig(), node_count=n, duration_s=DURATIONS_S[n], seed=SEED
    )
    return ScenarioSpec(
        cfg=cfg,
        mac=ComponentSpec(protocol),
        mobility=ComponentSpec("waypoint" if mobile else "static"),
        reception=reception,
    )


def run_cell(
    protocol: str, mobile: bool, n: int, repeat: int, reception: ComponentSpec
) -> dict:
    """Best-of-``repeat`` whole-run measurement for one cell."""
    spec = _spec(protocol, mobile, n, reception)
    duration = DURATIONS_S[n]
    best = None
    events = None
    for _ in range(repeat):
        net = spec.build()
        # Flush the previous builds' garbage so later cells are not timed
        # under accumulated GC pressure the baseline never paid.
        gc.collect()
        t0 = time.perf_counter()
        net.sim.run_until(duration)
        wall = time.perf_counter() - t0
        executed = net.sim.events_executed
        if events is None:
            events = executed
        elif executed != events:
            raise AssertionError(
                f"non-deterministic run: {executed} events vs {events}"
            )
        if best is None or wall < best:
            best = wall
    return {
        "scenario": f"{protocol}-{'mobile' if mobile else 'static'}-n{n}",
        "reception": reception.name,
        "events": events,
        "wall_s": round(best, 4),
        "events_per_sec": round(events / best, 1),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(ROOT / "BENCH_sinr.json"))
    ap.add_argument("--baseline", default=str(ROOT / "BENCH_engine.json"))
    ap.add_argument("--repeat", type=int, default=3, help="best-of repeats")
    ap.add_argument(
        "--budget", type=float, default=2.0,
        help="allowed null-reception slowdown vs the baseline [%%]",
    )
    ap.add_argument(
        "--events-only", action="store_true",
        help="single repeat, event-count identities only (deterministic on "
             "any machine — the CI mode); skips the throughput budget",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 on any event-count mismatch, or (unless --events-only) "
             "a null geomean over budget",
    )
    args = ap.parse_args(argv)
    repeat = 1 if args.events_only else args.repeat

    base = json.loads(Path(args.baseline).read_text())
    base_by_name = {r["scenario"]: r for r in base["results"]}

    rows = []
    failures = []
    sinr_diverged = 0
    for protocol in PROTOCOLS:
        for _mob_name, mobile in MOBILITIES:
            for n in sorted(DURATIONS_S):
                null_row = run_cell(
                    protocol, mobile, n, repeat, ComponentSpec("null")
                )
                # The sinr cell is always run twice: the repeat loop's
                # event-count assertion is the determinism check.
                sinr = run_cell(
                    protocol, mobile, n, max(repeat, 2), ComponentSpec("sinr")
                )
                name = null_row["scenario"]
                recorded = base_by_name.get(name)
                if recorded is None:
                    continue
                if null_row["events"] != recorded["events"]:
                    failures.append(
                        f"{name}: null-reception event count "
                        f"{null_row['events']} != recorded {recorded['events']}"
                    )
                if sinr["events"] != recorded["events"]:
                    sinr_diverged += 1
                overhead = (
                    1.0 - null_row["events_per_sec"] / recorded["events_per_sec"]
                ) * 100.0
                rows.append(
                    {
                        "scenario": name,
                        "events": null_row["events"],
                        "baseline_events_per_sec": recorded["events_per_sec"],
                        "null_events_per_sec": null_row["events_per_sec"],
                        "null_overhead_pct": round(overhead, 2),
                        "sinr_events": sinr["events"],
                        "sinr_events_per_sec": sinr["events_per_sec"],
                    }
                )
                print(
                    f"{name:>20}  {null_row['events']:>9d} ev  "
                    f"base {recorded['events_per_sec']:>9,.0f}  "
                    f"null {null_row['events_per_sec']:>9,.0f} "
                    f"({overhead:+5.1f}%)  sinr {sinr['events']:>9d} ev"
                )

    # The activity guard is deliberately *global*: a sparse cell where the
    # SINR model makes the same calls as the thresholds is fine, but a
    # model that coincides everywhere would be a silent no-op.
    if rows and sinr_diverged == 0:
        failures.append(
            "sinr reception matched the baseline event count in every cell "
            "(receiver changed nothing anywhere?)"
        )

    ratios = [
        r["null_events_per_sec"] / r["baseline_events_per_sec"] for r in rows
    ]
    null_gm = (
        1.0 - math.exp(sum(math.log(x) for x in ratios) / len(ratios))
    ) * 100.0
    print(
        f"\ngeomean overhead vs baseline: null {null_gm:+.2f}%  "
        f"(budget {args.budget:.1f}%"
        + (", skipped: --events-only)" if args.events_only else ")")
        + f"; sinr diverged in {sinr_diverged}/{len(rows)} cells"
    )
    if not args.events_only and null_gm > args.budget:
        failures.append(
            f"null reception geomean {null_gm:+.2f}% slower than baseline "
            f"(budget {args.budget:.1f}%)"
        )

    payload = {
        "benchmark": "reception_null_overhead",
        "schema": 1,
        "generated_by": "tools/bench_sinr.py",
        "config": {
            "repeat": repeat,
            "seed": SEED,
            "budget_pct": args.budget,
            "baseline": str(Path(args.baseline).name),
            "unit": "events per second of wall time, whole run (build excluded)",
        },
        "geomean_overhead_pct": {"null": round(null_gm, 2)},
        "sinr_diverged_cells": sinr_diverged,
        "results": rows,
    }
    if not args.events_only:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")

    if failures:
        print("\nFAILURES:")
        for f in failures:
            print(f"  {f}")
        if args.check:
            return 1
        print("(informational — pass --check to make this fatal)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
