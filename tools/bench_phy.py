#!/usr/bin/env python3
"""Measure PHY channel fan-out performance and dump ``BENCH_phy.json``.

Times ``Channel.transmit`` (fan-out + signal-edge dispatch) for the
brute-force scan, the spatial index and the struct-of-arrays vector pass
across the shared ``benchmarks/bench_grid.py`` sweep — the classic
N × placement grid plus the mega-scale columns N ∈ {2000, 10000} (whose
world builders ``benchmarks/test_channel_fanout.py`` provides), then
writes a machine-readable summary to the repo root so the perf trajectory
is tracked across PRs:

    PYTHONPATH=src python tools/bench_phy.py            # writes BENCH_phy.json
    PYTHONPATH=src python tools/bench_phy.py --rounds 50 --out /tmp/b.json
    PYTHONPATH=src python tools/bench_phy.py --no-mega  # classic sizes only

Each cell reports the best-of-``--repeat`` mean microseconds per transmit
(best-of damps scheduler noise; the mean is over ``--rounds`` rounds of
``TX_SAMPLE`` transmissions each).  Mega rows omit the brute column — the
O(N) scan at N = 10 000 is the pathology the vectorized core exists to
avoid, and timing it adds minutes without information.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "benchmarks"))

from bench_grid import DENSITIES, MEGA_SIZES, SIZES, TX_SAMPLE  # noqa: E402
from test_channel_fanout import (  # noqa: E402 - path set up above
    build_mode_world,
    fanout_round,
    make_frame,
)


def time_mode(n: int, density: float, mode: str, rounds: int, repeat: int) -> float:
    """Best-of-``repeat`` mean microseconds per transmit for one mode."""
    best = float("inf")
    for _ in range(repeat):
        sim, chan, radios = build_mode_world(n, density, mode)
        srcs = radios[:TX_SAMPLE]
        frame = make_frame()
        fanout_round(sim, chan, srcs, frame)  # warm-up: caches, grid, heap
        t0 = time.perf_counter()
        for _ in range(rounds):
            fanout_round(sim, chan, srcs, frame)
        dt = time.perf_counter() - t0
        best = min(best, dt / (rounds * TX_SAMPLE) * 1e6)
    return best


def measure_cell(
    n: int, placement: str, density: float, modes: tuple[str, ...],
    rounds: int, repeat: int,
) -> dict:
    """One grid row: per-mode µs/tx plus speedups over the slowest baseline."""
    row: dict = {"n": n, "placement": placement}
    timed = {m: time_mode(n, density, m, rounds, repeat) for m in modes}
    for mode, us in timed.items():
        row[f"{mode}_us_per_tx"] = round(us, 2)
    if "brute" in timed:
        row["speedup"] = round(timed["brute"] / timed["indexed"], 2)
        row["soa_speedup"] = round(timed["brute"] / timed["soa"], 2)
    else:
        # Mega rows: the SoA win is reported over the spatial index.
        row["soa_speedup"] = round(timed["indexed"] / timed["soa"], 2)
    parts = "   ".join(f"{m} {us:8.1f} us/tx" for m, us in timed.items())
    print(f"{placement:>6} n={n:<5d} {parts}   soa_speedup {row['soa_speedup']:5.1f}x")
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(ROOT / "BENCH_phy.json"))
    ap.add_argument("--rounds", type=int, default=30, help="rounds per repeat")
    ap.add_argument("--repeat", type=int, default=3, help="best-of repeats")
    ap.add_argument(
        "--mega-rounds", type=int, default=10,
        help="rounds per repeat for the mega-scale columns",
    )
    ap.add_argument(
        "--no-mega", action="store_true",
        help="skip the N in {2000, 10000} columns (quick smoke)",
    )
    args = ap.parse_args(argv)

    results = []
    for placement, density in sorted(DENSITIES.items()):
        for n in SIZES:
            results.append(measure_cell(
                n, placement, density, ("brute", "indexed", "soa"),
                args.rounds, args.repeat,
            ))
        if args.no_mega:
            continue
        for n in MEGA_SIZES:
            results.append(measure_cell(
                n, placement, density, ("indexed", "soa"),
                args.mega_rounds, args.repeat,
            ))

    payload = {
        "benchmark": "phy_channel_fanout",
        "schema": 2,
        "generated_by": "tools/bench_phy.py",
        "config": {
            "tx_per_round": TX_SAMPLE,
            "rounds": args.rounds,
            "mega_rounds": args.mega_rounds,
            "repeat": args.repeat,
            "unit": "microseconds per transmit (fan-out + edge dispatch)",
            "note": (
                "mega rows (n >= 2000) omit the brute column; soa_speedup "
                "is over brute on classic rows, over indexed on mega rows"
            ),
        },
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
