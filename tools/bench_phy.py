#!/usr/bin/env python3
"""Measure PHY channel fan-out performance and dump ``BENCH_phy.json``.

Times ``Channel.transmit`` (fan-out + signal-edge dispatch) for the
brute-force scan and the spatial index across the same N × placement grid
as ``benchmarks/test_channel_fanout.py`` (whose world builders this script
reuses), then writes a machine-readable summary to the repo root so the
perf trajectory is tracked across PRs:

    PYTHONPATH=src python tools/bench_phy.py            # writes BENCH_phy.json
    PYTHONPATH=src python tools/bench_phy.py --rounds 50 --out /tmp/b.json

Each cell reports the best-of-``--repeat`` mean microseconds per transmit
(best-of damps scheduler noise; the mean is over ``--rounds`` rounds of
``TX_SAMPLE`` transmissions each).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "benchmarks"))

from test_channel_fanout import (  # noqa: E402 - path set up above
    DENSITIES,
    SIZES,
    TX_SAMPLE,
    build_fanout_world,
    fanout_round,
    make_frame,
)


def time_mode(n: int, density: float, spatial: bool, rounds: int, repeat: int) -> float:
    """Best-of-``repeat`` mean microseconds per transmit."""
    best = float("inf")
    for _ in range(repeat):
        sim, chan, radios = build_fanout_world(n, density, spatial)
        srcs = radios[:TX_SAMPLE]
        frame = make_frame()
        fanout_round(sim, chan, srcs, frame)  # warm-up: caches, grid, heap
        t0 = time.perf_counter()
        for _ in range(rounds):
            fanout_round(sim, chan, srcs, frame)
        dt = time.perf_counter() - t0
        best = min(best, dt / (rounds * TX_SAMPLE) * 1e6)
    return best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=str(ROOT / "BENCH_phy.json"))
    ap.add_argument("--rounds", type=int, default=30, help="rounds per repeat")
    ap.add_argument("--repeat", type=int, default=3, help="best-of repeats")
    args = ap.parse_args(argv)

    results = []
    for placement, density in sorted(DENSITIES.items()):
        for n in SIZES:
            brute = time_mode(n, density, False, args.rounds, args.repeat)
            indexed = time_mode(n, density, True, args.rounds, args.repeat)
            row = {
                "n": n,
                "placement": placement,
                "brute_us_per_tx": round(brute, 2),
                "indexed_us_per_tx": round(indexed, 2),
                "speedup": round(brute / indexed, 2),
            }
            results.append(row)
            print(
                f"{placement:>6} n={n:<4d} brute {brute:8.1f} us/tx   "
                f"indexed {indexed:8.1f} us/tx   speedup {brute / indexed:5.1f}x"
            )

    payload = {
        "benchmark": "phy_channel_fanout",
        "schema": 1,
        "generated_by": "tools/bench_phy.py",
        "config": {
            "tx_per_round": TX_SAMPLE,
            "rounds": args.rounds,
            "repeat": args.repeat,
            "unit": "microseconds per transmit (fan-out + edge dispatch)",
        },
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
