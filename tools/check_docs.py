#!/usr/bin/env python3
"""Docs gate: broken intra-repo links and undocumented energy API fail CI.

Two checks, both dependency-free:

* **Links.**  Every relative markdown link in the repo's narrative docs
  (``README.md``, ``EXPERIMENTS.md``, ``docs/*.md``, ``CHANGES.md``,
  ``ROADMAP.md``) must resolve to a file or directory inside the repo.
  External (``http``/``https``/``mailto``) links and pure ``#anchors`` are
  skipped — this is a referential-integrity check, not a crawler.
* **Docstrings.**  Every *public* module, class and function in
  ``src/repro/energy/`` must carry a docstring (AST walk, no imports).
  The energy subsystem is the newest public surface; keeping its contract
  prose-complete is cheap now and expensive later.

    python tools/check_docs.py            # exit 1 on any finding
    python tools/check_docs.py --verbose  # list everything checked
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: Markdown files whose relative links must resolve.
DOC_GLOBS = ("README.md", "EXPERIMENTS.md", "CHANGES.md", "ROADMAP.md",
             "PAPER.md", "docs/*.md")

#: Packages whose public API must be fully docstringed.
DOCSTRING_ROOTS = (
    "src/repro/energy",
    "src/repro/obs",
    "src/repro/faults",
    "src/repro/phy",
    "src/repro/fleet",
    "src/repro/sim",
)

#: ``[text](target)`` — good enough for the links these docs use; image
#: links (``![..](..)``) match too via the optional leading ``!``.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def iter_doc_files() -> list[Path]:
    """The markdown files covered by the link check (existing ones only)."""
    files: list[Path] = []
    for pattern in DOC_GLOBS:
        if "*" in pattern:
            files.extend(sorted(ROOT.glob(pattern)))
        elif (ROOT / pattern).is_file():
            files.append(ROOT / pattern)
    return files


def check_links(verbose: bool) -> list[str]:
    """Relative links that do not resolve, as ``file: target`` strings."""
    problems: list[str] = []
    for doc in iter_doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if verbose:
                print(f"  link {doc.relative_to(ROOT)} -> {path}")
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(ROOT)}: broken link -> {target}"
                )
    return problems


def _public_defs(tree: ast.Module) -> list[tuple[str, ast.AST]]:
    """(qualified name, node) for public classes/functions, module included."""
    out: list[tuple[str, ast.AST]] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if child.name.startswith("_"):
                    continue
                qualified = f"{prefix}{child.name}"
                out.append((qualified, child))
                if isinstance(child, ast.ClassDef):
                    walk(child, qualified + ".")

    walk(tree, "")
    return out


def check_docstrings(verbose: bool) -> list[str]:
    """Public energy-package definitions lacking docstrings."""
    problems: list[str] = []
    for root in DOCSTRING_ROOTS:
        for path in sorted((ROOT / root).rglob("*.py")):
            rel = path.relative_to(ROOT)
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(rel))
            if ast.get_docstring(tree) is None:
                problems.append(f"{rel}: module docstring missing")
            for name, node in _public_defs(tree):
                if verbose:
                    print(f"  docstring {rel}: {name}")
                if ast.get_docstring(node) is None:
                    problems.append(
                        f"{rel}:{node.lineno}: public {name!r} lacks a docstring"
                    )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    problems = check_links(args.verbose) + check_docstrings(args.verbose)
    docs = len(iter_doc_files())
    if problems:
        print(f"check_docs: {len(problems)} problem(s) across {docs} docs:")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"check_docs: OK ({docs} markdown files, "
          f"{', '.join(DOCSTRING_ROOTS)} fully docstringed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
