#!/usr/bin/env python3
"""Generate the measured-results tables of EXPERIMENTS.md from the
full-scale sweep output (``fullscale_results.json``).

Usage:  python tools/make_experiments_md.py
Prints the markdown tables to stdout; EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis.report import markdown_table
from repro.analysis.stats import compare_series
from repro.experiments.figure8 import FIGURE8_LOADS_KBPS, PAPER_FIG8_KBPS
from repro.experiments.figure9 import PAPER_FIG9_MS

PROTOCOLS = ("basic", "pcmac", "scheme1", "scheme2")


def main() -> None:
    path = pathlib.Path(__file__).resolve().parent.parent / "fullscale_results.json"
    data = json.loads(path.read_text())
    loads = sorted({int(k.split("@")[1]) for k in data})

    def series(metric: str) -> dict[str, list[float]]:
        return {
            p: [data[f"{p}@{ld}"][metric] for ld in loads] for p in PROTOCOLS
        }

    thr = series("thr")
    dly = series("dly")

    print("### Figure 8 — measured (50 nodes, 40 s, seeds {1,2} mean)\n")
    rows = []
    for i, ld in enumerate(loads):
        rows.append(
            [ld]
            + [round(thr[p][i], 1) for p in PROTOCOLS]
        )
    print(markdown_table(["load [kbps]", *PROTOCOLS], rows))

    print("\n### Figure 9 — measured (same runs)\n")
    rows = []
    for i, ld in enumerate(loads):
        rows.append([ld] + [round(dly[p][i], 1) for p in PROTOCOLS])
    print(markdown_table(["load [kbps]", *PROTOCOLS], rows))

    print("\n### Shape agreement vs the digitised paper curves\n")
    rows = []
    for p in PROTOCOLS:
        c8 = compare_series(thr[p], [
            PAPER_FIG8_KBPS[p][FIGURE8_LOADS_KBPS.index(ld)] for ld in loads
        ])
        c9 = compare_series(dly[p], [
            PAPER_FIG9_MS[p][FIGURE8_LOADS_KBPS.index(ld)] for ld in loads
        ])
        rows.append([
            p,
            round(c8.rank_correlation, 2),
            round(c8.final_ratio, 2),
            round(c9.rank_correlation, 2),
            round(c9.final_ratio, 2),
        ])
    print(
        markdown_table(
            ["protocol", "Fig8 rank-ρ", "Fig8 final ratio",
             "Fig9 rank-ρ", "Fig9 final ratio"],
            rows,
        )
    )

    print("\n### Key quantities\n")
    peak = {p: max(thr[p]) for p in PROTOCOLS}
    print(f"- peak throughput: " + ", ".join(
        f"{p} {peak[p]:.0f} kbps" for p in PROTOCOLS))
    gain = (peak["pcmac"] / peak["basic"] - 1) * 100
    print(f"- PCMAC peak-capacity gain over basic 802.11: {gain:+.1f}% "
          f"(paper: +8–10%)")
    mean_dly = {p: sum(dly[p]) / len(dly[p]) for p in PROTOCOLS}
    print(f"- mean delay across the sweep: " + ", ".join(
        f"{p} {mean_dly[p]:.0f} ms" for p in PROTOCOLS))


if __name__ == "__main__":
    main()
