#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from committed measurement snapshots.

Figure 8/9 table sources (first available wins):

* ``--store DIR`` — a campaign result store produced by e.g.::

      python -m repro campaign \
          --protocols basic,pcmac,scheme1,scheme2 \
          --loads 300,400,500,600,700,800,900,1000 --seeds 1,2,3 \
          --nodes 50 --duration 40 --jobs 8 --store DIR

  Stores are content-addressed and resumable: re-running the same command
  against the same ``DIR`` only simulates missing cells, so the tables can
  be regenerated incrementally as seeds are added.
* the legacy ``fullscale_results.json`` snapshot next to the repo root
  (``{"<protocol>@<load>": {"thr": ..., "dly": ...}}``);
* neither — the figure sections carry a how-to-populate note instead.

The energy-savings section reads the ``energy_savings.json`` snapshot
written by ``python -m repro.experiments.energy_savings``, the chaos
resilience section reads ``chaos_resilience.json`` from ``python -m
repro.experiments.chaos_resilience``, and the capture-study section reads
``capture_study.json`` from ``python -m repro.experiments.capture_study``
(each skipped with a note when absent).

Usage:  python tools/make_experiments_md.py [--store DIR] [--out EXPERIMENTS.md]
With ``--out`` the document is written (CI regenerates it there and fails
on drift); without, it goes to stdout.
"""

from __future__ import annotations

import argparse
import io
import json
import pathlib
from collections import defaultdict
from contextlib import redirect_stdout

from repro.analysis.report import markdown_table
from repro.analysis.stats import compare_series
from repro.experiments.figure8 import FIGURE8_LOADS_KBPS, PAPER_FIG8_KBPS
from repro.experiments.figure9 import PAPER_FIG9_MS

PROTOCOLS = ("basic", "pcmac", "scheme1", "scheme2")

ROOT = pathlib.Path(__file__).resolve().parent.parent


def load_legacy_json() -> tuple[list[int], dict, dict, str]:
    """Series from the committed ``fullscale_results.json`` snapshot."""
    path = pathlib.Path(__file__).resolve().parent.parent / "fullscale_results.json"
    data = json.loads(path.read_text())
    loads = sorted({int(k.split("@")[1]) for k in data})

    def series(metric: str) -> dict[str, list[float]]:
        return {
            p: [data[f"{p}@{ld}"][metric] for ld in loads] for p in PROTOCOLS
        }

    return loads, series("thr"), series("dly"), f"snapshot {path.name}"


def load_campaign_store(root: str) -> tuple[list[int], dict, dict, str]:
    """Seed-averaged series from a campaign result store directory.

    Only protocols present in the store appear in the tables, and only
    loads covered by *every* one of them (a shared store may hold cells
    from several differently-shaped campaigns).
    """
    from repro.analysis.export import load_store_results

    results = load_store_results(root)
    if not results:
        raise SystemExit(f"campaign store {root!r} holds no results")
    cells: dict[tuple[str, int], list] = defaultdict(list)
    seeds: set[int] = set()
    for r in results:
        cells[(r.protocol, int(round(r.offered_load_kbps)))].append(r)
        seeds.add(r.seed)
    protos = [p for p in PROTOCOLS if any(p == cp for cp, _ in cells)]
    loads = sorted(
        ld
        for ld in {load for _, load in cells}
        if all((p, ld) in cells for p in protos)
    )
    if not loads:
        raise SystemExit(
            f"campaign store {root!r} has no load covered by every protocol"
        )

    def mean(metric: str, proto: str, load: int) -> float:
        runs = cells[(proto, load)]
        return sum(getattr(r, metric) for r in runs) / len(runs)

    thr = {p: [mean("throughput_kbps", p, ld) for ld in loads] for p in protos}
    dly = {p: [mean("avg_delay_ms", p, ld) for ld in loads] for p in protos}
    provenance = (
        f"campaign store {root} ({len(results)} runs, "
        f"seeds {{{', '.join(str(s) for s in sorted(seeds))}}} mean)"
    )
    return loads, thr, dly, provenance


def print_energy_section(snapshot_path: pathlib.Path) -> None:
    """The BASIC-vs-PCM energy comparison from ``energy_savings.json``."""
    print("## Energy savings at equal throughput\n")
    if not snapshot_path.is_file():
        print(
            "*(no snapshot — run `python -m repro.experiments.energy_savings"
            "` to populate this section)*"
        )
        return
    data = json.loads(snapshot_path.read_text())
    cfg = data["config"]
    protos = data["protocols"]
    savings = data["savings"]
    print(
        f"The paper's headline claim, measured: {cfg['nodes']} nodes, "
        f"{cfg['duration_s']:g} s, {cfg['load_kbps']:g} kbps offered "
        f"(below saturation), seeds {cfg['seeds']} — WaveLAN per-state "
        "draws (see docs/model-assumptions.md), mean ± 95 % CI.\n"
    )
    rows = []
    for name in ("basic", "pcmac"):
        p = protos[name]
        rows.append([
            name,
            f"{p['throughput_kbps']:.1f} ± {p['throughput_ci_kbps']:.1f}",
            f"{p['total_j']:.0f} ± {p['total_ci_j']:.0f}",
            round(p["tx_j"], 1),
            round(p["rx_j"], 1),
            round(p["idle_j"], 1),
            round(p["radiated_j"], 2),
            round(p["energy_per_bit_j"] * 1e6, 1),
        ])
    print(markdown_table(
        ["protocol", "thr [kbps]", "total [J]", "tx [J]", "rx [J]",
         "idle [J]", "radiated [J]", "J/Mbit (full stack)"],
        rows,
    ))
    verdict = (
        "statistically indistinguishable (overlapping 95 % CIs)"
        if savings["throughput_indistinguishable"]
        else "**distinct** (CIs do not overlap)"
    )
    print(
        f"\n- throughput: {verdict}, Welch t = "
        f"{savings['throughput_welch_t']:+.2f}"
    )
    print(
        f"- PCMAC saves **{savings['aggregate_fraction']:.1%}** of BASIC's "
        "aggregate electrical energy (TX draw at reduced power levels + "
        "fewer overheard max-power frames to decode)"
    )
    print(
        f"- PCMAC saves **{savings['radiated_fraction']:.1%}** of BASIC's "
        "radiated transmit energy — the quantity the paper's power-control "
        "argument bounds"
    )
    seeds_arg = ",".join(str(s) for s in cfg["seeds"])
    print(
        "\nReproduce: `python -m repro.experiments.energy_savings "
        f"--nodes {cfg['nodes']} --duration {cfg['duration_s']:g} "
        f"--load {cfg['load_kbps']:g} --seeds {seeds_arg} "
        "--store results/energy`"
    )


def print_chaos_section(snapshot_path: pathlib.Path) -> None:
    """The BASIC-vs-PCM churn comparison from ``chaos_resilience.json``."""
    print("## Resilience under churn — BASIC vs PCM with identical crashes\n")
    if not snapshot_path.is_file():
        print(
            "*(no snapshot — run `python -m repro.experiments."
            "chaos_resilience` to populate this section)*"
        )
        return
    data = json.loads(snapshot_path.read_text())
    cfg = data["config"]
    protos = data["protocols"]
    print(
        f"Deterministic relay churn at equal offered load: {cfg['nodes']} "
        f"nodes, {cfg['duration_s']:g} s, {cfg['load_kbps']:g} kbps, "
        f"{cfg['crashes_per_run']} relay crashes per run "
        f"({cfg['downtime_s']:g} s downtime each), seeds {cfg['seeds']} — "
        "both protocols see the *same* nodes die at the same instants "
        "(the crash schedule is drawn from the seeded `\"faults\"` stream, "
        "independent of the MAC), mean ± 95 % CI.\n"
    )
    rows = []
    for name in ("basic", "pcmac"):
        p = protos[name]
        rows.append([
            name,
            f"{p['delivery_during']:.3f} ± {p['delivery_during_ci']:.3f}",
            f"{p['delivery_outside']:.3f} ± {p['delivery_outside_ci']:.3f}",
            f"{p['degradation']:+.1%}",
            f"{p['rerouted']}/{p['crashes']}",
            f"{p['mean_reroute_s']:.1f}",
            f"{p['mean_recovery_s']:.1f}",
        ])
    print(markdown_table(
        ["protocol", "delivery (faults)", "delivery (clear)",
         "degradation", "rerouted", "reroute [s]", "recovery [s]"],
        rows,
    ))
    gap = data["degradation_gap"]
    holder = "PCM" if gap > 0 else "BASIC"
    print(
        f"\n- degradation gap (basic − pcmac): **{gap:+.1%}** — {holder} "
        "holds its delivery up better inside fault windows"
    )
    print(
        "- reroute/recovery times are bin-granular "
        "(1 s resilience sampling interval); see docs/faults.md for the "
        "fault model and determinism contract"
    )
    seeds_arg = ",".join(str(s) for s in cfg["seeds"])
    print(
        "\nReproduce: `python -m repro.experiments.chaos_resilience "
        f"--nodes {cfg['nodes']} --duration {cfg['duration_s']:g} "
        f"--load {cfg['load_kbps']:g} --seeds {seeds_arg} "
        f"--crashes {cfg['crashes_per_run']} "
        f"--downtime {cfg['downtime_s']:g} --store results/chaos`"
    )


def print_capture_section(snapshot_path: pathlib.Path) -> None:
    """The threshold-vs-SINR receiver comparison from ``capture_study.json``."""
    print("## Reception-model sensitivity — threshold vs cumulative SINR\n")
    if not snapshot_path.is_file():
        print(
            "*(no snapshot — run `python -m repro.experiments."
            "capture_study` to populate this section)*"
        )
        return
    data = json.loads(snapshot_path.read_text())
    cfg = data["config"]
    print(
        f"The same dense clustered field ({cfg['nodes']} nodes on "
        f"{cfg['field_m']:g}×{cfg['field_m']:g} m, {cfg['duration_s']:g} s, "
        f"{cfg['load_kbps']:g} kbps offered — saturating), run under the "
        "paper's NS-2 threshold receiver (`reception=null`) and the "
        "cumulative-interference SINR state machine (`reception=sinr`, "
        "see docs/phy-models.md), seeds "
        f"{cfg['seeds']}, mean ± 95 % CI.  Drop columns are the SINR "
        "receiver's typed loss ledger summed over nodes and seeds.\n"
    )
    rows = []
    for c in data["cells"]:
        sinr = c["reception"] == "sinr"
        rows.append([
            c["protocol"],
            c["reception"],
            f"{c['throughput_kbps']:.1f} ± {c['throughput_ci']:.1f}",
            f"{c['delivery']:.3f} ± {c['delivery_ci']:.3f}",
            c["drop_collision"] if sinr else "—",
            c["drop_capture_lost"] if sinr else "—",
            c["drop_below_sensitivity"] if sinr else "—",
        ])
    print(markdown_table(
        ["protocol", "reception", "thr [kbps]", "delivery",
         "collision", "capture lost", "below sens."],
        rows,
    ))
    print(
        f"\n- BASIC − PCM throughput gap: **{data['gap_null_kbps']:+.1f} "
        f"kbps** under the threshold receiver, "
        f"**{data['gap_sinr_kbps']:+.1f} kbps** under SINR — the model "
        f"choice moves the protocol comparison by "
        f"**{data['gap_shift_kbps']:+.1f} kbps**"
    )
    print(
        "- a shifted (or flipped) gap is the modelling risk this section "
        "tracks: conclusions drawn from the threshold receiver alone carry "
        "at least this error bar"
    )
    seeds_arg = ",".join(str(s) for s in cfg["seeds"])
    print(
        "\nReproduce: `python -m repro.experiments.capture_study "
        f"--nodes {cfg['nodes']} --duration {cfg['duration_s']:g} "
        f"--field {cfg['field_m']:g} --load {cfg['load_kbps']:g} "
        f"--seeds {seeds_arg} --store results/capture`"
    )


def print_figures(args: argparse.Namespace) -> None:
    """Figure 8/9 tables (or a how-to-populate note when no source exists)."""
    if args.store:
        loads, thr, dly, provenance = load_campaign_store(args.store)
    elif (ROOT / "fullscale_results.json").is_file():
        loads, thr, dly, provenance = load_legacy_json()
    else:
        print("## Figures 8 & 9 — throughput / delay vs offered load\n")
        print(
            "*(no snapshot — run the campaign below with `--store DIR` and "
            "regenerate with `python tools/make_experiments_md.py --store "
            "DIR --out EXPERIMENTS.md`)*\n"
        )
        print(
            "```\n"
            "python -m repro campaign "
            f"--protocols {','.join(PROTOCOLS)} \\\n"
            "    --loads 300,400,500,600,700,800,900,1000 --seeds 1,2,3 \\\n"
            "    --nodes 50 --duration 40 --jobs 8 --store results/fullscale\n"
            "```"
        )
        return

    protos = list(thr)

    print("## Figures 8 & 9 — throughput / delay vs offered load\n")
    print(f"### Figure 8 — measured ({provenance})\n")
    rows = []
    for i, ld in enumerate(loads):
        rows.append(
            [ld]
            + [round(thr[p][i], 1) for p in protos]
        )
    print(markdown_table(["load [kbps]", *protos], rows))

    print("\n### Figure 9 — measured (same runs)\n")
    rows = []
    for i, ld in enumerate(loads):
        rows.append([ld] + [round(dly[p][i], 1) for p in protos])
    print(markdown_table(["load [kbps]", *protos], rows))

    # Shape agreement is only defined at the paper's x-axis points.
    paper_loads = [ld for ld in loads if ld in FIGURE8_LOADS_KBPS]
    if paper_loads:
        idx = [loads.index(ld) for ld in paper_loads]
        print("\n### Shape agreement vs the digitised paper curves\n")
        rows = []
        for p in protos:
            c8 = compare_series([thr[p][i] for i in idx], [
                PAPER_FIG8_KBPS[p][FIGURE8_LOADS_KBPS.index(ld)]
                for ld in paper_loads
            ])
            c9 = compare_series([dly[p][i] for i in idx], [
                PAPER_FIG9_MS[p][FIGURE8_LOADS_KBPS.index(ld)]
                for ld in paper_loads
            ])
            rows.append([
                p,
                round(c8.rank_correlation, 2),
                round(c8.final_ratio, 2),
                round(c9.rank_correlation, 2),
                round(c9.final_ratio, 2),
            ])
        print(
            markdown_table(
                ["protocol", "Fig8 rank-ρ", "Fig8 final ratio",
                 "Fig9 rank-ρ", "Fig9 final ratio"],
                rows,
            )
        )

    print("\n### Key quantities\n")
    peak = {p: max(thr[p]) for p in protos}
    print(f"- peak throughput: " + ", ".join(
        f"{p} {peak[p]:.0f} kbps" for p in protos))
    if "pcmac" in peak and "basic" in peak:
        gain = (peak["pcmac"] / peak["basic"] - 1) * 100
        print(f"- PCMAC peak-capacity gain over basic 802.11: {gain:+.1f}% "
              f"(paper: +8–10%)")
    mean_dly = {p: sum(dly[p]) / len(dly[p]) for p in protos}
    print(f"- mean delay across the sweep: " + ", ".join(
        f"{p} {mean_dly[p]:.0f} ms" for p in protos))

    print(
        "\n### Reproducing these tables\n\n"
        "```\n"
        "python -m repro campaign "
        f"--protocols {','.join(protos)} \\\n"
        f"    --loads {','.join(str(ld) for ld in loads)} --seeds 1,2,3 \\\n"
        "    --nodes 50 --duration 40 --jobs 8 --store results/fullscale\n"
        "python tools/make_experiments_md.py --store results/fullscale\n"
        "```\n\n"
        "The store is content-addressed (cells keyed by a hash of the full\n"
        "run specification), so interrupted campaigns resume and repeated\n"
        "invocations are pure cache hits."
    )


def render(args: argparse.Namespace) -> str:
    """Compose the whole EXPERIMENTS.md document as a string."""
    buf = io.StringIO()
    with redirect_stdout(buf):
        print("# EXPERIMENTS — measured results\n")
        print(
            "Generated by `python tools/make_experiments_md.py` from "
            "committed snapshots — regenerate rather than editing by hand "
            "(CI diffs this file against a fresh render).\n"
        )
        print_figures(args)
        print()
        print_energy_section(pathlib.Path(args.energy_json))
        print()
        print_chaos_section(pathlib.Path(args.chaos_json))
        print()
        print_capture_section(pathlib.Path(args.capture_json))
    return buf.getvalue().rstrip() + "\n"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--store",
        default="",
        help="campaign result store directory for the figure tables "
             "(default: fullscale_results.json if present, else skipped)",
    )
    parser.add_argument(
        "--energy-json",
        default=str(ROOT / "energy_savings.json"),
        help="energy_savings snapshot for the energy section",
    )
    parser.add_argument(
        "--chaos-json",
        default=str(ROOT / "chaos_resilience.json"),
        help="chaos_resilience snapshot for the resilience section",
    )
    parser.add_argument(
        "--capture-json",
        default=str(ROOT / "capture_study.json"),
        help="capture_study snapshot for the reception-model section",
    )
    parser.add_argument(
        "--out",
        default="",
        help="write the document here instead of stdout",
    )
    args = parser.parse_args()

    text = render(args)
    if args.out:
        pathlib.Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(text, end="")


if __name__ == "__main__":
    main()
