#!/usr/bin/env python3
"""Generate the measured-results tables of EXPERIMENTS.md.

Two input modes:

* default — the legacy ``fullscale_results.json`` snapshot next to the repo
  root (``{"<protocol>@<load>": {"thr": ..., "dly": ...}}``);
* ``--store DIR`` — a campaign result store produced by e.g.::

      python -m repro campaign \
          --protocols basic,pcmac,scheme1,scheme2 \
          --loads 300,400,500,600,700,800,900,1000 --seeds 1,2,3 \
          --nodes 50 --duration 40 --jobs 8 --store DIR

  Stores are content-addressed and resumable: re-running the same command
  against the same ``DIR`` only simulates missing cells, so the tables can
  be regenerated incrementally as seeds are added.

Usage:  python tools/make_experiments_md.py [--store DIR]
Prints the markdown tables to stdout; EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from collections import defaultdict

from repro.analysis.report import markdown_table
from repro.analysis.stats import compare_series
from repro.experiments.figure8 import FIGURE8_LOADS_KBPS, PAPER_FIG8_KBPS
from repro.experiments.figure9 import PAPER_FIG9_MS

PROTOCOLS = ("basic", "pcmac", "scheme1", "scheme2")


def load_legacy_json() -> tuple[list[int], dict, dict, str]:
    """Series from the committed ``fullscale_results.json`` snapshot."""
    path = pathlib.Path(__file__).resolve().parent.parent / "fullscale_results.json"
    data = json.loads(path.read_text())
    loads = sorted({int(k.split("@")[1]) for k in data})

    def series(metric: str) -> dict[str, list[float]]:
        return {
            p: [data[f"{p}@{ld}"][metric] for ld in loads] for p in PROTOCOLS
        }

    return loads, series("thr"), series("dly"), f"snapshot {path.name}"


def load_campaign_store(root: str) -> tuple[list[int], dict, dict, str]:
    """Seed-averaged series from a campaign result store directory.

    Only protocols present in the store appear in the tables, and only
    loads covered by *every* one of them (a shared store may hold cells
    from several differently-shaped campaigns).
    """
    from repro.analysis.export import load_store_results

    results = load_store_results(root)
    if not results:
        raise SystemExit(f"campaign store {root!r} holds no results")
    cells: dict[tuple[str, int], list] = defaultdict(list)
    seeds: set[int] = set()
    for r in results:
        cells[(r.protocol, int(round(r.offered_load_kbps)))].append(r)
        seeds.add(r.seed)
    protos = [p for p in PROTOCOLS if any(p == cp for cp, _ in cells)]
    loads = sorted(
        ld
        for ld in {load for _, load in cells}
        if all((p, ld) in cells for p in protos)
    )
    if not loads:
        raise SystemExit(
            f"campaign store {root!r} has no load covered by every protocol"
        )

    def mean(metric: str, proto: str, load: int) -> float:
        runs = cells[(proto, load)]
        return sum(getattr(r, metric) for r in runs) / len(runs)

    thr = {p: [mean("throughput_kbps", p, ld) for ld in loads] for p in protos}
    dly = {p: [mean("avg_delay_ms", p, ld) for ld in loads] for p in protos}
    provenance = (
        f"campaign store {root} ({len(results)} runs, "
        f"seeds {{{', '.join(str(s) for s in sorted(seeds))}}} mean)"
    )
    return loads, thr, dly, provenance


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--store",
        default="",
        help="campaign result store directory (default: fullscale_results.json)",
    )
    args = parser.parse_args()

    if args.store:
        loads, thr, dly, provenance = load_campaign_store(args.store)
    else:
        loads, thr, dly, provenance = load_legacy_json()

    protos = list(thr)

    print(f"### Figure 8 — measured ({provenance})\n")
    rows = []
    for i, ld in enumerate(loads):
        rows.append(
            [ld]
            + [round(thr[p][i], 1) for p in protos]
        )
    print(markdown_table(["load [kbps]", *protos], rows))

    print("\n### Figure 9 — measured (same runs)\n")
    rows = []
    for i, ld in enumerate(loads):
        rows.append([ld] + [round(dly[p][i], 1) for p in protos])
    print(markdown_table(["load [kbps]", *protos], rows))

    # Shape agreement is only defined at the paper's x-axis points.
    paper_loads = [ld for ld in loads if ld in FIGURE8_LOADS_KBPS]
    if paper_loads:
        idx = [loads.index(ld) for ld in paper_loads]
        print("\n### Shape agreement vs the digitised paper curves\n")
        rows = []
        for p in protos:
            c8 = compare_series([thr[p][i] for i in idx], [
                PAPER_FIG8_KBPS[p][FIGURE8_LOADS_KBPS.index(ld)]
                for ld in paper_loads
            ])
            c9 = compare_series([dly[p][i] for i in idx], [
                PAPER_FIG9_MS[p][FIGURE8_LOADS_KBPS.index(ld)]
                for ld in paper_loads
            ])
            rows.append([
                p,
                round(c8.rank_correlation, 2),
                round(c8.final_ratio, 2),
                round(c9.rank_correlation, 2),
                round(c9.final_ratio, 2),
            ])
        print(
            markdown_table(
                ["protocol", "Fig8 rank-ρ", "Fig8 final ratio",
                 "Fig9 rank-ρ", "Fig9 final ratio"],
                rows,
            )
        )

    print("\n### Key quantities\n")
    peak = {p: max(thr[p]) for p in protos}
    print(f"- peak throughput: " + ", ".join(
        f"{p} {peak[p]:.0f} kbps" for p in protos))
    if "pcmac" in peak and "basic" in peak:
        gain = (peak["pcmac"] / peak["basic"] - 1) * 100
        print(f"- PCMAC peak-capacity gain over basic 802.11: {gain:+.1f}% "
              f"(paper: +8–10%)")
    mean_dly = {p: sum(dly[p]) / len(dly[p]) for p in protos}
    print(f"- mean delay across the sweep: " + ", ".join(
        f"{p} {mean_dly[p]:.0f} ms" for p in protos))

    print(
        "\n### Reproducing these tables\n\n"
        "```\n"
        "python -m repro campaign "
        f"--protocols {','.join(protos)} \\\n"
        f"    --loads {','.join(str(ld) for ld in loads)} --seeds 1,2,3 \\\n"
        "    --nodes 50 --duration 40 --jobs 8 --store results/fullscale\n"
        "python tools/make_experiments_md.py --store results/fullscale\n"
        "```\n\n"
        "The store is content-addressed (cells keyed by a hash of the full\n"
        "run specification), so interrupted campaigns resume and repeated\n"
        "invocations are pure cache hits."
    )


if __name__ == "__main__":
    main()
