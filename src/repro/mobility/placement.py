"""Initial node placement helpers."""

from __future__ import annotations

import math

import numpy as np

Position = tuple[float, float]


def uniform_positions(
    rng: np.random.Generator, count: int, width_m: float, height_m: float
) -> list[Position]:
    """``count`` positions drawn uniformly over the field."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    xs = rng.uniform(0.0, width_m, size=count)
    ys = rng.uniform(0.0, height_m, size=count)
    return [(float(x), float(y)) for x, y in zip(xs, ys)]


def grid_positions(count: int, width_m: float, height_m: float) -> list[Position]:
    """``count`` positions on a near-square grid covering the field."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    cols = math.ceil(math.sqrt(count))
    rows = math.ceil(count / cols)
    out: list[Position] = []
    for i in range(count):
        r, c = divmod(i, cols)
        x = (c + 0.5) * width_m / cols
        y = (r + 0.5) * height_m / rows
        out.append((x, y))
    return out


def line_positions(count: int, spacing_m: float, y_m: float = 0.0) -> list[Position]:
    """``count`` positions on a horizontal line with fixed spacing.

    The layout of the paper's Figure 1 chain scenarios.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    if spacing_m <= 0:
        raise ValueError(f"spacing must be positive, got {spacing_m!r}")
    return [(i * spacing_m, y_m) for i in range(count)]
