"""Node mobility models and initial placement helpers.

The paper's scenario uses the CMU random waypoint model at 3 m/s with a 3 s
pause in a 1000 m × 1000 m field.  Positions are computed lazily and in
closed form along each leg, so querying a position is O(1) and no per-tick
movement events enter the simulator.
"""

from repro.mobility.base import MobilityModel
from repro.mobility.placement import (
    grid_positions,
    line_positions,
    uniform_positions,
)
from repro.mobility.static import StaticMobility
from repro.mobility.waypoint import RandomWaypoint

__all__ = [
    "MobilityModel",
    "RandomWaypoint",
    "StaticMobility",
    "grid_positions",
    "line_positions",
    "uniform_positions",
]
