"""Random waypoint mobility (CMU model, as used by the paper).

A node alternates between *pause* legs (3 s in the paper) and *move* legs
toward a uniformly chosen destination at a fixed speed (3 m/s in the paper;
the classic model draws speeds from a range — pass ``speed_range`` for
that).  Legs are generated lazily from the node's own RNG stream, so the
trajectory is reproducible and independent of every other random consumer.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import MobilityConfig
from repro.mobility.base import MobilityModel, Position


class RandomWaypoint(MobilityModel):
    """Lazily generated random-waypoint trajectory."""

    __slots__ = (
        "_cfg",
        "_rng",
        "_speed_range",
        "_t0",
        "_t1",
        "_p0",
        "_p1",
        "_paused",
        "_epoch",
        "_last_pos",
    )

    def __init__(
        self,
        rng: np.random.Generator,
        cfg: MobilityConfig,
        initial: Position,
        *,
        speed_range: tuple[float, float] | None = None,
    ) -> None:
        self._cfg = cfg
        self._rng = rng
        self._speed_range = speed_range
        self._p0 = (float(initial[0]), float(initial[1]))
        self._p1 = self._p0
        self._t0 = 0.0
        # Begin with a pause leg, like the CMU generator.
        self._t1 = cfg.pause_s
        self._paused = True
        self._epoch = 0
        self._last_pos = self._p0

    def _draw_speed(self) -> float:
        if self._speed_range is not None:
            lo, hi = self._speed_range
            return float(self._rng.uniform(lo, hi))
        return self._cfg.speed_mps

    def _next_leg(self) -> None:
        if self._paused:
            # Start moving toward a fresh waypoint.
            dest = (
                float(self._rng.uniform(0.0, self._cfg.field_width_m)),
                float(self._rng.uniform(0.0, self._cfg.field_height_m)),
            )
            speed = self._draw_speed()
            self._p0 = self._p1
            self._p1 = dest
            self._t0 = self._t1
            dist = math.hypot(dest[0] - self._p0[0], dest[1] - self._p0[1])
            if speed <= 0.0:
                # Degenerate config: the node never actually moves.
                self._p1 = self._p0
                self._t1 = math.inf
            else:
                self._t1 = self._t0 + dist / speed
            self._paused = False
        else:
            # Arrived: pause at the destination (paper: 3 seconds).
            self._p0 = self._p1
            self._t0 = self._t1
            self._t1 = self._t0 + self._cfg.pause_s
            self._paused = True

    @property
    def epoch(self) -> int:
        """Movement epoch: bumps on every sample that returns a new position.

        Pause legs (3 s in the paper) therefore hold the epoch steady, as do
        repeated samples at the same instant, so per-link caches keyed on the
        epoch hit exactly when the node genuinely has not moved.
        """
        return self._epoch

    def max_speed_mps(self) -> float:
        if self._speed_range is not None:
            return float(self._speed_range[1])
        return self._cfg.speed_mps

    def position_at(self, t: float) -> Position:
        while t >= self._t1:
            self._next_leg()
        if self._paused or self._t1 == self._t0:
            pos = self._p0
        else:
            frac = (t - self._t0) / (self._t1 - self._t0)
            if frac <= 0.0:
                pos = self._p0
            else:
                pos = (
                    self._p0[0] + (self._p1[0] - self._p0[0]) * frac,
                    self._p0[1] + (self._p1[1] - self._p0[1]) * frac,
                )
        if pos != self._last_pos:
            self._epoch += 1
            self._last_pos = pos
        return pos
