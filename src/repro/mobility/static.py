"""Immobile nodes — controlled topologies for MAC-focused experiments."""

from __future__ import annotations

from repro.mobility.base import MobilityModel, Position


class StaticMobility(MobilityModel):
    """A node pinned at a fixed position."""

    __slots__ = ("_pos",)

    def __init__(self, position: Position) -> None:
        self._pos = (float(position[0]), float(position[1]))

    @property
    def position(self) -> Position:
        """The fixed position."""
        return self._pos

    def position_at(self, t: float) -> Position:
        return self._pos

    def poll(self, t: float) -> tuple[Position, int]:
        # Allocation-free fast path: same tuple object, epoch pinned at 0.
        return self._pos, 0

    def max_speed_mps(self) -> float:
        return 0.0
