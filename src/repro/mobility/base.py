"""Mobility model interface."""

from __future__ import annotations

Position = tuple[float, float]


class MobilityModel:
    """Interface: a node's position as a function of simulation time.

    ``position_at`` may assume monotonically non-decreasing query times (the
    simulator clock only moves forward), which lets implementations advance
    internal state lazily.
    """

    def position_at(self, t: float) -> Position:
        """The node's (x, y) position [m] at simulation time ``t``."""
        raise NotImplementedError
