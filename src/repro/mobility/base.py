"""Mobility model interface."""

from __future__ import annotations

Position = tuple[float, float]


class MobilityModel:
    """Interface: a node's position as a function of simulation time.

    ``position_at`` may assume monotonically non-decreasing query times (the
    simulator clock only moves forward), which lets implementations advance
    internal state lazily.

    Movement epochs
    ---------------
    Models additionally expose a monotonically non-decreasing **epoch**
    counter that bumps whenever a position sample returns a *different*
    position than the previous sample.  Immobile models never bump, so a
    consumer that cached a derived quantity (e.g. a link gain in
    :class:`~repro.phy.channel.Channel`) can validate its cache with one
    integer comparison instead of resampling and recomputing.  The epoch
    only advances when the position is actually *sampled* — callers that
    need the epoch at the current time must call :meth:`poll` (which samples
    and reports atomically) rather than reading :attr:`epoch` alone.
    """

    def position_at(self, t: float) -> Position:
        """The node's (x, y) position [m] at simulation time ``t``."""
        raise NotImplementedError

    @property
    def epoch(self) -> int:
        """Movement epoch as of the most recent position sample.

        The base implementation is pinned at 0 — correct for any model whose
        ``position_at`` is constant.  Mobile models override it.
        """
        return 0

    def poll(self, t: float) -> tuple[Position, int]:
        """Sample the position at ``t`` and return ``(position, epoch)``.

        Equal epochs across two polls guarantee the returned positions were
        equal, so any pure function of the position may be reused.
        """
        pos = self.position_at(t)
        return pos, self.epoch

    def max_speed_mps(self) -> float:
        """Upper bound on the node's speed [m/s] (0 for immobile models).

        Consumers that keep spatial data structures approximately fresh
        (e.g. the channel's grid index) use this to bound how far a node can
        drift between refreshes.  Models with unbounded speed should return
        ``math.inf``; the base implementation does, as the safe default.
        """
        return float("inf")
