"""Command-line experiment runner: ``python -m repro <experiment> [...]``.

Experiments:

* ``figure8`` — aggregate throughput vs offered load (paper Figure 8)
* ``figure9`` — mean end-to-end delay vs offered load (paper Figure 9)
* ``ranges``  — the power-level ↔ decode-range table (Section IV)
* ``list``    — every registered scenario component, per slot, with its
  param schema (the building blocks a ``spec.json`` can name)
* ``quickrun`` (alias ``quick``) — one scenario, one protocol, printed
  summary; ``--scenario spec.json`` runs a scenario defined purely as data
  through the declarative builder and prints its content key
* ``energy`` — run one declarative scenario and print its per-node,
  per-state energy table (and battery deaths, if any); the scenario's
  ``energy`` component selects the accounting model
* ``trace`` — run one declarative scenario with tracing on and export the
  event stream as JSONL (``--out``), with per-category filters
* ``stats`` — run one declarative scenario with periodic probes and print
  per-gauge time-series tables (``--profile`` adds the kernel's per-event-kind
  wall-clock attribution)
* ``campaign`` — a protocol × load × seed grid through the parallel
  campaign runner, with an optional content-addressed result store;
  ``--live`` streams a per-cell progress line (events/sec, ETA, peak RSS)
  while cells execute and records runtime stats into the store
* ``fleet`` — the fault-tolerant campaign fleet (see ``docs/campaigns.md``):
  ``serve`` enqueues a grid into a store's durable work queue and drains it
  with supervised lease-holding workers; ``work`` runs one standalone
  worker against any fleet store (same machine or shared filesystem);
  ``status`` prints the structured liveness snapshot (tasks, leases,
  worker heartbeats, stalls); ``compact`` folds each result shard to one
  line per key, crash-safely

``--scale quick`` (default) runs a reduced configuration; ``--scale full``
uses the paper's 50 nodes / 400 s / 8 loads.

``figure8``/``figure9``/``campaign`` share the campaign flags: ``--jobs N``
fans cells out to N worker processes (results are identical to serial —
every cell carries its own seed); ``--store DIR`` memoises finished cells
on disk; ``--no-resume`` forces recomputation of stored cells.  Re-running
against the same store is a pure cache hit, and an interrupted campaign
resumes from the cells already on disk.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from dataclasses import replace

from repro.analysis.export import sweep_to_csv
from repro.analysis.plotting import ascii_chart
from repro.analysis.report import paper_vs_measured
from repro.campaign.runner import run_specs
from repro.campaign.spec import Campaign
from repro.campaign.store import ResultStore
from repro.config import ScenarioConfig
from repro.experiments.figure8 import (
    FIGURE8_LOADS_KBPS,
    PAPER_FIG8_KBPS,
    PROTOCOLS,
    run_figure8,
)
from repro.experiments.figure9 import PAPER_FIG9_MS
from repro.experiments.ranges import max_power_ranges, power_level_table
from repro.experiments.scenario import build_network
from repro.experiments.sweep import sweep_from_campaign
from repro.registry import all_registries, registry
from repro.scenariospec import ComponentSpec, ScenarioSpec

#: Default ``repro trace`` categories: the low-rate, semantically dense
#: stream (application endpoints and every drop).  PHY signal edges exist
#: too (phy.tx / phy.rx_ok / phy.rx_err / phy.cs) but dominate volume.
DEFAULT_TRACE_CATEGORIES = "app.tx,app.rx,mac.drop,net.drop,mac.handshake"


def _add_campaign_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = serial)")
    p.add_argument("--store", type=str, default="",
                   help="result store directory (enables caching/resume)")
    p.add_argument("--resume", dest="resume", action="store_true", default=True,
                   help="reuse cells already in the store (default)")
    p.add_argument("--no-resume", dest="resume", action="store_false",
                   help="ignore stored cells and re-simulate everything")
    p.add_argument("--timeout", type=float, default=0.0,
                   help="per-cell wall-clock budget [s] in the pooled path; "
                        "an overdue (hung) cell is retried, then recorded "
                        "as a failure (0 = no limit)")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts per failing cell before its error "
                        "is recorded and the campaign moves on")


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro", description="PCMAC reproduction experiments"
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    for fig in ("figure8", "figure9"):
        p = sub.add_parser(fig, help=f"reproduce the paper's {fig}")
        p.add_argument("--scale", choices=("quick", "full"), default="quick")
        p.add_argument("--seeds", type=str, default="1")
        p.add_argument("--loads", type=str, default="")
        p.add_argument("--nodes", type=int, default=0,
                       help="override node count (0 = scale default)")
        p.add_argument("--duration", type=float, default=0.0,
                       help="override simulated seconds (0 = scale default)")
        _add_campaign_flags(p)

    sub.add_parser("ranges", help="power level vs range table")

    sub.add_parser(
        "list", help="registered scenario components, per slot, with params"
    )

    q = sub.add_parser(
        "quickrun", aliases=["quick"], help="single scenario run"
    )
    q.add_argument("--scenario", type=str, default="",
                   help="run a declarative ScenarioSpec from this JSON file "
                        "(overrides every other flag)")
    q.add_argument("--protocol", choices=registry("mac").names(),
                   default="pcmac")
    q.add_argument("--nodes", type=int, default=20)
    q.add_argument("--duration", type=float, default=30.0)
    q.add_argument("--load-kbps", type=float, default=400.0)
    q.add_argument("--seed", type=int, default=1)

    e = sub.add_parser(
        "energy",
        help="run a scenario and print its per-node/per-state energy table",
    )
    e.add_argument("--scenario", type=str, required=True,
                   help="declarative ScenarioSpec JSON file; give it a "
                        "non-null energy component (e.g. wavelan) to "
                        "enable accounting")

    t = sub.add_parser(
        "trace",
        help="run a scenario with tracing on and export the event stream",
    )
    t.add_argument("--scenario", type=str, required=True,
                   help="declarative ScenarioSpec JSON file")
    t.add_argument("--categories", type=str, default=DEFAULT_TRACE_CATEGORIES,
                   help="comma-separated trace categories to enable")
    t.add_argument("--out", type=str, default="",
                   help="stream records to this JSONL file (unbounded; "
                        "default: collect in memory and print)")
    t.add_argument("--limit", type=int, default=20,
                   help="records to print when not exporting")
    t.add_argument("--node", type=int, default=-1,
                   help="only print records for this node (-1 = all)")
    t.add_argument("--max-records", type=int, default=0,
                   help="in-memory record cap override (0 = default)")

    st = sub.add_parser(
        "stats",
        help="run a scenario with periodic probes; print gauge time series",
    )
    st.add_argument("--scenario", type=str, required=True,
                    help="declarative ScenarioSpec JSON file")
    st.add_argument("--interval", type=float, default=0.0,
                    help="probe interval [s] (0 = spec's own, else 1s)")
    st.add_argument("--gauges", type=str, default="",
                    help="comma-separated gauge subset (default: all)")
    st.add_argument("--node", type=int, default=-1,
                    help="per-node drill-down for --gauges' first gauge")
    st.add_argument("--profile", action="store_true",
                    help="also enable kernel self-profiling and print the "
                         "per-event-kind wall-clock table")

    c = sub.add_parser(
        "campaign",
        help="run a protocol × load × seed grid via the campaign runner",
    )
    c.add_argument("--protocols", type=str, default=",".join(PROTOCOLS),
                   help="comma-separated MAC protocols")
    c.add_argument("--loads", type=str, default="300,500,700",
                   help="comma-separated offered loads [kbps]")
    c.add_argument("--seeds", type=str, default="1",
                   help="comma-separated replication seeds")
    c.add_argument("--nodes", type=int, default=30)
    c.add_argument("--duration", type=float, default=60.0)
    c.add_argument("--export-csv", type=str, default="",
                   help="write per-run CSV to this path ('-' = stdout)")
    c.add_argument("--live", action="store_true",
                   help="stream a live per-cell progress line (sim-time "
                        "rate, events/sec, ETA, peak RSS) and record "
                        "runtime stats into the store")
    _add_campaign_flags(c)

    f = sub.add_parser(
        "fleet",
        help="fault-tolerant campaign fleet: lease-based work queue over "
             "a sharded, content-addressed result store",
    )
    fsub = f.add_subparsers(dest="fleet_cmd", required=True)

    fs = fsub.add_parser(
        "serve",
        help="enqueue a protocol × load × seed grid and drain it with "
             "supervised lease-holding workers",
    )
    fs.add_argument("store", help="fleet store directory (created if new)")
    fs.add_argument("--protocols", type=str, default=",".join(PROTOCOLS),
                    help="comma-separated MAC protocols")
    fs.add_argument("--loads", type=str, default="300,500,700",
                    help="comma-separated offered loads [kbps]")
    fs.add_argument("--seeds", type=str, default="1",
                    help="comma-separated replication seeds")
    fs.add_argument("--nodes", type=int, default=30)
    fs.add_argument("--duration", type=float, default=60.0)
    fs.add_argument("--jobs", type=int, default=2,
                    help="supervised worker processes to spawn")
    fs.add_argument("--retries", type=int, default=0,
                    help="extra attempts per failing cell before its error "
                         "is recorded permanently")
    fs.add_argument("--lease-ttl", type=float, default=0.0,
                    help="lease time-to-live [s]; a worker silent this "
                         "long forfeits its run to the fleet (0 = default)")
    fs.add_argument("--shards", type=int, default=0,
                    help="shard count when creating a new store "
                         "(0 = default; existing stores keep theirs)")
    fs.add_argument("--live", action="store_true",
                    help="stream per-cell progress heartbeats")

    fw = fsub.add_parser(
        "work",
        help="run one standalone worker against a fleet store (any "
             "machine sharing the filesystem)",
    )
    fw.add_argument("store", help="fleet store directory")
    fw.add_argument("--lease-ttl", type=float, default=0.0,
                    help="lease time-to-live [s] (0 = default)")
    fw.add_argument("--max-attempts", type=int, default=0,
                    help="attempt budget per run before its error is "
                         "recorded permanently (0 = default)")
    fw.add_argument("--max-runs", type=int, default=0,
                    help="exit after claiming this many runs (0 = no cap)")
    fw.add_argument("--wait", action="store_true",
                    help="idle when the queue is empty instead of exiting "
                         "(service mode; stop with `repro fleet status` "
                         "STOP or a signal)")

    fst = fsub.add_parser(
        "status",
        help="liveness snapshot: queued tasks, lease owners, worker "
             "heartbeats, stalls",
    )
    fst.add_argument("store", help="fleet store directory")
    fst.add_argument("--stall-after", type=float, default=0.0,
                     help="flag workers whose heartbeat is older than "
                          "this [s] (0 = default)")
    fst.add_argument("--stop", action="store_true",
                     help="request a cooperative fleet-wide stop (workers "
                          "finish their current run, then exit)")
    fst.add_argument("--clear-stop", action="store_true",
                     help="withdraw a previously requested stop")

    fc = fsub.add_parser(
        "compact",
        help="fold each result shard to one line per key (crash-safe; "
             "concurrent readers and writers are unaffected)",
    )
    fc.add_argument("store", help="fleet store directory")

    return parser.parse_args(argv)


def _open_store(args: argparse.Namespace) -> ResultStore | None:
    if not args.store:
        return None
    # The factory respects an existing layout: a fleet-created sharded
    # store opens sharded here too, so `repro campaign` and `repro fleet`
    # share one content-addressed cache.
    from repro.fleet.shards import open_store

    return open_store(args.store)


def _scale_config(scale: str) -> tuple[ScenarioConfig, tuple[float, ...]]:
    if scale == "full":
        return ScenarioConfig(), FIGURE8_LOADS_KBPS
    cfg = ScenarioConfig(node_count=30, duration_s=60.0)
    return cfg, (300.0, 500.0, 700.0, 900.0)


def _run_figure(args: argparse.Namespace, *, delay: bool) -> int:
    cfg, loads = _scale_config(args.scale)
    if args.loads:
        loads = tuple(float(x) for x in args.loads.split(","))
    if args.nodes:
        cfg = replace(cfg, node_count=args.nodes)
    if args.duration:
        cfg = replace(cfg, duration_s=args.duration)
    seeds = tuple(int(s) for s in args.seeds.split(","))
    sweep = run_figure8(
        cfg,
        loads_kbps=loads,
        seeds=seeds,
        progress=lambda s: print("  " + s),
        jobs=args.jobs,
        store=_open_store(args),
        resume=args.resume,
    )
    if delay:
        measured = sweep.delay_series()
        paper = {
            k: _resample(PAPER_FIG9_MS[k], FIGURE8_LOADS_KBPS, loads)
            for k in PROTOCOLS
        }
        title, ylab = "Figure 9: end-to-end delay vs offered load", "delay [ms]"
    else:
        measured = sweep.throughput_series()
        paper = {
            k: _resample(PAPER_FIG8_KBPS[k], FIGURE8_LOADS_KBPS, loads)
            for k in PROTOCOLS
        }
        title, ylab = "Figure 8: throughput vs offered load", "throughput [kbps]"
    print()
    print(paper_vs_measured("load [kbps]", loads, paper, measured))
    print()
    chart = {name: (list(loads), series) for name, series in measured.items()}
    print(ascii_chart(chart, title=title, x_label="offered load [kbps]", y_label=ylab))
    return 0


def _resample(
    series: tuple[float, ...], xs: tuple[float, ...], targets: tuple[float, ...]
) -> list[float]:
    """Linear interpolation of the digitised paper curves onto other loads."""
    out = []
    for t in targets:
        if t <= xs[0]:
            out.append(series[0])
            continue
        if t >= xs[-1]:
            out.append(series[-1])
            continue
        for i in range(len(xs) - 1):
            if xs[i] <= t <= xs[i + 1]:
                frac = (t - xs[i]) / (xs[i + 1] - xs[i])
                out.append(series[i] + frac * (series[i + 1] - series[i]))
                break
    return out


def _run_ranges() -> int:
    rows = power_level_table()
    print(f"{'P [mW]':>9}  {'paper [m]':>10}  {'computed [m]':>13}  {'sense [m]':>10}  {'err':>6}")
    for row in rows:
        print(
            f"{row.power_mw:9.2f}  {row.paper_range_m:10.0f}  "
            f"{row.computed_range_m:13.1f}  {row.sensing_range_m:10.1f}  "
            f"{row.relative_error * 100:5.1f}%"
        )
    decode, sense = max_power_ranges()
    print(f"\nmax power geometry: decode {decode:.1f} m (paper 250), "
          f"sense {sense:.1f} m (paper 550)")
    return 0


def _run_list() -> int:
    """Enumerate every registered component, slot by slot."""
    for slot, reg in all_registries().items():
        print(f"{slot}:")
        for entry in reg.entries():
            sig = entry.signature()
            line = f"  {entry.name:<14}{entry.doc}"
            print(line.rstrip())
            if sig:
                print(f"  {'':<14}params: {sig}")
    return 0


def _run_quick(args: argparse.Namespace) -> int:
    if args.scenario:
        spec = ScenarioSpec.load(args.scenario)
        print(f"scenario: {args.scenario}")
        print(
            "  components: "
            + ", ".join(
                f"{slot}={comp}" for slot, comp in spec.components().items()
            )
        )
        print(f"  key: {spec.key()}")
        net = spec.build()
    else:
        cfg = ScenarioConfig(
            node_count=args.nodes,
            duration_s=args.duration,
            seed=args.seed,
        )
        cfg = replace(
            cfg,
            traffic=replace(cfg.traffic, offered_load_bps=args.load_kbps * 1000.0),
        )
        net = build_network(cfg, args.protocol)
    result = net.run()
    print(result.row())
    print(f"  fairness (Jain): {result.fairness:.3f}")
    print(f"  drops: {result.drops}")
    print(f"  events: {result.events_executed:,} in {result.wallclock_s:.1f}s wall")
    return 0


def _run_energy(args: argparse.Namespace) -> int:
    """Run one declarative scenario and print its energy accounting."""
    from repro.metrics.summary import energy_node_table, summarise_energy

    spec = ScenarioSpec.load(args.scenario)
    print(f"scenario: {args.scenario}")
    print(f"  energy model: {spec.energy}")
    print(f"  key: {spec.key()}")
    result = spec.build().run()
    print(result.row())
    print()
    print(energy_node_table(result))
    summary = summarise_energy(result)
    if summary is not None:
        print()
        print(
            f"full-stack energy per delivered bit: "
            f"{summary.energy_per_bit_j * 1e6:.2f} J/Mbit "
            f"(radiated only: {summary.radiated_j:.5f} J of "
            f"{summary.total_j:.2f} J total)"
        )
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    """Run one scenario with tracing enabled; export or print the stream."""
    from repro.obs.sinks import JsonlSink

    categories = tuple(c for c in args.categories.split(",") if c)
    if not categories:
        print("error: --categories must name at least one category",
              file=sys.stderr)
        return 2
    spec = ScenarioSpec.load(args.scenario)
    spec = replace(
        spec,
        observability=ComponentSpec(
            "trace", categories=categories, max_records=args.max_records
        ),
    )
    print(f"scenario: {args.scenario}")
    print(f"  categories: {', '.join(categories)}")
    print(f"  key: {spec.key()}")
    net = spec.build()
    sink = None
    if args.out:
        # The sink consumes matching records as they happen — unbounded
        # export, nothing dropped, independent of the in-memory cap.
        sink = JsonlSink(args.out, categories=categories)
        net.tracer.sink = sink
    result = net.run()
    print(result.row())
    counters = {
        cat: count for cat, count in sorted(net.tracer.counters.items()) if count
    }
    print("  counters: " + (", ".join(
        f"{cat}={count}" for cat, count in counters.items()) or "(none)"))
    if sink is not None:
        sink.close()
        print(f"  wrote {sink.written} records to {args.out} "
              f"(dropped: {net.tracer.dropped})")
        return 0
    shown = 0
    for rec in net.tracer.records:
        if args.node >= 0 and rec.node != args.node:
            continue
        detail = " ".join(f"{k}={v}" for k, v in rec.detail)
        print(f"  {rec.time:>10.6f}  n{rec.node:<3} {rec.category:<14} {detail}")
        shown += 1
        if shown >= args.limit:
            break
    remaining = len(net.tracer.records) - shown
    if remaining > 0:
        print(f"  ... {remaining} more in memory (use --out to export all)")
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    """Run one scenario with probes on; print the gauge time series."""
    from repro.analysis.timeseries import node_table, timeseries_table

    spec = ScenarioSpec.load(args.scenario)
    gauges = tuple(g for g in args.gauges.split(",") if g)
    # Respect a spec that already probes unless the flags override it.
    needs_override = (
        spec.observability.name not in ("probes", "flight")
        or args.interval > 0
        or bool(gauges)
        or args.profile
    )
    if needs_override:
        name = "flight" if args.profile else "probes"
        params: dict = {"interval_s": args.interval or 1.0}
        if gauges:
            params["gauges"] = gauges
        spec = replace(spec, observability=ComponentSpec(name, **params))
    print(f"scenario: {args.scenario}")
    print(f"  observability: {spec.observability}")
    print(f"  key: {spec.key()}")
    result = spec.build().run()
    print(result.row())
    print()
    ts = result.timeseries
    assert ts is not None  # the override above guarantees probes
    if args.node >= 0:
        gauge = gauges[0] if gauges else ts.gauges[0]
        if args.node >= ts.node_count:
            print(f"error: node {args.node} out of range "
                  f"(0..{ts.node_count - 1})", file=sys.stderr)
            return 2
        print(node_table(ts, gauge))
    else:
        print(timeseries_table(ts, gauges=gauges))
    if result.profile is not None:
        print()
        print(result.profile.table())
    return 0


def _run_campaign(args: argparse.Namespace) -> int:
    base = ScenarioConfig(node_count=args.nodes, duration_s=args.duration)
    campaign = Campaign.build(
        base,
        tuple(args.protocols.split(",")),
        tuple(float(x) for x in args.loads.split(",")),
        tuple(int(s) for s in args.seeds.split(",")),
    )
    store = _open_store(args)
    print(
        f"campaign: {len(campaign.protocols)} protocols × "
        f"{len(campaign.loads_kbps)} loads × {len(campaign.seeds)} seeds "
        f"= {campaign.size} cells, jobs={args.jobs}"
        + (f", store={args.store}" if args.store else "")
    )
    telemetry = None
    if args.live:
        def telemetry(p) -> None:
            # Heartbeats overwrite one status line; the per-cell completion
            # lines from `progress` print over it with a trailing pad.
            print(f"  {p.line():<76}", end="\n" if p.done else "\r", flush=True)

    # Graceful shutdown: the first SIGINT/SIGTERM stops submitting new
    # cells and drains in-flight ones (every finished cell reaches the
    # store); a second signal force-quits immediately.
    signals_seen = {"count": 0}

    def _on_signal(signum, frame) -> None:
        # No print() here: the handler can fire while the main thread is
        # mid-write on the same buffered stream, and CPython's io layer
        # raises "reentrant call inside BufferedWriter" for that — which
        # would abort the drain loop itself.  Raw os.write is safe.
        signals_seen["count"] += 1
        if signals_seen["count"] >= 2:
            os.write(2, b"\nforce quit (second signal).\n")
            raise SystemExit(130)
        os.write(
            2,
            f"\n{signal.Signals(signum).name}: draining in-flight cells, "
            "then stopping (signal again to force quit)...\n".encode(),
        )

    old_int = signal.signal(signal.SIGINT, _on_signal)
    old_term = signal.signal(signal.SIGTERM, _on_signal)
    try:
        report = run_specs(
            campaign.specs(),
            jobs=args.jobs,
            store=store,
            resume=args.resume,
            progress=lambda s: print("  " + f"{s:<76}"),
            telemetry=telemetry,
            timeout_s=args.timeout or None,
            retries=args.retries,
            should_stop=lambda: signals_seen["count"] > 0,
        )
    finally:
        signal.signal(signal.SIGINT, old_int)
        signal.signal(signal.SIGTERM, old_term)

    print(
        f"\ndone: {report.executed} simulated, {report.cached} cached, "
        f"{len(report.errors)} failed, {report.wallclock_s:.1f}s wall"
    )
    for key, err in report.errors.items():
        print(
            f"  failed {key[:12]}: {err['kind']}: {err['message']} "
            f"(attempts={err['attempts']})"
        )
    if report.stopped or report.errors:
        resume_cmd = (
            f"repro campaign --protocols {args.protocols} "
            f"--loads {args.loads} --seeds {args.seeds} "
            f"--nodes {args.nodes} --duration {args.duration} "
            f"--jobs {args.jobs}"
            + (f" --store {args.store}" if args.store else "")
        )
        if args.store:
            print(f"resume with: {resume_cmd}")
        else:
            print(
                "no --store was set, so finished cells were not persisted; "
                f"re-run (ideally with --store DIR): {resume_cmd}"
            )
        if report.stopped:
            return 130
    if len(report.results) < campaign.size:
        # Stopped or partially failed: the grid is incomplete, so the
        # sweep charts/CSV below would KeyError — stop at the summary.
        return 1 if report.errors else 0
    sweep = sweep_from_campaign(campaign, report.results)
    for title, series, unit in (
        ("throughput [kbps]", sweep.throughput_series(), "kbps"),
        ("end-to-end delay [ms]", sweep.delay_series(), "ms"),
    ):
        chart = {name: (list(sweep.loads_kbps), vals) for name, vals in series.items()}
        print()
        print(ascii_chart(chart, title=f"campaign: {title}",
                          x_label="offered load [kbps]", y_label=unit))
    if args.export_csv:
        # Export the requested grid, not the whole store — a shared store
        # may hold cells from other campaigns.
        csv_text = sweep_to_csv(sweep)
        if args.export_csv == "-":
            print(csv_text, end="")
        else:
            with open(args.export_csv, "w", encoding="utf-8") as fh:
                fh.write(csv_text)
            print(f"wrote {args.export_csv}")
    return 0


def _run_fleet_serve(args: argparse.Namespace) -> int:
    from repro.fleet import DEFAULT_LEASE_TTL_S, DEFAULT_SHARDS, open_store

    base = ScenarioConfig(node_count=args.nodes, duration_s=args.duration)
    campaign = Campaign.build(
        base,
        tuple(args.protocols.split(",")),
        tuple(float(x) for x in args.loads.split(",")),
        tuple(int(s) for s in args.seeds.split(",")),
    )
    # Fleet stores default to sharded; an existing flat store is migrated
    # into shards in place, an existing sharded store keeps its count.
    store = open_store(args.store, shards=args.shards or DEFAULT_SHARDS)
    ttl = args.lease_ttl or DEFAULT_LEASE_TTL_S
    print(
        f"fleet serve: {campaign.size} cells, jobs={args.jobs}, "
        f"lease ttl={ttl:.0f}s, store={args.store}"
    )
    telemetry = None
    if args.live:
        def telemetry(p) -> None:
            print(f"  {p.line():<76}", end="\n" if p.done else "\r", flush=True)

    # Same two-stage shutdown as `repro campaign`: first signal requests a
    # cooperative stop (workers finish their current run; the queue keeps
    # the rest for a resume), second force-quits.
    signals_seen = {"count": 0}

    def _on_signal(signum, frame) -> None:
        signals_seen["count"] += 1
        if signals_seen["count"] >= 2:
            os.write(2, b"\nforce quit (second signal).\n")
            raise SystemExit(130)
        os.write(
            2,
            f"\n{signal.Signals(signum).name}: stopping the fleet after "
            "in-flight runs (signal again to force quit)...\n".encode(),
        )

    old_int = signal.signal(signal.SIGINT, _on_signal)
    old_term = signal.signal(signal.SIGTERM, _on_signal)
    try:
        report = run_specs(
            campaign.specs(),
            jobs=args.jobs,
            store=store,
            progress=lambda s: print("  " + f"{s:<76}"),
            telemetry=telemetry,
            retries=args.retries,
            should_stop=lambda: signals_seen["count"] > 0,
            fleet=True,
            lease_ttl_s=ttl,
        )
    finally:
        signal.signal(signal.SIGINT, old_int)
        signal.signal(signal.SIGTERM, old_term)

    print(
        f"\ndone: {report.executed} simulated, {report.cached} cached, "
        f"{len(report.errors)} failed, {report.wallclock_s:.1f}s wall"
    )
    for key, err in report.errors.items():
        owners = err.get("owners") or ()
        extra = f", owners={len(owners)}" if owners else ""
        print(
            f"  failed {key[:12]}: {err['kind']}: {err['message']} "
            f"(attempts={err['attempts']}{extra})"
        )
    if report.stopped:
        print(
            f"unfinished runs remain queued; resume with: "
            f"repro fleet serve {args.store} --protocols {args.protocols} "
            f"--loads {args.loads} --seeds {args.seeds} "
            f"--nodes {args.nodes} --duration {args.duration}"
        )
        return 130
    return 1 if report.errors else 0


def _run_fleet_work(args: argparse.Namespace) -> int:
    from repro.fleet import (
        DEFAULT_LEASE_TTL_S,
        DEFAULT_MAX_ATTEMPTS,
        FleetWorker,
        WorkQueue,
        open_store,
    )

    store = open_store(args.store)
    queue = WorkQueue(store.root / "fleet")
    worker = FleetWorker(
        store,
        queue,
        lease_ttl_s=args.lease_ttl or DEFAULT_LEASE_TTL_S,
        max_attempts=args.max_attempts or DEFAULT_MAX_ATTEMPTS,
    )
    print(f"worker {worker.worker_id} on {args.store}")

    signals_seen = {"count": 0}

    def _on_signal(signum, frame) -> None:
        signals_seen["count"] += 1
        if signals_seen["count"] >= 2:
            os.write(2, b"\nforce quit (second signal).\n")
            raise SystemExit(130)
        os.write(2, b"\nfinishing current run, then exiting...\n")

    old_int = signal.signal(signal.SIGINT, _on_signal)
    old_term = signal.signal(signal.SIGTERM, _on_signal)
    try:
        report = worker.run(
            max_runs=args.max_runs or None,
            wait_for_work=args.wait,
            should_stop=lambda: signals_seen["count"] > 0,
        )
    finally:
        signal.signal(signal.SIGINT, old_int)
        signal.signal(signal.SIGTERM, old_term)
    print(report.line())
    return 0


def _run_fleet_status(args: argparse.Namespace) -> int:
    from repro.fleet import (
        DEFAULT_STALL_AFTER_S,
        WorkQueue,
        fleet_status,
        open_store,
    )

    store = open_store(args.store)
    queue = WorkQueue(store.root / "fleet")
    if args.stop:
        queue.request_stop()
        print("stop requested: workers exit after their current run")
    if args.clear_stop:
        queue.clear_stop()
        print("stop cleared")
    status = fleet_status(
        store, queue, stall_after_s=args.stall_after or DEFAULT_STALL_AFTER_S
    )
    print(status.render())
    return 0


def _run_fleet_compact(args: argparse.Namespace) -> int:
    from repro.fleet import ShardedResultStore, open_store

    store = open_store(args.store)
    if not isinstance(store, ShardedResultStore):
        print(
            f"error: {args.store} is a flat (unsharded) store; open it "
            "once with `repro fleet serve` to migrate it into shards, "
            "then compact",
            file=sys.stderr,
        )
        return 2
    stats = store.compact()
    print(
        f"compacted {stats.shards} shard(s): {stats.lines_before} -> "
        f"{stats.lines_after} line(s), {stats.folded} folded, "
        f"{stats.quarantined} quarantined"
    )
    return 0


def _run_fleet(args: argparse.Namespace) -> int:
    if args.fleet_cmd == "serve":
        return _run_fleet_serve(args)
    if args.fleet_cmd == "work":
        return _run_fleet_work(args)
    if args.fleet_cmd == "status":
        return _run_fleet_status(args)
    if args.fleet_cmd == "compact":
        return _run_fleet_compact(args)
    return 2  # pragma: no cover - argparse enforces choices


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _parse_args(argv)
    if args.experiment == "figure8":
        return _run_figure(args, delay=False)
    if args.experiment == "figure9":
        return _run_figure(args, delay=True)
    if args.experiment == "ranges":
        return _run_ranges()
    if args.experiment == "list":
        return _run_list()
    if args.experiment in ("quickrun", "quick"):
        return _run_quick(args)
    if args.experiment == "energy":
        return _run_energy(args)
    if args.experiment == "trace":
        return _run_trace(args)
    if args.experiment == "stats":
        return _run_stats(args)
    if args.experiment == "campaign":
        return _run_campaign(args)
    if args.experiment == "fleet":
        return _run_fleet(args)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
