"""PCMAC — the paper's primary contribution.

The protocol combines four mechanisms on top of plain 802.11 DCF
(:class:`repro.mac.base.DcfMac`):

1. **Minimum-power unicasts** via the power history table (shared with
   Scheme 2).
2. **A separate power-control channel** on which a receiving node broadcasts
   its remaining *noise tolerance* at maximum power
   (:mod:`repro.core.control_channel`, :mod:`repro.core.pcn`).
3. **Noise-tolerance admission control**: a prospective transmitter defers
   whenever its transmission would consume more than ``0.7 ×`` the
   advertised tolerance of any active receiver it knows of
   (:mod:`repro.core.noise_tolerance`).
4. **A three-way RTS-CTS-DATA handshake** for data, with sent/received
   tables providing implicit acknowledgements through the next CTS
   (:mod:`repro.core.handshake`); routing unicasts keep the four-way
   exchange.
"""

from repro.core.control_channel import ControlChannelAgent
from repro.core.handshake import ReceivedTable, SentRecord, SentTable
from repro.core.noise_tolerance import ActiveReceiverRegistry, noise_tolerance_w
from repro.core.pcmac import PcmacMac
from repro.core.pcn import decode_tolerance, encode_tolerance

__all__ = [
    "ActiveReceiverRegistry",
    "ControlChannelAgent",
    "PcmacMac",
    "ReceivedTable",
    "SentRecord",
    "SentTable",
    "decode_tolerance",
    "encode_tolerance",
    "noise_tolerance_w",
]
