"""PCMAC — Power Control MAC protocol (paper Section III, Steps 1–7).

Subclasses :class:`~repro.mac.base.DcfMac`, adding:

* **Step 1** — RTS power from the power history table (max on a miss).
* **Step 2** — the admission test against every known active receiver
  (``caused noise ≤ 0.7 × tolerance``); CTS-timeout escalates the RTS power
  one class at a time up to the maximum.
* **Step 3** — CTS power ``C_p · N_A / G_BA`` (so the CTS is capturable at
  the sender despite the sender's local noise ``N_A``, which rides in the
  RTS header), plus the required-DATA-power field ``C_p · N_B / G_AB``;
  the responder runs the same admission test before answering.
* **Step 4** — the sender obeys the CTS's required DATA power and checks the
  CTS's implicit-ACK fields against its sent-table, retransmitting the
  retained copy on mismatch; the collision computation is repeated before
  the DATA.
* **Step 5** — on locking a DATA addressed to it, the receiver broadcasts
  its noise tolerance on the control channel at maximum power.
* **Step 6** — the received-table records (session, seq) of delivered DATA.
* **Step 7** — DATA needs no ACK (three-way); routing unicasts (RREP/RERR)
  keep the four-way handshake.

Routing hooks: sending an RREP to a neighbour or receiving an RERR from one
resets the handshake tables for that neighbour (paper's maintenance rule).
"""

from __future__ import annotations

import numpy as np

from repro.config import (
    MacConfig,
    PcmacConfig,
    PhyConfig,
    PowerControlConfig,
)
from repro.core.control_channel import ControlChannelAgent
from repro.core.handshake import ReceivedTable, SentTable
from repro.core.noise_tolerance import noise_tolerance_w
from repro.mac.base import DcfMac, _TxAttempt
from repro.mac.frames import FrameType, MacFrame
from repro.mac.ifqueue import QueuedPacket
from repro.phy.channel import Channel
from repro.phy.frame import PhyFrame
from repro.phy.radio import Radio
from repro.sim.kernel import Simulator
from repro.sim.trace import NULL_TRACER, Tracer


class PcmacMac(DcfMac):
    """The paper's power-control MAC: admission + control channel + 3-way."""

    name = "pcmac"

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        radio: Radio,
        channel: Channel,
        *,
        control_radio: Radio,
        control_channel: Channel,
        mac_cfg: MacConfig,
        phy_cfg: PhyConfig,
        power_cfg: PowerControlConfig | None = None,
        pcmac_cfg: PcmacConfig | None = None,
        rng: np.random.Generator,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(
            sim,
            node_id,
            radio,
            channel,
            mac_cfg=mac_cfg,
            phy_cfg=phy_cfg,
            power_cfg=power_cfg,
            rng=rng,
            tracer=tracer,
        )
        self.pcmac_cfg = pcmac_cfg or PcmacConfig()
        self.control = ControlChannelAgent(
            sim,
            node_id,
            control_radio,
            control_channel,
            pcmac_cfg=self.pcmac_cfg,
            phy_cfg=phy_cfg,
            tracer=tracer,
        )
        self.sent_table = SentTable()
        self.received_table = ReceivedTable()

    def shutdown(self, on_packet_drop=None) -> None:
        """Power down both the data MAC and the control-channel agent."""
        super().shutdown(on_packet_drop)
        self.control.shutdown()

    def restart(self) -> None:
        """Power both the data MAC and the control-channel agent back up."""
        super().restart()
        self.control.restart()

    # ------------------------------------------------------------ power policy

    def power_for_rts(self, next_hop: int) -> float:
        """Step 1: history-estimated needed level (max on a miss)."""
        return self.needed_power_to(next_hop)

    def power_for_cts(self, rts: MacFrame, rx_power_w: float) -> float:
        """Step 3: CTS power sized for capture at the sender."""
        gain = rx_power_w / rts.tx_power_w
        # Decodability bound: the CTS must clear the decode threshold at A.
        needed = self.phy_cfg.rx_threshold_w * self.power_cfg.decode_margin / gain
        if rts.noise_at_sender_w is not None:
            capture = self.phy_cfg.capture_threshold * rts.noise_at_sender_w / gain
            needed = max(needed, capture)
        return self.levels.select(needed)

    def power_for_data(self, next_hop: int, cts: MacFrame | None) -> float:
        """Step 4: obey the responder's required DATA power when present."""
        if cts is not None and cts.required_data_power_w is not None:
            return cts.required_data_power_w
        return self.needed_power_to(next_hop)

    def power_for_ack(self, data: MacFrame, rx_power_w: float) -> float:
        """ACKs exist only for routing unicasts; size them like Scheme 2."""
        return self.needed_power_to(data.src)

    def on_rts_failure(self, attempt: _TxAttempt) -> None:
        """Step 2: escalate one power class per CTS timeout, up to max."""
        current = (
            attempt.boosted_rts_power_w
            if attempt.boosted_rts_power_w is not None
            else self.power_for_rts(attempt.entry.next_hop)
        )
        if not self.levels.is_max(current):
            attempt.boosted_rts_power_w = self.levels.step_up(current)
            self.stats.power_escalations += 1

    # --------------------------------------------------------------- admission

    def admission_delay(self, power_w: float) -> float | None:
        """Step 2: defer while any known receiver would be corrupted."""
        return self.control.registry.blocking_until(
            power_w, self.sim.now, self.pcmac_cfg.margin_coefficient
        )

    def admission_delay_data(self, power_w: float) -> float | None:
        """Step 4: the computation is repeated before the DATA itself."""
        return self.admission_delay(power_w)

    # ---------------------------------------------------------------- headers

    def decorate_rts(self, frame: MacFrame) -> None:
        """Attach the sender's current noise level (Step 2's RTS fields)."""
        frame.noise_at_sender_w = self.radio.interference_w

    def decorate_cts(self, frame: MacFrame, rts: MacFrame, rx_power_w: float) -> None:
        """Attach required DATA power and the implicit-ACK fields (Step 3)."""
        gain = rx_power_w / rts.tx_power_w
        noise_here = self.radio.interference_w
        needed = self.phy_cfg.rx_threshold_w * self.power_cfg.decode_margin / gain
        capture = self.phy_cfg.capture_threshold * noise_here / gain
        frame.required_data_power_w = self.levels.select(max(needed, capture))
        last = self.received_table.last_from(rts.src)
        if last is not None:
            frame.last_session_id, frame.last_session_seq = last

    # ----------------------------------------------------------- implicit ACK

    def on_cts_feedback(self, cts: MacFrame) -> None:
        """Step 4: compare the CTS report against the sent-table."""
        attempt = self._current
        if attempt is None:
            return
        confirmed = self.sent_table.confirm(
            cts.src, cts.last_session_id, cts.last_session_seq
        )
        if not confirmed:
            rec = self.sent_table.get(cts.src)
            if rec is not None:
                attempt.substitute = rec.frame_copy

    def on_data_sent(self, frame: MacFrame, entry: QueuedPacket) -> None:
        """Retain a copy of every three-way DATA for possible retransmission."""
        if frame.needs_ack or frame.session_id is None or frame.session_seq is None:
            return
        self.sent_table.record(
            frame.dst, frame.session_id, frame.session_seq, frame
        )

    def on_data_received(self, frame: MacFrame) -> bool:
        """Step 6: update the received-table; filter duplicates through it.

        Only three-way (ACK-less) DATA participates: routing unicasts keep
        the classic four-way handshake and its (src, seq, retry) filter —
        their sequence space is unrelated to data sessions.
        """
        if frame.needs_ack or frame.session_id is None or frame.session_seq is None:
            return super().on_data_received(frame)
        if self.received_table.is_duplicate(
            frame.src, frame.session_id, frame.session_seq
        ):
            return True
        self.received_table.record(frame.src, frame.session_id, frame.session_seq)
        return False

    # ------------------------------------------------------------- handshakes

    def data_needs_ack(self, entry: QueuedPacket) -> bool:
        """Step 7: three-way for data packets, four-way for routing unicasts."""
        if not self.pcmac_cfg.three_way_data:
            return True
        kind = getattr(entry.packet, "kind", "data")
        return kind != "data"

    # -------------------------------------------------------- control channel

    def on_rx_start(self, phy_frame: PhyFrame) -> None:
        """Step 5: announce the noise tolerance when a DATA for us begins."""
        frame = phy_frame.payload
        if not isinstance(frame, MacFrame):
            return
        if frame.ftype != FrameType.DATA or frame.dst != self.node_id:
            return
        if getattr(frame.packet, "kind", "data") != "data":
            return  # the paper announces tolerance for data receptions only
        signal = self.radio.lock_power_w
        end = self.radio.lock_end_time
        if signal is None or end is None:
            return
        tolerance = noise_tolerance_w(
            signal, self.radio.interference_w, self.phy_cfg.capture_threshold
        )
        self.control.announce_reception(tolerance, end)

    # ----------------------------------------------------------- routing hooks

    def on_route_event(self, event: str, neighbour: int) -> None:
        """Paper's table-maintenance rule on RREP/RERR events."""
        if event == "rrep_sent":
            self.received_table.reset(neighbour)
        elif event == "rerr_received":
            self.received_table.reset(neighbour)
            self.sent_table.reset(neighbour)
