"""Power-control-notification (PCN) frame encoding — paper Figure 7.

The frame is 48 bits: 16-bit preamble, 8-bit node id, 16-bit noise
tolerance, 8-bit FEC.  We model the payload faithfully enough to honour the
two constraints the paper derives from it:

* the frame is tiny, so control-channel collisions are rare (assumption 3);
* the tolerance field is 16 bits, so the advertised value is *quantised*.

The tolerance is encoded logarithmically: 0.01 dB steps offset from
−250 dBm, covering −250 dBm … +405 dBm — far beyond any physical value, so
quantisation error is bounded by half a step (~0.12 %).  Code 0 is reserved
for "no tolerance at all" (any additional interference is fatal).
"""

from __future__ import annotations

import math

from repro.units import dbm_to_watts, watts_to_dbm

#: Quantisation step [dB].
_STEP_DB = 0.01
#: Offset applied before quantisation [dBm].
_OFFSET_DBM = -250.0
#: Largest encodable code (16-bit field).
_MAX_CODE = 0xFFFF

#: Floor-rounding guard [dB].  Values landing a hair under a grid point due
#: to float error would otherwise round a full step down; 1e-6 dB of slack
#: (≈ 2.3e-7 relative power) keeps encode(decode(code)) == code while the
#: rounding stays conservative for any physically distinguishable value.
_EPS_DB = 1e-6

#: PCN frame size [bytes] — 48 bits per Figure 7.
PCN_SIZE_BYTES = 6


def encode_tolerance(tolerance_w: float) -> int:
    """Quantise a noise tolerance [W] into the 16-bit PCN field.

    Non-positive tolerances encode as 0 ("defer entirely").  The encoding
    rounds *down* so a decoded tolerance never overstates the true one —
    overstating would let a neighbour corrupt the reception.
    """
    if tolerance_w <= 0.0:
        return 0
    dbm = watts_to_dbm(tolerance_w)
    code = int(math.floor((dbm - _OFFSET_DBM + _EPS_DB) / _STEP_DB)) + 1
    return max(1, min(code, _MAX_CODE))


def decode_tolerance(code: int) -> float:
    """Inverse of :func:`encode_tolerance`; code 0 maps to 0 W."""
    if not (0 <= code <= _MAX_CODE):
        raise ValueError(f"PCN tolerance code out of range: {code!r}")
    if code == 0:
        return 0.0
    return dbm_to_watts(_OFFSET_DBM + (code - 1) * _STEP_DB)
