"""The separate power-control channel (paper Section III).

Each PCMAC node owns a second radio attached to a dedicated
:class:`~repro.phy.channel.Channel` whose propagation model is shared with
the data channel (paper assumption 1: identical attenuation, no mutual
interference).  The channel runs at 500 kbps and carries only PCN broadcasts
(Fig. 7), always at the normal (maximal) power level.

The :class:`ControlChannelAgent` plays both roles:

* **Receiver side** — when the node's data radio locks onto a DATA frame
  addressed to it, :meth:`announce_reception` computes the noise tolerance
  and broadcasts a PCN.  Optionally the announcement repeats during the
  reception (IS-95-style periodic refresh; ``PcmacConfig.pcn_repeats``).
* **Listener side** — PCNs heard from neighbours populate the node's
  :class:`~repro.core.noise_tolerance.ActiveReceiverRegistry`, including the
  gain estimate ``rx_power / P_max`` used by the admission rule.

PCN frames can collide on the control channel like any other transmission;
a lost PCN simply leaves neighbours ignorant of the reception — the paper's
assumption 3 (short frames keep the collision probability low).
"""

from __future__ import annotations

from repro.config import PcmacConfig, PhyConfig
from repro.core.noise_tolerance import ActiveReceiverRegistry
from repro.core.pcn import PCN_SIZE_BYTES, decode_tolerance, encode_tolerance
from repro.mac.frames import BROADCAST, FrameType, MacFrame
from repro.phy.channel import Channel
from repro.phy.frame import PhyFrame
from repro.phy.radio import Radio
from repro.sim.kernel import Simulator
from repro.sim.trace import NULL_TRACER, Tracer


class ControlChannelAgent:
    """PCN broadcaster + listener bound to one node's control radio."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        radio: Radio,
        channel: Channel,
        *,
        pcmac_cfg: PcmacConfig,
        phy_cfg: PhyConfig,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.radio = radio
        self.channel = channel
        self.pcmac_cfg = pcmac_cfg
        self.phy_cfg = phy_cfg
        self.tracer = tracer
        self._tr_pcn = tracer.handle("pcmac.pcn")
        self.registry = ActiveReceiverRegistry()
        self.stats = {"pcn_sent": 0, "pcn_heard": 0, "pcn_lost": 0, "pcn_skipped": 0}
        self._dead = False
        radio.listener = self

    def shutdown(self) -> None:
        """Node power-down: never broadcast again, ignore the radio."""
        self._dead = True
        self.radio.mute()

    def restart(self) -> None:
        """Node power-up (fault-injection rejoin): resume broadcasting.

        Inverse of :meth:`shutdown`; the caller re-attaches the control
        radio to its channel.  The active-receiver registry is kept —
        stale entries expire on their own.
        """
        self._dead = False
        self.radio.listener = self

    # ------------------------------------------------------------- transmit

    def announce_reception(self, tolerance_w: float, reception_end: float) -> None:
        """Broadcast this node's noise tolerance for an ongoing reception.

        ``reception_end`` is when the protected DATA reception finishes; in
        the real protocol neighbours derive it from the fixed DATA length
        (paper assumption 4), here it rides in the frame object.
        """
        self._send_pcn(tolerance_w, reception_end)
        repeats = self.pcmac_cfg.pcn_repeats
        if repeats > 1:
            window = reception_end - self.sim.now
            if window > 0:
                step = window / repeats
                for k in range(1, repeats):
                    self.sim.schedule_in(
                        k * step,
                        lambda t=tolerance_w, e=reception_end: self._refresh_pcn(t, e),
                        label="pcmac.pcn_repeat",
                    )

    def _refresh_pcn(self, tolerance_w: float, reception_end: float) -> None:
        if self.sim.now >= reception_end:
            return
        self._send_pcn(tolerance_w, reception_end)

    def _send_pcn(self, tolerance_w: float, reception_end: float) -> None:
        if self._dead:
            # A pending pcn_repeat event may outlive a battery death; a
            # dead node transmits nothing.
            return
        if self.radio.transmitting:
            # A previous PCN is still on the air (possible with repeats and
            # back-to-back receptions); skip rather than queue.
            self.stats["pcn_skipped"] += 1
            return
        # Quantise through the 16-bit field exactly as the wire format would.
        quantised = decode_tolerance(encode_tolerance(tolerance_w))
        frame = MacFrame(
            ftype=FrameType.PCN,
            src=self.node_id,
            dst=BROADCAST,
            size_bytes=PCN_SIZE_BYTES,
            duration_s=0.0,
            tx_power_w=self.phy_cfg.max_power_w,
            tolerance_w=quantised,
            reception_end=reception_end,
            needs_ack=False,
        )
        phy = PhyFrame(
            payload=frame,
            size_bytes=PCN_SIZE_BYTES,
            bitrate_bps=self.pcmac_cfg.control_rate_bps,
            plcp_s=self.pcmac_cfg.control_plcp_s,
            tx_power_w=self.phy_cfg.max_power_w,
            src=self.node_id,
        )
        self.stats["pcn_sent"] += 1
        tr = self._tr_pcn
        tr.count += 1
        if tr.store:
            tr.record(
                self.sim.now, self.node_id, tolerance_w=quantised, until=reception_end
            )
        self.channel.transmit(self.radio, phy)

    # ------------------------------------------------------------- receive

    def on_rx_end(self, phy_frame: PhyFrame, ok: bool, rx_power_w: float) -> None:
        """Control-radio callback: a PCN finished arriving."""
        if not ok:
            self.stats["pcn_lost"] += 1
            return
        frame = phy_frame.payload
        if not isinstance(frame, MacFrame) or frame.ftype != FrameType.PCN:
            return
        if frame.src == self.node_id:
            return
        assert frame.tolerance_w is not None and frame.reception_end is not None
        gain = rx_power_w / frame.tx_power_w
        self.stats["pcn_heard"] += 1
        self.registry.update(
            frame.src, frame.tolerance_w, frame.reception_end, gain
        )

    # Remaining RadioListener callbacks: the control channel needs none of
    # the carrier-sense machinery (PCNs are fire-and-forget broadcasts).

    def on_carrier_busy(self) -> None:  # pragma: no cover - trivial
        pass

    def on_carrier_idle(self, failed: bool) -> None:  # pragma: no cover
        pass

    def on_rx_start(self, frame: PhyFrame) -> None:  # pragma: no cover
        pass

    def on_tx_end(self, frame: PhyFrame) -> None:  # pragma: no cover
        pass
