"""Sent-table / received-table machinery for the three-way handshake.

PCMAC removes the per-DATA ACK.  Acknowledgement becomes *implicit*: every
CTS a node sends carries the (session id, sequence number) of the last DATA
it received from the RTS sender.  The sender compares those fields against
its sent-table; a mismatch means the last DATA was lost, so the retained
copy is retransmitted before any new packet (paper Step 4).

Table maintenance follows the paper's routing hooks: sending an RREP to a
downstream neighbour or receiving an RERR from an upstream neighbour resets
the corresponding entries (the session is new or broken, so stale sequence
state must not trigger spurious retransmissions).

The tail-packet caveat: the *final* DATA of a session is only ever confirmed
by a later CTS; if the flow stops, a loss of that packet goes unrepaired.
For the paper's continuous CBR workload this never matters in the steady
state, and it is the protocol as specified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(slots=True)
class SentRecord:
    """Last DATA sent to one neighbour: identity plus the retained copy."""

    session_id: int
    session_seq: int
    frame_copy: Any  # MacFrame — kept loose to avoid an import cycle


class SentTable:
    """Per-neighbour record of the last DATA sent (with retained copy)."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: dict[int, SentRecord] = {}

    def record(
        self, neighbour: int, session_id: int, session_seq: int, frame_copy: Any
    ) -> None:
        """Remember the DATA just sent to ``neighbour``."""
        self._records[neighbour] = SentRecord(session_id, session_seq, frame_copy)

    def get(self, neighbour: int) -> SentRecord | None:
        """The last-sent record for ``neighbour``, or None."""
        return self._records.get(neighbour)

    def confirm(self, neighbour: int, session_id: int, session_seq: int) -> bool:
        """Check a CTS's implicit-ACK fields against the table.

        Returns True when the CTS confirms the last sent DATA (or when there
        is nothing outstanding — a null report with an empty table is not a
        loss).  False demands a retransmission of the retained copy.
        """
        rec = self._records.get(neighbour)
        if rec is None:
            return True
        if session_id is None or session_seq is None:
            # The responder has no record of receiving anything from us but
            # we have an outstanding DATA: it was lost.
            return False
        return rec.session_id == session_id and rec.session_seq == session_seq

    def reset(self, neighbour: int) -> None:
        """Drop the record (and with it the retained copy) for ``neighbour``."""
        self._records.pop(neighbour, None)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, neighbour: int) -> bool:
        return neighbour in self._records


class ReceivedTable:
    """Per-neighbour (session id, seq) of the last DATA received."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: dict[int, tuple[int, int]] = {}

    def record(self, neighbour: int, session_id: int, session_seq: int) -> None:
        """Remember the DATA just received from ``neighbour``."""
        self._records[neighbour] = (session_id, session_seq)

    def last_from(self, neighbour: int) -> tuple[int, int] | None:
        """The (session, seq) to report in a CTS toward ``neighbour``."""
        return self._records.get(neighbour)

    def is_duplicate(self, neighbour: int, session_id: int, session_seq: int) -> bool:
        """True when an arriving DATA repeats the last recorded one."""
        return self._records.get(neighbour) == (session_id, session_seq)

    def reset(self, neighbour: int) -> None:
        """Forget state for ``neighbour`` (paper's RREP/RERR rule)."""
        self._records.pop(neighbour, None)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, neighbour: int) -> bool:
        return neighbour in self._records
