"""Noise-tolerance computation and the 0.7-margin admission rule.

Paper Section III: a receiver that starts decoding a DATA frame with signal
``P_r`` amid noise+interference ``P_n`` can still endure

    N_t = P_r / C_p − P_n

additional interference before its SINR falls below the capture threshold
``C_p``.  It broadcasts ``N_t`` on the control channel.  A neighbour ``A``
contemplating a transmission at power ``p`` toward anyone computes, for each
active receiver ``C`` it has heard a notification from,

    caused_noise(A→C) = p · G(A,C)

and defers until C's reception completes unless

    caused_noise(A→C) ≤ 0.7 · N_t(C).

The gain ``G(A,C)`` is estimated from the notification itself: PCNs are sent
at the known maximum power, so ``G = rx_power / P_max`` (symmetric links,
paper assumption 2).  The 0.7 coefficient leaves headroom for noise
fluctuation and for *other* contenders admitted against the same tolerance
(paper's stated rationale); the ablation bench sweeps it.
"""

from __future__ import annotations

from dataclasses import dataclass


def noise_tolerance_w(
    signal_w: float, interference_w: float, capture_threshold: float
) -> float:
    """Remaining endurable interference [W] for a reception.

    Args:
        signal_w: received power of the locked frame.
        interference_w: current noise + interference at the receiver.
        capture_threshold: required linear SINR (``C_p``).

    Returns:
        ``signal/C_p − interference``; clamped at 0 when the reception is
        already at (or below) the capture limit.
    """
    if signal_w <= 0 or interference_w < 0 or capture_threshold <= 0:
        raise ValueError("invalid tolerance inputs")
    return max(signal_w / capture_threshold - interference_w, 0.0)


@dataclass(slots=True)
class ReceiverRecord:
    """An active-receiver advertisement heard on the control channel."""

    node: int
    tolerance_w: float
    expires: float
    gain: float


class ActiveReceiverRegistry:
    """Per-node table of currently receiving neighbours and their tolerances."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: dict[int, ReceiverRecord] = {}

    def update(
        self, node: int, tolerance_w: float, expires: float, gain: float
    ) -> None:
        """Insert/refresh the advertisement from ``node``."""
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain!r}")
        self._records[node] = ReceiverRecord(node, tolerance_w, expires, gain)

    def active_records(self, now: float) -> list[ReceiverRecord]:
        """Live advertisements (also purges expired entries)."""
        dead = [n for n, r in self._records.items() if r.expires <= now]
        for n in dead:
            del self._records[n]
        return list(self._records.values())

    def blocking_until(
        self, tx_power_w: float, now: float, margin_coefficient: float
    ) -> float | None:
        """Earliest time a transmission at ``tx_power_w`` becomes admissible.

        Returns None when the transmission is admissible *now*; otherwise the
        latest reception-end among the receivers it would corrupt (the paper:
        "back off until the current reception is completed").
        """
        if tx_power_w <= 0:
            raise ValueError("tx power must be positive")
        blocked_until: float | None = None
        for rec in self.active_records(now):
            caused = tx_power_w * rec.gain
            if caused > margin_coefficient * rec.tolerance_w:
                if blocked_until is None or rec.expires > blocked_until:
                    blocked_until = rec.expires
        return blocked_until

    def drop(self, node: int) -> None:
        """Forget the advertisement from ``node`` (reception ended early)."""
        self._records.pop(node, None)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, node: int) -> bool:
        return node in self._records
