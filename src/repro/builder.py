"""Composable network construction from a declarative scenario spec.

:class:`NetworkBuilder` turns a :class:`~repro.scenariospec.ScenarioSpec`
into a runnable :class:`~repro.experiments.scenario.BuiltNetwork` by
resolving each scenario slot against its :mod:`repro.registry` registry and
invoking the component factories in a fixed order.  It replaces the old
monolithic ``build_network`` body; the legacy function survives as a thin
compatibility shim over this class.

Per-slot factory contracts
--------------------------
Every factory receives the shared :class:`BuildContext` first, then its
validated params as keyword arguments.  What each slot must return:

``propagation``
    a :class:`~repro.phy.propagation.PropagationModel`.  Context available:
    ``cfg`` only (called first).
``mobility``
    a :class:`MobilityPlan` — the channel-level speed bound plus a per-node
    ``make(node_id, position) -> MobilityModel``.  Context: ``cfg``, ``rngs``.
``placement``
    a list of ``(x, y)`` positions, one per node.  Context adds
    ``data_channel`` / ``control_channel``.
``routing``
    a per-node ``make(node_id) -> routing protocol`` callable.  Context adds
    ``positions`` (so table-driven routing can precompute).
``mac``
    a per-node ``make(node_id, mobility, data_radio) -> MAC`` callable.
    Entries with ``meta={"control_channel": True}`` get a second channel
    wired before any node exists.  Context helper: :meth:`BuildContext.make_radio`.
``traffic``
    called once as ``factory(ctx, nodes, pairs, **params)``; returns the
    list of application sources (already scheduled on the simulator).
``energy``
    an :class:`EnergyPlan` (draw model + wiring options), or ``None`` for
    the null model — then **no** energy instrumentation is attached and the
    run is bit-identical to a pre-energy build.  Context: ``cfg`` only.
``observability``
    an :class:`ObservabilityPlan` (trace categories, probe interval,
    profiling), or ``None`` for the null component — then **no**
    instrumentation is attached and the run is bit-identical to an
    unobserved build.  Context: ``cfg`` only.
``faults``
    a :class:`~repro.faults.plan.FaultPlan` (crash churn, noise bursts,
    link fades, packet corruption), or ``None`` for the null component —
    then **no** injector or resilience monitor is wired and the run is
    bit-identical to a fault-free build (``events_executed`` included).
    Context: ``cfg``, ``rngs`` (the ``"faults"`` stream).
``reception``
    a :class:`~repro.phy.reception.plan.ReceptionPlan` (capture threshold,
    receiver sensitivity), or ``None`` for the null component — then the
    radios keep their inline threshold decode rules and the run is
    bit-identical to a pre-reception build (``events_executed`` included).
    A non-null plan installs one
    :class:`~repro.phy.reception.sinr.SinrReceiver` per radio inside
    :meth:`BuildContext.make_radio`, so data *and* PCMAC control radios get
    the same receiver semantics.  Context: ``cfg`` only.
``engine``
    an :class:`EnginePlan` (event scheduler, PHY fan-out strategy, event
    pooling).  **Exception to the ctx-first contract:** the engine factory
    is called with ``ctx=None`` — it configures the :class:`Simulator`
    itself, so it runs before the context (which needs the simulator)
    exists, and must derive everything from its params alone.  Every
    registered engine is dispatch-order preserving: results are
    bit-identical across engines (the differential suite under
    ``tests/differential/`` enforces this on whole ``ExperimentResult``\\ s),
    so the slot is purely a performance choice — but it still hashes into
    the spec key, recording exactly what ran.

The call order (and the named RNG streams each builtin consumes) reproduces
the historical ``build_network`` exactly, which is what keeps the
compatibility shim bit-identical — verified by
``tests/test_builder_compat.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.config import ScenarioConfig
from repro.metrics.collector import MetricsCollector
from repro.mobility.base import MobilityModel, Position
from repro.phy.channel import Channel
from repro.phy.noise import ConstantNoise
from repro.phy.radio import Radio
from repro.registry import ComponentEntry, registry
from repro.scenariospec import ScenarioSpec
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.energy.model import EnergyModel
    from repro.experiments.scenario import BuiltNetwork
    from repro.faults.plan import FaultPlan
    from repro.net.node import Node
    from repro.phy.propagation import PropagationModel
    from repro.phy.reception.plan import ReceptionPlan


@dataclass(frozen=True)
class EnergyPlan:
    """What a (non-null) energy component returns: model + wiring options."""

    #: Per-state draw model applied to every metered radio.
    model: "EnergyModel"
    #: Finite per-node battery capacity [J]; 0 means mains-powered (no
    #: battery object, no depletion events — the event schedule then stays
    #: identical to an unmetered run).  A tuple gives node ``i`` capacity
    #: ``battery_j[i]`` (length must equal the node count; 0 entries stay
    #: mains-powered), so heterogeneous-lifetime scenarios are pure data.
    battery_j: "float | tuple[float, ...]" = 0.0
    #: Also meter PCMAC's control radio (off by default: the paper treats
    #: the power control channel as a negligible, low-rate transceiver —
    #: see docs/model-assumptions.md).
    meter_control: bool = False


@dataclass(frozen=True)
class EnginePlan:
    """What an engine component returns: execution-engine configuration.

    All fields select between dispatch-order-equivalent implementations —
    the simulated results are bit-identical whatever the plan says; only
    wall-clock speed and memory behaviour change.
    """

    #: Event queue implementation: ``"heap"`` or ``"calendar"``.
    scheduler: str = "heap"
    #: Channel fan-out strategy: ``"scalar"`` or ``"soa"`` (vectorised;
    #: engages only with the spatial index + a ``bulk_exact`` model).
    fanout: str = "scalar"
    #: Recycle fired transient events through the kernel freelist.
    pool_events: bool = False
    #: Calendar-queue bucket width [s]; ignored by the heap scheduler.
    bucket_width_s: float = 1e-3


@dataclass(frozen=True)
class ObservabilityPlan:
    """What a (non-null) observability component returns: what to record.

    Every field defaults to "off"; the null component returns ``None``
    instead (zero wiring, bit-identical — the energy-slot precedent).
    Trace collection and profiling are passive (no scheduled events, so
    ``events_executed`` is unchanged); probes schedule sampling events and
    therefore legitimately change the executed event count — which is why
    observability is a *spec* slot, hashed into the scenario's content key.
    """

    #: Trace categories to record (counters are always on regardless).
    trace_categories: tuple[str, ...] = ()
    #: Override the tracer's stored-record cap; 0 keeps the default.
    max_records: int = 0
    #: Gauge sampling period [s]; 0 disables probes.
    probe_interval_s: float = 0.0
    #: Gauges to sample (empty = every registered gauge).
    gauges: tuple[str, ...] = ()
    #: Enable the kernel's per-event-kind wall-clock profiler.
    profile: bool = False


@dataclass(frozen=True)
class MobilityPlan:
    """What a mobility component returns: a speed bound + per-node factory."""

    #: Upper bound on any node's speed [m/s]; sizes the channels' spatial
    #: index drift pad (0 pins the index, matching immobile scenarios).
    max_speed_mps: float
    #: ``make(node_id, initial_position) -> MobilityModel``.
    make: Callable[[int, Position], MobilityModel]


@dataclass
class BuildContext:
    """Shared state handed to every component factory.

    Populated progressively in build order — a factory may rely on every
    field the contract table in the module docstring lists for its slot.
    """

    spec: ScenarioSpec
    cfg: ScenarioConfig
    sim: Simulator
    rngs: RngRegistry
    tracer: Tracer
    noise: ConstantNoise
    propagation: "PropagationModel | None" = None
    mobility_plan: MobilityPlan | None = None
    energy_plan: EnergyPlan | None = None
    obs_plan: ObservabilityPlan | None = None
    fault_plan: "FaultPlan | None" = None
    reception_plan: "ReceptionPlan | None" = None
    data_channel: Channel | None = None
    control_channel: Channel | None = None
    positions: list[Position] = field(default_factory=list)

    def make_radio(
        self, node_id: int, mobility: MobilityModel, channel_name: str
    ) -> Radio:
        """A radio with the scenario's PHY thresholds on ``channel_name``.

        Every radio in the build — data and PCMAC control alike — comes
        through here, which is what makes it the single wiring point for the
        ``reception`` slot: a non-null plan installs a SINR receiver on the
        radio before anything else sees it.
        """
        radio = Radio(
            self.sim,
            node_id,
            mobility=mobility,
            rx_threshold_w=self.cfg.phy.rx_threshold_w,
            cs_threshold_w=self.cfg.phy.cs_threshold_w,
            capture_threshold=self.cfg.phy.capture_threshold,
            noise=self.noise,
            tracer=self.tracer,
            channel_name=channel_name,
        )
        if self.reception_plan is not None:
            from repro.phy.reception.sinr import SinrReceiver

            radio.reception = SinrReceiver(radio, self.reception_plan)
        return radio


def pick_flow_pairs(
    rngs: RngRegistry, node_count: int, flow_count: int
) -> list[tuple[int, int]]:
    """Random distinct (src, dst) pairs, src ≠ dst, no repeated pair.

    Draws from the ``"flows"`` stream — the same consumption as every
    historical scenario, so seeds reproduce identical endpoints.
    """
    rng = rngs.stream("flows")
    pairs: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    guard = 0
    while len(pairs) < flow_count:
        src = int(rng.integers(0, node_count))
        dst = int(rng.integers(0, node_count))
        guard += 1
        if guard > 100 * flow_count:
            raise RuntimeError("could not find enough distinct flow pairs")
        if src == dst or (src, dst) in seen:
            continue
        seen.add((src, dst))
        pairs.append((src, dst))
    return pairs


def _wire_energy(ctx: BuildContext, node: "Node", radio: Radio) -> None:
    """Attach meters (and optionally a battery) to one node's radios.

    Only called for non-null energy plans, so the null model leaves the
    network object graph — and therefore the event schedule — untouched.
    The data radio is always metered; PCMAC's control radio only when the
    plan asks (its radio hangs off ``mac.control``).  A finite battery
    installs the node-death hook: power off the meters (the battery does
    that first), detach every radio from its channel, shut the MAC down,
    and notify routing — neighbours then discover the dead hop through the
    normal retry/RERR machinery and route around it.
    """
    from repro.energy.battery import Battery
    from repro.energy.meter import EnergyLedger, RadioPowerMeter

    plan = ctx.energy_plan
    battery_j = plan.battery_j
    if isinstance(battery_j, tuple):
        battery_j = battery_j[node.node_id]
    battery = Battery(ctx.sim, battery_j) if battery_j > 0 else None
    ledger = EnergyLedger(node.node_id, battery=battery)
    radio.power_meter = RadioPowerMeter(
        ctx.sim, plan.model, ledger, battery=battery
    )
    control_agent = getattr(node.mac, "control", None)
    if plan.meter_control and control_agent is not None:
        control_agent.radio.power_meter = RadioPowerMeter(
            ctx.sim, plan.model, ledger, battery=battery
        )
    node.energy = ledger

    if battery is not None:
        data_channel = ctx.data_channel
        control_channel = ctx.control_channel

        def _drop_orphan(packet) -> None:
            # Mirror AODV's link-failure accounting: only data packets are
            # metered losses; routing control traffic just evaporates.
            if getattr(packet, "kind", None) == "data":
                node.metrics_drop(packet, "node_dead")

        def _on_depleted(now: float) -> None:
            ledger.died_at_s = now
            data_channel.detach(radio)
            if control_agent is not None and control_channel is not None:
                control_channel.detach(control_agent.radio)
            node.mac.shutdown(on_packet_drop=_drop_orphan)
            node.routing.on_node_down()

        battery.on_depleted.append(_on_depleted)


class NetworkBuilder:
    """Wire a complete network for one :class:`ScenarioSpec`.

    Runtime-only knobs (they do not change what is simulated, so they are
    deliberately *not* part of the spec's content hash):

    Args:
        spec: the declarative scenario.
        tracer: optional tracer shared by every layer.
        spatial_index: use the channels' uniform-grid fan-out (default).
            The brute-force scan is event-schedule bit-identical (enforced
            by the PHY equivalence suite); the flag only trades build/lookup
            overhead against per-frame fan-out cost.
        fused_kernel: use the kernel's fused single-traversal hot loop
            (default).  ``False`` selects the reference peek-then-pop loop —
            dispatch is bit-identical (enforced by the kernel equivalence
            suite); the flag only selects the loop implementation.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        tracer: Tracer | None = None,
        spatial_index: bool = True,
        fused_kernel: bool = True,
    ) -> None:
        self.spec = spec
        self.tracer = tracer or NULL_TRACER
        self.spatial_index = spatial_index
        self.fused_kernel = fused_kernel

    # ------------------------------------------------------------------ util

    def _resolve(self) -> dict[str, tuple[ComponentEntry, dict[str, Any]]]:
        """Look up every slot's component and validate its params up front.

        Unknown names raise :class:`~repro.registry.UnknownComponentError`
        (listing what is registered); bad params raise
        :class:`~repro.registry.ParamError` naming the offending key —
        before any expensive construction happens.
        """
        resolved: dict[str, tuple[ComponentEntry, dict[str, Any]]] = {}
        for slot, comp in self.spec.components().items():
            entry = registry(slot).get(comp.name)
            resolved[slot] = (entry, entry.validate(comp.params_dict))
        return resolved

    def _apply_observability(self, ctx: BuildContext) -> None:
        """Configure tracing and profiling from a non-null observability plan.

        Runs before any radio/MAC/node binds its trace handles, so a tracer
        created here is the one every layer records into.  The process-wide
        :data:`~repro.sim.trace.NULL_TRACER` is never mutated — when the
        caller did not supply a tracer and the plan wants trace collection,
        a fresh per-build tracer replaces it.
        """
        plan = ctx.obs_plan
        if plan.trace_categories or plan.max_records:
            if ctx.tracer is NULL_TRACER:
                ctx.tracer = Tracer(
                    enabled_categories=plan.trace_categories,
                    max_records=plan.max_records or Tracer.DEFAULT_MAX_RECORDS,
                )
            else:
                ctx.tracer.enable(*plan.trace_categories)
                if plan.max_records:
                    ctx.tracer.max_records = plan.max_records
        if plan.profile:
            ctx.sim.enable_profiling()

    # ----------------------------------------------------------------- build

    def build(self) -> "BuiltNetwork":
        """Construct the network (see the module docstring for the order)."""
        from repro.experiments.scenario import BuiltNetwork

        spec = self.spec
        cfg = spec.cfg
        resolved = self._resolve()
        mac_entry, mac_params = resolved["mac"]
        mobility_entry, mobility_params = resolved["mobility"]
        routing_entry, routing_params = resolved["routing"]

        if routing_entry.meta.get("requires_immobile") and not mobility_entry.meta.get(
            "immobile"
        ):
            raise ValueError(
                f"routing {routing_entry.name!r} requires immobile nodes; "
                f"use mobility 'static' (got {mobility_entry.name!r})"
            )

        # The engine factory runs before the context exists (the context
        # needs the simulator the plan configures) — see the module
        # docstring's contract table.
        engine_entry, engine_params = resolved["engine"]
        engine_plan: EnginePlan = engine_entry.factory(None, **engine_params)

        ctx = BuildContext(
            spec=spec,
            cfg=cfg,
            sim=Simulator(
                fused=self.fused_kernel,
                scheduler=engine_plan.scheduler,
                pool_events=engine_plan.pool_events,
                bucket_width_s=engine_plan.bucket_width_s,
            ),
            rngs=RngRegistry(cfg.seed),
            tracer=self.tracer,
            noise=ConstantNoise(cfg.phy.noise_floor_w),
        )

        prop_entry, prop_params = resolved["propagation"]
        ctx.propagation = prop_entry.factory(ctx, **prop_params)

        energy_entry, energy_params = resolved["energy"]
        ctx.energy_plan = energy_entry.factory(ctx, **energy_params)
        if ctx.energy_plan is not None and isinstance(
            ctx.energy_plan.battery_j, tuple
        ):
            if len(ctx.energy_plan.battery_j) != cfg.node_count:
                raise ValueError(
                    f"energy {energy_entry.name!r}: battery_j lists "
                    f"{len(ctx.energy_plan.battery_j)} capacities for "
                    f"{cfg.node_count} nodes"
                )

        obs_entry, obs_params = resolved["observability"]
        ctx.obs_plan = obs_entry.factory(ctx, **obs_params)
        if ctx.obs_plan is not None:
            self._apply_observability(ctx)

        faults_entry, faults_params = resolved["faults"]
        ctx.fault_plan = faults_entry.factory(ctx, **faults_params)

        reception_entry, reception_params = resolved["reception"]
        ctx.reception_plan = reception_entry.factory(ctx, **reception_params)

        ctx.mobility_plan = mobility_entry.factory(ctx, **mobility_params)
        channel_kwargs = dict(
            interference_floor_w=cfg.phy.interference_floor_w,
            model_propagation_delay=cfg.phy.model_propagation_delay,
            spatial_index=self.spatial_index,
            max_tx_power_w=cfg.phy.max_power_w,
            max_speed_mps=ctx.mobility_plan.max_speed_mps,
            fanout=engine_plan.fanout,
        )
        ctx.data_channel = Channel(
            ctx.sim, ctx.propagation, name="data", **channel_kwargs
        )
        if mac_entry.meta.get("control_channel"):
            ctx.control_channel = Channel(
                ctx.sim, ctx.propagation, name="control", **channel_kwargs
            )

        placement_entry, placement_params = resolved["placement"]
        ctx.positions = list(placement_entry.factory(ctx, **placement_params))
        if len(ctx.positions) != cfg.node_count:
            raise ValueError(
                f"placement {placement_entry.name!r} produced "
                f"{len(ctx.positions)} positions for {cfg.node_count} nodes"
            )

        make_router = routing_entry.factory(ctx, **routing_params)
        make_mac = mac_entry.factory(ctx, **mac_params)

        metrics = MetricsCollector()
        metrics.measure_start_s = cfg.traffic.start_time_s

        from repro.net.node import Node

        nodes: list[Node] = []
        for i in range(cfg.node_count):
            mobility = ctx.mobility_plan.make(i, ctx.positions[i])
            radio = ctx.make_radio(i, mobility, "data")
            ctx.data_channel.attach(radio)
            mac = make_mac(i, mobility, radio)
            router = make_router(i)
            node = Node(
                ctx.sim,
                i,
                mobility=mobility,
                mac=mac,
                routing=router,
                metrics=metrics,
                rngs=ctx.rngs,
                tracer=ctx.tracer,
            )
            if ctx.energy_plan is not None:
                _wire_energy(ctx, node, radio)
            nodes.append(node)

        if spec.flow_pairs is not None:
            for src, dst in spec.flow_pairs:
                if not (0 <= src < cfg.node_count and 0 <= dst < cfg.node_count):
                    raise ValueError(
                        f"flow pair ({src}, {dst}) out of range for "
                        f"{cfg.node_count} nodes"
                    )
            pairs = [tuple(p) for p in spec.flow_pairs]
        else:
            pairs = pick_flow_pairs(
                ctx.rngs, cfg.node_count, cfg.traffic.flow_count
            )
        traffic_entry, traffic_params = resolved["traffic"]
        sources = traffic_entry.factory(ctx, nodes, pairs, **traffic_params)

        extras: dict[str, Any] = {}
        if ctx.obs_plan is not None and ctx.obs_plan.probe_interval_s > 0:
            from repro.obs.probes import GaugeSampler

            extras["sampler"] = GaugeSampler(
                ctx.sim,
                nodes,
                interval_s=ctx.obs_plan.probe_interval_s,
                horizon_s=cfg.duration_s,
                gauges=ctx.obs_plan.gauges,
            )

        if ctx.fault_plan is not None:
            from repro.faults.injector import FaultInjector
            from repro.faults.resilience import ResilienceMonitor

            injector = FaultInjector(
                ctx.sim,
                nodes,
                plan=ctx.fault_plan,
                data_channel=ctx.data_channel,
                control_channel=ctx.control_channel,
                tracer=ctx.tracer,
                rng=ctx.rngs.stream("faults.runtime"),
            )
            injector.arm(cfg.duration_s)
            extras["faults"] = injector
            if ctx.fault_plan.resilience_interval_s > 0:
                extras["resilience"] = ResilienceMonitor(
                    ctx.sim,
                    metrics,
                    ctx.fault_plan,
                    interval_s=ctx.fault_plan.resilience_interval_s,
                    horizon_s=cfg.duration_s,
                )

        return BuiltNetwork(
            sim=ctx.sim,
            cfg=cfg,
            protocol=spec.mac.name,
            nodes=nodes,
            metrics=metrics,
            sources=list(sources),
            flow_pairs=pairs,
            tracer=ctx.tracer,
            data_channel=ctx.data_channel,
            control_channel=ctx.control_channel,
            rngs=ctx.rngs,
            extras=extras,
            spec=spec,
        )
