"""Built-in scenario components, registered into :mod:`repro.registry`.

One ``@registry(slot).register(...)`` block per component; this module is
imported lazily on first registry access.  The paper's Section IV
environment is exactly the all-defaults pick — ``uniform`` placement,
``waypoint`` mobility, ``aodv`` routing, ``cbr`` traffic, ``two_ray``
propagation, one of the four ``mac`` protocols — and everything else here
(grid/cluster/line placement, static mobility/routing, poisson traffic,
alternative propagation) opens the evaluation to non-paper workloads with
zero builder changes.

The builtin factories follow the slot contracts documented in
:mod:`repro.builder` and consume the same named RNG streams the historical
``build_network`` did (``placement``, ``mobility.<i>``, ``mac.<i>``,
``flows``), preserving bit-identical results for legacy scenarios.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.builder import (
    BuildContext,
    EnergyPlan,
    EnginePlan,
    MobilityPlan,
    ObservabilityPlan,
)
from repro.energy.model import EnergyModel
from repro.core.pcmac import PcmacMac
from repro.mac.basic import Basic80211Mac
from repro.mac.scheme1 import Scheme1Mac
from repro.mac.scheme2 import Scheme2Mac
from repro.mobility.placement import grid_positions, line_positions, uniform_positions
from repro.mobility.static import StaticMobility
from repro.mobility.waypoint import RandomWaypoint
from repro.net.aodv.protocol import AodvProtocol
from repro.net.static_routing import StaticRouting
from repro.phy.propagation import (
    FreeSpace,
    LogDistanceShadowing,
    model_from_config,
)
from repro.registry import REQUIRED, Param, registry
from repro.traffic.cbr import CbrSource
from repro.traffic.poisson import PoissonSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node

_mac = registry("mac")
_placement = registry("placement")
_mobility = registry("mobility")
_routing = registry("routing")
_traffic = registry("traffic")
_propagation = registry("propagation")
_energy = registry("energy")
_observability = registry("observability")
_faults = registry("faults")
_reception = registry("reception")
_engine = registry("engine")


# ---------------------------------------------------------------------------
# MAC
# ---------------------------------------------------------------------------


def _single_channel_mac(cls):
    """Factory-of-factories for the three single-channel MAC protocols."""

    def factory(ctx: BuildContext):
        def make(node_id: int, mobility, radio):
            return cls(
                ctx.sim,
                node_id,
                radio,
                ctx.data_channel,
                mac_cfg=ctx.cfg.mac,
                phy_cfg=ctx.cfg.phy,
                power_cfg=ctx.cfg.power,
                rng=ctx.rngs.stream(f"mac.{node_id}"),
                tracer=ctx.tracer,
            )

        return make

    return factory


_mac.register(
    "basic",
    doc="IEEE 802.11 DCF at maximum power (the paper's baseline)",
    meta={"cls": Basic80211Mac},
)(_single_channel_mac(Basic80211Mac))

_mac.register(
    "scheme1",
    doc="RTS/CTS at maximum power, DATA/ACK at minimum needed power",
    meta={"cls": Scheme1Mac},
)(_single_channel_mac(Scheme1Mac))

_mac.register(
    "scheme2",
    doc="every frame at minimum needed power (asymmetric-link prone)",
    meta={"cls": Scheme2Mac},
)(_single_channel_mac(Scheme2Mac))


@_mac.register(
    "pcmac",
    doc="the paper's PCMAC: power control channel + three-way handshake",
    meta={"cls": PcmacMac, "control_channel": True},
)
def _pcmac(ctx: BuildContext):
    def make(node_id: int, mobility, radio):
        assert ctx.control_channel is not None
        control_radio = ctx.make_radio(node_id, mobility, "control")
        ctx.control_channel.attach(control_radio)
        return PcmacMac(
            ctx.sim,
            node_id,
            radio,
            ctx.data_channel,
            control_radio=control_radio,
            control_channel=ctx.control_channel,
            mac_cfg=ctx.cfg.mac,
            phy_cfg=ctx.cfg.phy,
            power_cfg=ctx.cfg.power,
            pcmac_cfg=ctx.cfg.pcmac,
            rng=ctx.rngs.stream(f"mac.{node_id}"),
            tracer=ctx.tracer,
        )

    return make


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------


@_placement.register(
    "uniform", doc="uniform random over the field (paper Section IV)"
)
def _uniform(ctx: BuildContext):
    return uniform_positions(
        ctx.rngs.stream("placement"),
        ctx.cfg.node_count,
        ctx.cfg.mobility.field_width_m,
        ctx.cfg.mobility.field_height_m,
    )


@_placement.register("grid", doc="near-square grid covering the field")
def _grid(ctx: BuildContext):
    return grid_positions(
        ctx.cfg.node_count,
        ctx.cfg.mobility.field_width_m,
        ctx.cfg.mobility.field_height_m,
    )


@_placement.register(
    "line",
    params=(Param("spacing_m", float, 200.0), Param("y_m", float, 0.0)),
    doc="horizontal chain with fixed spacing (paper Figure 1 geometry)",
)
def _line(ctx: BuildContext, spacing_m: float, y_m: float):
    return line_positions(ctx.cfg.node_count, spacing_m, y_m)


@_placement.register(
    "cluster",
    params=(Param("clusters", int, 4), Param("spread_m", float, 80.0)),
    doc="gaussian blobs around uniformly drawn cluster centres",
)
def _cluster(ctx: BuildContext, clusters: int, spread_m: float):
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters!r}")
    if spread_m < 0:
        raise ValueError(f"spread_m must be non-negative, got {spread_m!r}")
    rng = ctx.rngs.stream("placement")
    width = ctx.cfg.mobility.field_width_m
    height = ctx.cfg.mobility.field_height_m
    centres = [
        (float(rng.uniform(0.0, width)), float(rng.uniform(0.0, height)))
        for _ in range(clusters)
    ]
    positions = []
    for i in range(ctx.cfg.node_count):
        cx, cy = centres[i % clusters]
        x = min(max(cx + float(rng.normal(0.0, spread_m)), 0.0), width)
        y = min(max(cy + float(rng.normal(0.0, spread_m)), 0.0), height)
        positions.append((x, y))
    return positions


@_placement.register(
    "explicit",
    params=(Param("positions", (list, tuple), REQUIRED),),
    doc="caller-specified (x, y) positions (controlled geometries)",
)
def _explicit(ctx: BuildContext, positions):
    if len(positions) != ctx.cfg.node_count:
        raise ValueError(
            f"got {len(positions)} positions for {ctx.cfg.node_count} nodes"
        )
    return [(float(x), float(y)) for x, y in positions]


# ---------------------------------------------------------------------------
# Mobility
# ---------------------------------------------------------------------------


@_mobility.register(
    "waypoint",
    doc="random waypoint from cfg.mobility (static when speed is 0)",
    meta={"immobile": False},
)
def _waypoint(ctx: BuildContext):
    cfg = ctx.cfg
    if cfg.mobility.speed_mps <= 0:
        # Degenerate speed: identical to static nodes (and lets the channel
        # pin its spatial index), matching the historical builder.
        return MobilityPlan(0.0, lambda i, pos: StaticMobility(pos))
    return MobilityPlan(
        cfg.mobility.speed_mps,
        lambda i, pos: RandomWaypoint(
            ctx.rngs.stream(f"mobility.{i}"), cfg.mobility, pos
        ),
    )


@_mobility.register(
    "static", doc="immobile nodes (controlled MAC-level topologies)",
    meta={"immobile": True},
)
def _static(ctx: BuildContext):
    return MobilityPlan(0.0, lambda i, pos: StaticMobility(pos))


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


@_routing.register("aodv", doc="AODV route discovery (paper Section IV)")
def _aodv(ctx: BuildContext):
    return lambda node_id: AodvProtocol(ctx.cfg.aodv)


@_routing.register(
    "static",
    doc="precomputed shortest paths over max-power links (immobile only)",
    meta={"requires_immobile": True},
)
def _static_routing(ctx: BuildContext):
    comm_range = ctx.propagation.range_for(
        ctx.cfg.phy.max_power_w, ctx.cfg.phy.rx_threshold_w
    )
    table = StaticRouting.from_positions(
        dict(enumerate(ctx.positions)), comm_range
    )
    return lambda node_id: table.view()


# ---------------------------------------------------------------------------
# Traffic
# ---------------------------------------------------------------------------


@_traffic.register(
    "cbr", doc="constant-bit-rate UDP flows (paper: 512 B packets)"
)
def _cbr(ctx: BuildContext, nodes: "list[Node]", pairs):
    cfg = ctx.cfg
    interval = cfg.traffic.packet_size_bytes * 8.0 / (
        cfg.traffic.offered_load_bps / len(pairs)
    )
    return [
        CbrSource(
            nodes[src],
            flow_id=k,
            dst=dst,
            interval_s=interval,
            size_bytes=cfg.traffic.packet_size_bytes,
            start_s=cfg.traffic.start_time_s + k * cfg.traffic.start_stagger_s,
        )
        for k, (src, dst) in enumerate(pairs)
    ]


@_traffic.register(
    "poisson",
    doc="exponential inter-arrivals at the same mean rate as cbr",
)
def _poisson(ctx: BuildContext, nodes: "list[Node]", pairs):
    cfg = ctx.cfg
    mean_interval = cfg.traffic.packet_size_bytes * 8.0 / (
        cfg.traffic.offered_load_bps / len(pairs)
    )
    return [
        PoissonSource(
            nodes[src],
            flow_id=k,
            dst=dst,
            mean_interval_s=mean_interval,
            size_bytes=cfg.traffic.packet_size_bytes,
            start_s=cfg.traffic.start_time_s + k * cfg.traffic.start_stagger_s,
            rng=ctx.rngs.stream(f"traffic.{k}"),
        )
        for k, (src, dst) in enumerate(pairs)
    ]


# ---------------------------------------------------------------------------
# Energy
# ---------------------------------------------------------------------------


@_energy.register(
    "null",
    doc="no energy accounting (default; zero instrumentation, bit-identical)",
)
def _null_energy(ctx: BuildContext):
    return None


@_energy.register(
    "wavelan",
    params=(
        Param("tx_base_w", float, 1.3682),
        Param("tx_scale", float, 1.0),
        Param("rx_w", float, 1.4),
        Param("idle_w", float, 1.15),
        Param("sleep_w", float, 0.045),
        Param("battery_j", (float, list, tuple), 0.0),
        Param("meter_control", bool, False),
    ),
    doc="WaveLAN-style per-state draws (1.65/1.4/1.15 W); battery_j>0 adds "
        "finite batteries and node death (a list gives node i battery_j[i])",
)
def _wavelan_energy(
    ctx: BuildContext,
    tx_base_w: float,
    tx_scale: float,
    rx_w: float,
    idle_w: float,
    sleep_w: float,
    battery_j: float,
    meter_control: bool,
):
    if isinstance(battery_j, (list, tuple)):
        battery_j = tuple(float(b) for b in battery_j)
        if any(b < 0 for b in battery_j):
            raise ValueError("battery_j entries must be non-negative")
    elif battery_j < 0:
        raise ValueError(f"battery_j must be non-negative, got {battery_j!r}")
    model = EnergyModel(
        tx_base_w=tx_base_w,
        tx_scale=tx_scale,
        rx_w=rx_w,
        idle_w=idle_w,
        sleep_w=sleep_w,
    )
    return EnergyPlan(
        model=model, battery_j=battery_j, meter_control=meter_control
    )


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


def _check_categories(categories) -> tuple[str, ...]:
    out = tuple(str(c) for c in categories)
    if any(not c for c in out):
        raise ValueError("trace categories must be non-empty strings")
    return out


def _check_gauges(gauges) -> tuple[str, ...]:
    from repro.obs.probes import GAUGE_FNS

    out = tuple(str(g) for g in gauges)
    unknown = [g for g in out if g not in GAUGE_FNS]
    if unknown:
        raise ValueError(
            f"unknown gauge(s): {', '.join(unknown)}; "
            f"available: {', '.join(GAUGE_FNS)}"
        )
    return out


@_observability.register(
    "null",
    doc="no observability (default; zero instrumentation, bit-identical)",
)
def _null_observability(ctx: BuildContext):
    return None


@_observability.register(
    "trace",
    params=(
        Param("categories", (list, tuple), ()),
        Param("max_records", int, 0),
    ),
    doc="record trace categories (empty = counters only); passive — the "
        "event schedule is unchanged",
)
def _trace_observability(ctx: BuildContext, categories, max_records: int):
    if max_records < 0:
        raise ValueError(f"max_records must be >= 0, got {max_records!r}")
    return ObservabilityPlan(
        trace_categories=_check_categories(categories),
        max_records=max_records,
    )


@_observability.register(
    "probes",
    params=(
        Param("interval_s", float, 1.0),
        Param("gauges", (list, tuple), ()),
    ),
    doc="sample per-node gauges every interval_s into result.timeseries "
        "(adds sampling events to the schedule)",
)
def _probes_observability(ctx: BuildContext, interval_s: float, gauges):
    if interval_s <= 0:
        raise ValueError(f"interval_s must be positive, got {interval_s!r}")
    return ObservabilityPlan(
        probe_interval_s=interval_s, gauges=_check_gauges(gauges)
    )


@_observability.register(
    "flight",
    params=(
        Param("interval_s", float, 1.0),
        Param("gauges", (list, tuple), ()),
        Param("categories", (list, tuple), ()),
        Param("max_records", int, 0),
        Param("profile", bool, True),
    ),
    doc="the full flight recorder: probes + trace recording + kernel "
        "self-profiling in one component",
)
def _flight_observability(
    ctx: BuildContext,
    interval_s: float,
    gauges,
    categories,
    max_records: int,
    profile: bool,
):
    if interval_s <= 0:
        raise ValueError(f"interval_s must be positive, got {interval_s!r}")
    if max_records < 0:
        raise ValueError(f"max_records must be >= 0, got {max_records!r}")
    return ObservabilityPlan(
        trace_categories=_check_categories(categories),
        max_records=max_records,
        probe_interval_s=interval_s,
        gauges=_check_gauges(gauges),
        profile=profile,
    )


# ---------------------------------------------------------------------------
# Faults
# ---------------------------------------------------------------------------


@_faults.register(
    "null",
    doc="no fault injection (default; zero instrumentation, bit-identical)",
)
def _null_faults(ctx: BuildContext):
    return None


@_faults.register(
    "churn",
    params=(
        Param("crash_count", int, 1),
        Param("window_start_s", float, 0.0),
        Param("window_end_s", float, 0.0),
        Param("downtime_s", float, 5.0),
        Param("rejoin", bool, True),
        Param("exclude", (list, tuple), ()),
        Param("resilience_interval_s", float, 1.0),
    ),
    doc="seeded node crash/recover churn: crash_count distinct nodes crash "
        "at uniform times in [window_start_s, window_end_s] (0 = horizon) "
        "and rejoin after downtime_s; exclude protects e.g. flow endpoints",
)
def _churn_faults(
    ctx: BuildContext,
    crash_count: int,
    window_start_s: float,
    window_end_s: float,
    downtime_s: float,
    rejoin: bool,
    exclude,
    resilience_interval_s: float,
):
    from repro.faults.plan import CrashEvent, FaultPlan

    if crash_count < 0:
        raise ValueError(f"crash_count must be >= 0, got {crash_count!r}")
    if downtime_s <= 0:
        raise ValueError(f"downtime_s must be positive, got {downtime_s!r}")
    end = window_end_s if window_end_s > 0 else ctx.cfg.duration_s
    if not (0.0 <= window_start_s < end):
        raise ValueError(
            f"churn window [{window_start_s}, {end}] is empty or negative"
        )
    excluded = {int(n) for n in exclude}
    candidates = [
        n for n in range(ctx.cfg.node_count) if n not in excluded
    ]
    if crash_count > len(candidates):
        raise ValueError(
            f"crash_count {crash_count} exceeds the {len(candidates)} "
            "crashable nodes (after exclusions)"
        )
    # All draws come from the dedicated "faults" stream, so (a) the plan is
    # a pure function of (seed, spec) and (b) every other stream — and with
    # it the fault-free part of the run — is unperturbed.
    rng = ctx.rngs.stream("faults")
    picked = rng.choice(len(candidates), size=crash_count, replace=False)
    times = rng.uniform(window_start_s, end, size=crash_count)
    crashes = tuple(
        sorted(
            (
                CrashEvent(
                    node=candidates[int(i)],
                    at_s=float(t),
                    recover_at_s=float(t) + downtime_s if rejoin else None,
                )
                for i, t in zip(picked, times)
            ),
            key=lambda c: (c.at_s, c.node),
        )
    )
    return FaultPlan(
        crashes=crashes, resilience_interval_s=resilience_interval_s
    )


@_faults.register(
    "scripted",
    params=(
        Param("crashes", (list, tuple), ()),
        Param("noise_bursts", (list, tuple), ()),
        Param("link_fades", (list, tuple), ()),
        Param("corrupt", (list, tuple), ()),
        Param("resilience_interval_s", float, 1.0),
    ),
    doc="explicit fault schedule: crashes [[node, at_s, recover_at_s<0=never]"
        "], noise_bursts [[start_s, end_s, noise_w]], link_fades [[src, dst, "
        "start_s, end_s, factor]], corrupt [[start_s, end_s, probability]]",
)
def _scripted_faults(
    ctx: BuildContext,
    crashes,
    noise_bursts,
    link_fades,
    corrupt,
    resilience_interval_s: float,
):
    from repro.faults.plan import (
        CorruptionWindow,
        CrashEvent,
        FaultPlan,
        LinkFade,
        NoiseBurst,
    )

    def _rows(raw, width: int, what: str):
        for row in raw:
            if len(row) != width:
                raise ValueError(
                    f"scripted faults: each {what} row needs {width} "
                    f"values, got {list(row)!r}"
                )
            yield row

    return FaultPlan(
        crashes=tuple(
            CrashEvent(
                node=int(node),
                at_s=float(at),
                recover_at_s=float(rec) if rec >= 0 else None,
            )
            for node, at, rec in _rows(crashes, 3, "crash")
        ),
        noise_bursts=tuple(
            NoiseBurst(start_s=float(s), end_s=float(e), noise_w=float(w))
            for s, e, w in _rows(noise_bursts, 3, "noise burst")
        ),
        link_fades=tuple(
            LinkFade(
                src=int(src),
                dst=int(dst),
                start_s=float(s),
                end_s=float(e),
                factor=float(f),
            )
            for src, dst, s, e, f in _rows(link_fades, 5, "link fade")
        ),
        corruption=tuple(
            CorruptionWindow(start_s=float(s), end_s=float(e), probability=float(p))
            for s, e, p in _rows(corrupt, 3, "corruption")
        ),
        resilience_interval_s=resilience_interval_s,
    )


# ---------------------------------------------------------------------------
# Reception
# ---------------------------------------------------------------------------


@_reception.register(
    "null",
    doc="radio's inline threshold decode rules (default; bit-identical)",
)
def _null_reception(ctx: BuildContext):
    return None


@_reception.register(
    "sinr",
    params=(
        Param("capture_threshold_db", float, None),
        Param("rx_sensitivity_dbm", float, None),
    ),
    doc="cumulative-SINR receiver state machine with preamble capture and "
        "typed loss reasons; unset params come from cfg.phy",
)
def _sinr_reception(
    ctx: BuildContext, capture_threshold_db, rx_sensitivity_dbm
):
    from repro.phy.reception.plan import ReceptionPlan
    from repro.units import db_to_ratio, dbm_to_watts

    phy = ctx.cfg.phy
    capture_threshold = (
        phy.capture_threshold
        if capture_threshold_db is None
        else db_to_ratio(capture_threshold_db)
    )
    rx_sensitivity_w = (
        phy.rx_threshold_w
        if rx_sensitivity_dbm is None
        else dbm_to_watts(rx_sensitivity_dbm)
    )
    return ReceptionPlan(
        capture_threshold=capture_threshold,
        rx_sensitivity_w=rx_sensitivity_w,
    )


# ---------------------------------------------------------------------------
# Propagation
# ---------------------------------------------------------------------------

_PROP_OVERRIDES = (
    Param("frequency_hz", float, None),
    Param("gain_tx", float, None),
    Param("gain_rx", float, None),
    Param("system_loss", float, None),
)


def _phy_default(value, fallback):
    return fallback if value is None else value


@_propagation.register(
    "two_ray",
    params=_PROP_OVERRIDES
    + (Param("height_tx_m", float, None), Param("height_rx_m", float, None)),
    doc="NS-2 two-ray ground (paper); unset params come from cfg.phy",
)
def _two_ray(ctx: BuildContext, **overrides):
    # Reuse the canonical PhyConfig → TwoRayGround mapping; the component's
    # param names deliberately equal the model's field names, so explicit
    # params drop onto the paper model with dataclasses.replace.
    given = {k: v for k, v in overrides.items() if v is not None}
    model = model_from_config(ctx.cfg.phy)
    return dataclasses.replace(model, **given) if given else model


@_propagation.register(
    "free_space",
    params=_PROP_OVERRIDES,
    doc="Friis free-space (1/d²); unset params come from cfg.phy",
)
def _free_space(ctx: BuildContext, frequency_hz, gain_tx, gain_rx, system_loss):
    phy = ctx.cfg.phy
    return FreeSpace(
        frequency_hz=_phy_default(frequency_hz, phy.frequency_hz),
        gain_tx=_phy_default(gain_tx, phy.antenna_gain_tx),
        gain_rx=_phy_default(gain_rx, phy.antenna_gain_rx),
        system_loss=_phy_default(system_loss, phy.system_loss),
    )


@_propagation.register(
    "log_distance",
    params=_PROP_OVERRIDES
    + (
        Param("exponent", float, 2.7),
        Param("reference_m", float, 1.0),
        Param("shadowing_db", float, 0.0),
    ),
    doc="log-distance path loss for robustness studies (exponent, shadowing)",
)
def _log_distance(
    ctx: BuildContext,
    frequency_hz,
    gain_tx,
    gain_rx,
    system_loss,
    exponent,
    reference_m,
    shadowing_db,
):
    phy = ctx.cfg.phy
    return LogDistanceShadowing(
        frequency_hz=_phy_default(frequency_hz, phy.frequency_hz),
        exponent=exponent,
        reference_m=reference_m,
        shadowing_db=shadowing_db,
        gain_tx=_phy_default(gain_tx, phy.antenna_gain_tx),
        gain_rx=_phy_default(gain_rx, phy.antenna_gain_rx),
        system_loss=_phy_default(system_loss, phy.system_loss),
    )


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

_ENGINE_PARAMS = (
    Param("scheduler", str, "heap"),
    Param("fanout", str, "scalar"),
    Param("pool_events", bool, False),
    Param("bucket_width_s", float, 1e-3),
)


def _engine_plan(scheduler, fanout, pool_events, bucket_width_s) -> EnginePlan:
    # Validate names here so a bad spec fails at build time with the
    # registry's clear error surface, not deep inside Simulator/Channel.
    if scheduler not in ("heap", "calendar"):
        raise ValueError(
            f"engine scheduler must be 'heap' or 'calendar', got {scheduler!r}"
        )
    if fanout not in ("scalar", "soa"):
        raise ValueError(f"engine fanout must be 'scalar' or 'soa', got {fanout!r}")
    if bucket_width_s <= 0:
        raise ValueError(f"engine bucket_width_s must be positive, got {bucket_width_s!r}")
    return EnginePlan(
        scheduler=scheduler,
        fanout=fanout,
        pool_events=pool_events,
        bucket_width_s=bucket_width_s,
    )


@_engine.register(
    "default",
    params=_ENGINE_PARAMS,
    doc="execution engine: heap scheduler, scalar fan-out, no pooling "
    "(every combination is result-bit-identical; see docs/performance.md)",
)
def _engine_default(ctx, scheduler, fanout, pool_events, bucket_width_s):
    """Configurable execution engine (called with ctx=None — see builder docs)."""
    return _engine_plan(scheduler, fanout, pool_events, bucket_width_s)


@_engine.register(
    "turbo",
    params=(
        Param("scheduler", str, "calendar"),
        Param("fanout", str, "soa"),
        Param("pool_events", bool, True),
        Param("bucket_width_s", float, 1e-3),
    ),
    doc="the mega-scale preset: calendar scheduler + SoA fan-out + event "
    "pooling (bit-identical results, fastest on large static worlds)",
)
def _engine_turbo(ctx, scheduler, fanout, pool_events, bucket_width_s):
    """The fast preset — same factory as 'default' with turbo defaults."""
    return _engine_plan(scheduler, fanout, pool_events, bucket_width_s)
