"""Declarative scenario descriptions: components as data, hashable, JSON-safe.

A :class:`ScenarioSpec` is the single input to
:class:`~repro.builder.NetworkBuilder`: the numeric
:class:`~repro.config.ScenarioConfig` plus one :class:`ComponentSpec`
(component name + params) per scenario slot — ``mac``, ``placement``,
``mobility``, ``routing``, ``traffic``, ``propagation``, ``energy``,
``observability``, ``faults``, ``reception``, ``engine`` — and
optional explicit flow endpoints.  Because every field is an immutable value type the
spec is hashable, picklable, and round-trips through JSON without loss::

    spec = ScenarioSpec(
        cfg=ScenarioConfig(node_count=16, duration_s=20.0),
        mac="pcmac",
        placement=ComponentSpec("grid"),
        traffic=ComponentSpec("poisson"),
    )
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    assert ScenarioSpec.from_json(spec.to_json()).key() == spec.key()

``key()`` is a stable content hash (independent of process, machine and
``PYTHONHASHSEED``) — the campaign result store addresses cached results by
*what* ran, not by the Python call-site that ran it.

Component names are resolved against :mod:`repro.registry` at *build* time;
a spec mentioning an unregistered component is still constructible and
hashable (it describes a scenario this process merely cannot build).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.config import ScenarioConfig
from repro.registry import SLOTS as COMPONENT_SLOTS

#: Bump when the spec serialisation or simulation semantics change
#: incompatibly — stored content keys then stop matching and are recomputed.
#: 3: the ``energy`` component slot joined the spec (default ``null``).
#: 4: the ``observability`` component slot joined the spec (default ``null``).
#: 5: the ``faults`` component slot joined the spec (default ``null``).
#: 6: the ``reception`` component slot joined the spec (default ``null``).
#: 7: the ``engine`` component slot joined the spec (default ``default`` —
#:    heap scheduler, scalar fan-out, no event pooling).
SCENARIO_SCHEMA_VERSION = 7

#: Older schemas :meth:`ScenarioSpec.from_dict` still reads.  Schema-2/3/4/
#: 5/6 files simply lack the ``energy`` / ``observability`` / ``faults`` /
#: ``reception`` / ``engine`` slots, which take their identity-preserving
#: defaults — the simulated scenario is identical, so old spec.json files
#: keep working (they hash, like everything this build loads, under the
#: current schema).
_READABLE_SCHEMAS = frozenset({2, 3, 4, 5, 6, SCENARIO_SCHEMA_VERSION})


def _freeze(value: Any) -> Any:
    """Recursively convert lists/tuples to tuples (hashable spec values)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        raise TypeError(
            "component params must be scalars or (nested) sequences, not dicts"
        )
    return value


def _jsonable(value: Any) -> Any:
    """Recursively convert tuples to lists (JSON-ready spec values)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    return value


def _normalize_numbers(value: Any) -> Any:
    """Render every non-bool number as float (hash pre-image only).

    JSON spells ``300000`` and ``300000.0`` differently, so without this a
    hand-written int in ``spec.json`` would content-hash away from the
    float-typed spec a Campaign generates for the *same* scenario.  The
    normalisation is applied to :meth:`ScenarioSpec.canonical` — never to
    :meth:`ScenarioSpec.to_dict` output, which must round-trip exact types.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return float(value)
    if isinstance(value, list):
        return [_normalize_numbers(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalize_numbers(v) for k, v in value.items()}
    return value


@dataclass(frozen=True, init=False)
class ComponentSpec:
    """One slot's component choice: a registered name plus its params.

    Params are stored as a sorted tuple of ``(key, value)`` pairs so the
    spec stays hashable; :attr:`params_dict` gives the mapping view.
    """

    name: str
    params: tuple[tuple[str, Any], ...]

    def __init__(self, name: str, /, **params: Any) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"component name must be a non-empty string, got {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(
            self,
            "params",
            tuple(sorted((k, _freeze(v)) for k, v in params.items())),
        )

    @classmethod
    def of(cls, name: str, params: Mapping[str, Any] | None = None) -> "ComponentSpec":
        """Build from a name and an optional params mapping."""
        return cls(name, **dict(params or {}))

    @property
    def params_dict(self) -> dict[str, Any]:
        """The params as a plain dict (values still frozen tuples)."""
        return dict(self.params)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form: ``{"name": ..., "params": {...}}``."""
        return {"name": self.name, "params": _jsonable(self.params_dict)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any] | str) -> "ComponentSpec":
        """Inverse of :meth:`to_dict`; a bare string means no params."""
        if isinstance(data, str):
            return cls(data)
        unknown = set(data) - {"name", "params"}
        if unknown:
            raise ValueError(
                f"unknown component field(s): {', '.join(sorted(unknown))} "
                "(a component is {\"name\": ..., \"params\": {...}})"
            )
        name = data.get("name")
        if name is None:
            raise ValueError(
                'component dict is missing "name" '
                '(a component is {"name": ..., "params": {...}})'
            )
        return cls.of(name, data.get("params"))

    def __str__(self) -> str:
        if not self.params:
            return self.name
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}({inner})"


# ---------------------------------------------------------------------------
# ScenarioConfig <-> dict
# ---------------------------------------------------------------------------


def config_to_dict(cfg: Any) -> dict[str, Any]:
    """Serialise a (nested) frozen config dataclass to a JSON-able dict."""
    return _jsonable(dataclasses.asdict(cfg))


def config_from_dict(cls: type, data: Mapping[str, Any]) -> Any:
    """Rebuild ``cls`` from (possibly sparse) ``data``.

    Missing fields keep their defaults, nested dataclasses recurse, and JSON
    lists become the tuples the frozen configs declare — so a hand-written
    ``spec.json`` only needs the values it overrides.
    """
    hints = typing.get_type_hints(cls)
    kwargs: dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        hint = hints.get(f.name)
        if dataclasses.is_dataclass(hint) and isinstance(value, Mapping):
            value = config_from_dict(hint, value)
        elif isinstance(value, list):
            value = _freeze(value)
        kwargs[f.name] = value
    unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} field(s): {', '.join(sorted(unknown))}"
        )
    return cls(**kwargs)


# ---------------------------------------------------------------------------
# ScenarioSpec
# ---------------------------------------------------------------------------


def _component(default: str):
    return field(default_factory=lambda: ComponentSpec(default))


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete scenario as data: numerics + one component per slot."""

    cfg: ScenarioConfig = field(default_factory=ScenarioConfig)
    mac: ComponentSpec = _component("basic")
    placement: ComponentSpec = _component("uniform")
    mobility: ComponentSpec = _component("waypoint")
    routing: ComponentSpec = _component("aodv")
    traffic: ComponentSpec = _component("cbr")
    propagation: ComponentSpec = _component("two_ray")
    energy: ComponentSpec = _component("null")
    observability: ComponentSpec = _component("null")
    faults: ComponentSpec = _component("null")
    reception: ComponentSpec = _component("null")
    #: Execution-engine knobs (scheduler / fan-out / event pooling).  All
    #: registered engines are dispatch-order preserving — results are
    #: bit-identical across engines — but the choice still hashes into the
    #: content key: a stored result records exactly what ran.
    engine: ComponentSpec = _component("default")
    #: Explicit (src, dst) flow endpoints; None = random distinct pairs.
    flow_pairs: tuple[tuple[int, int], ...] | None = None

    def __post_init__(self) -> None:
        # Ergonomics: accept bare component names ("pcmac") for any slot.
        for slot in COMPONENT_SLOTS:
            value = getattr(self, slot)
            if isinstance(value, str):
                object.__setattr__(self, slot, ComponentSpec(value))
            elif not isinstance(value, ComponentSpec):
                raise TypeError(
                    f"{slot} must be a ComponentSpec or component name, "
                    f"got {value!r}"
                )
        if self.flow_pairs is not None:
            object.__setattr__(
                self,
                "flow_pairs",
                tuple((int(s), int(d)) for s, d in self.flow_pairs),
            )

    # ------------------------------------------------------------- identity

    def components(self) -> dict[str, ComponentSpec]:
        """Slot name → component spec, in canonical slot order."""
        return {slot: getattr(self, slot) for slot in COMPONENT_SLOTS}

    def canonical(self) -> dict[str, Any]:
        """Canonical JSON-able description (the content-hash pre-image).

        Numbers are normalised to floats here (and only here) so the same
        scenario hashes identically however its numerics were spelled —
        see :func:`_normalize_numbers`.
        """
        return _normalize_numbers(
            {
                "schema": SCENARIO_SCHEMA_VERSION,
                "cfg": config_to_dict(self.cfg),
                "components": {
                    slot: spec.to_dict()
                    for slot, spec in self.components().items()
                },
                "flow_pairs": _jsonable(self.flow_pairs),
            }
        )

    def key(self) -> str:
        """Stable content hash identifying this scenario across processes."""
        blob = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        ).encode()
        return hashlib.sha256(blob).hexdigest()[:32]

    def label(self) -> str:
        """Short human-readable name for progress lines."""
        return (
            f"{self.mac.name}@"
            f"{self.cfg.traffic.offered_load_bps / 1000.0:g}kbps/"
            f"seed{self.cfg.seed}"
        )

    # ---------------------------------------------------------------- (de)ser

    def to_dict(self) -> dict[str, Any]:
        """Full JSON-able form (same shape as :meth:`canonical`, but with
        exact numeric types preserved for lossless round-tripping)."""
        return {
            "schema": SCENARIO_SCHEMA_VERSION,
            "cfg": config_to_dict(self.cfg),
            "components": {
                slot: spec.to_dict() for slot, spec in self.components().items()
            },
            "flow_pairs": _jsonable(self.flow_pairs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output or a sparse hand-written
        dict (missing cfg fields and slots keep the paper defaults)."""
        schema = data.get("schema", SCENARIO_SCHEMA_VERSION)
        if schema not in _READABLE_SCHEMAS:
            raise ValueError(
                f"scenario schema {schema!r} is not supported "
                f"(this build reads schemas "
                f"{', '.join(str(s) for s in sorted(_READABLE_SCHEMAS))})"
            )
        unknown = set(data) - {"schema", "cfg", "components", "flow_pairs"}
        if unknown:
            raise ValueError(
                f"unknown scenario field(s): {', '.join(sorted(unknown))}"
            )
        components = dict(data.get("components", {}))
        bad_slots = set(components) - set(COMPONENT_SLOTS)
        if bad_slots:
            raise ValueError(
                f"unknown component slot(s): {', '.join(sorted(bad_slots))}; "
                f"slots: {', '.join(COMPONENT_SLOTS)}"
            )
        kwargs: dict[str, Any] = {
            slot: ComponentSpec.from_dict(spec)
            for slot, spec in components.items()
        }
        if data.get("cfg") is not None:
            kwargs["cfg"] = config_from_dict(ScenarioConfig, data["cfg"])
        pairs = data.get("flow_pairs")
        if pairs is not None:
            kwargs["flow_pairs"] = tuple((int(s), int(d)) for s, d in pairs)
        return cls(**kwargs)

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialise to JSON text."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        """Write the spec to ``path`` as pretty-printed JSON."""
        Path(path).write_text(self.to_json(indent=2) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        """Read a spec from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # ------------------------------------------------------------- execution

    def build(self, **builder_kwargs: Any):
        """Wire the network this spec describes (see
        :class:`~repro.builder.NetworkBuilder` for the runtime-only knobs)."""
        from repro.builder import NetworkBuilder

        return NetworkBuilder(self, **builder_kwargs).build()

    def run(self, **builder_kwargs: Any):
        """Build and execute, returning the
        :class:`~repro.experiments.scenario.ExperimentResult`."""
        return self.build(**builder_kwargs).run()

    # ---------------------------------------------------------------- legacy

    @classmethod
    def from_legacy(
        cls,
        cfg: ScenarioConfig,
        protocol: str,
        *,
        positions: Sequence[tuple[float, float]] | None = None,
        mobile: bool = True,
        routing: str = "aodv",
        flow_pairs: Sequence[tuple[int, int]] | None = None,
        propagation: Any = None,
    ) -> "ScenarioSpec":
        """Map the historical ``build_network(cfg, protocol, ...)`` keyword
        surface onto a declarative spec (the compatibility-shim translation).
        """
        placement = (
            ComponentSpec("uniform")
            if positions is None
            else ComponentSpec(
                "explicit", positions=tuple((float(x), float(y)) for x, y in positions)
            )
        )
        return cls(
            cfg=cfg,
            mac=ComponentSpec(protocol),
            placement=placement,
            mobility=ComponentSpec("waypoint" if mobile else "static"),
            routing=ComponentSpec(routing),
            traffic=ComponentSpec("cbr"),
            propagation=_propagation_component(propagation),
            flow_pairs=(
                tuple((int(s), int(d)) for s, d in flow_pairs)
                if flow_pairs is not None
                else None
            ),
        )


def _propagation_component(model: Any) -> ComponentSpec:
    """Translate a legacy propagation-model *instance* into a component spec.

    ``None`` keeps the paper default (two-ray derived from ``cfg.phy``); a
    model instance maps to its registered component with every declared field
    captured as params, so the spec fully determines the model.
    """
    if model is None:
        return ComponentSpec("two_ray")
    from repro.phy.propagation import FreeSpace, LogDistanceShadowing, TwoRayGround

    names = {
        TwoRayGround: "two_ray",
        FreeSpace: "free_space",
        LogDistanceShadowing: "log_distance",
    }
    name = names.get(type(model))
    if name is None:
        raise TypeError(
            f"cannot express propagation model {type(model).__name__} as a "
            "registered component; construct a ScenarioSpec with an explicit "
            "propagation=ComponentSpec(...) instead"
        )
    params = {
        f.name: getattr(model, f.name) for f in dataclasses.fields(model)
    }
    return ComponentSpec.of(name, params)
