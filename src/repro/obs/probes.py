"""Periodic per-node gauge sampling into a columnar time series.

A :class:`GaugeSampler` schedules itself on the simulator at a fixed
interval and snapshots one float per (gauge, node) each tick.  Unlike
tracing — which records *events* as they happen — probes record *state*:
queue depths, contention windows, residual energy.  That is exactly the
fine-grained runtime signal the power-control literature tunes against,
and it is unavailable from end-of-run aggregates.

Because the sampler schedules real events it necessarily changes
``events_executed`` — which is why probes live behind the ``observability``
scenario slot and participate in the spec's content hash (a probed
scenario *is* a different scenario, same as a battery-equipped one).  The
samples themselves are pure reads: no gauge mutates protocol state, so
the dispatch order of everything else is unchanged.

Gauges
------
======================  ===================================================
``ifq_depth``           MAC interface-queue occupancy [packets]
``cw``                  current contention window [slots]
``retry_timeouts``      cumulative CTS+ACK timeouts (retry pressure)
``tx_power_w``          transmit power of the frame on air [W] (0 = idle)
``radio_state``         0=idle, 1=rx, 2=tx, 3=sleep (metered runs only
                        distinguish sleep)
``battery_j``           residual battery energy [J]; -1 = mains / unmetered
``route_count``         valid routing-table entries
``rx_drops``            cumulative typed receiver discards (0 under the
                        null ``reception`` model, which classifies nothing)
======================  ===================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.energy.model import RadioState
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node

#: ``radio_state`` gauge encoding (stable across runs and schema bumps).
RADIO_STATE_CODES: dict[RadioState, float] = {
    RadioState.IDLE: 0.0,
    RadioState.RX: 1.0,
    RadioState.TX: 2.0,
    RadioState.SLEEP: 3.0,
}


def _g_ifq_depth(node: "Node", now: float) -> float:
    return float(node.mac.queue_depth)


def _g_cw(node: "Node", now: float) -> float:
    return float(node.mac.contention_window)


def _g_retry_timeouts(node: "Node", now: float) -> float:
    return float(node.mac.retry_timeouts)


def _g_tx_power(node: "Node", now: float) -> float:
    return float(node.mac.radio.tx_power_w)


def _g_radio_state(node: "Node", now: float) -> float:
    radio = node.mac.radio
    meter = radio.power_meter
    if meter is not None:
        return RADIO_STATE_CODES[meter.state]
    if radio.transmitting:
        return RADIO_STATE_CODES[RadioState.TX]
    if radio.receiving:
        return RADIO_STATE_CODES[RadioState.RX]
    return RADIO_STATE_CODES[RadioState.IDLE]


def _g_battery(node: "Node", now: float) -> float:
    ledger = node.energy
    if ledger is None:
        return -1.0
    remaining = ledger.remaining_j
    return -1.0 if remaining is None else float(remaining)


def _g_route_count(node: "Node", now: float) -> float:
    return float(node.routing.route_count())


def _g_rx_drops(node: "Node", now: float) -> float:
    return float(node.mac.rx_drops)


GaugeFn = Callable[["Node", float], float]

#: name → reader, in the canonical column order.
GAUGE_FNS: Mapping[str, GaugeFn] = {
    "ifq_depth": _g_ifq_depth,
    "cw": _g_cw,
    "retry_timeouts": _g_retry_timeouts,
    "tx_power_w": _g_tx_power,
    "radio_state": _g_radio_state,
    "battery_j": _g_battery,
    "route_count": _g_route_count,
    "rx_drops": _g_rx_drops,
}

#: The default gauge set (every registered gauge, canonical order).
DEFAULT_GAUGES: tuple[str, ...] = tuple(GAUGE_FNS)


@dataclass(frozen=True)
class TimeSeries:
    """Columnar probe samples: one row per tick, one column per gauge.

    Plain frozen data so it rides ``ExperimentResult.timeseries`` through
    the campaign store's JSON round trip losslessly.  ``data`` is indexed
    ``data[gauge][sample][node]`` — gauge-major so per-gauge analysis
    (the common access pattern) slices contiguously.
    """

    #: Sampling interval [s].
    interval_s: float
    #: Gauge names, in column order (indexes ``data``).
    gauges: tuple[str, ...]
    #: Sample instants [s], one per tick.
    times: tuple[float, ...]
    #: ``data[g][t][n]`` = gauge ``g`` on node ``n`` at ``times[t]``.
    data: tuple[tuple[tuple[float, ...], ...], ...]

    @property
    def node_count(self) -> int:
        """Nodes per sample (0 for an empty series)."""
        if not self.data or not self.data[0]:
            return 0
        return len(self.data[0][0])

    @property
    def samples(self) -> int:
        """Number of ticks recorded."""
        return len(self.times)

    def gauge(self, name: str) -> tuple[tuple[float, ...], ...]:
        """The per-sample rows for one gauge (``[sample][node]``)."""
        try:
            idx = self.gauges.index(name)
        except ValueError:
            raise KeyError(
                f"unknown gauge {name!r}; recorded: {', '.join(self.gauges)}"
            ) from None
        return self.data[idx]

    def node_series(self, name: str, node: int) -> tuple[float, ...]:
        """One gauge's trajectory for one node."""
        return tuple(row[node] for row in self.gauge(name))

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TimeSeries":
        """Rebuild from the JSON shape ``dataclasses.asdict`` produced."""
        return cls(
            interval_s=float(payload["interval_s"]),
            gauges=tuple(payload["gauges"]),
            times=tuple(float(t) for t in payload["times"]),
            data=tuple(
                tuple(tuple(float(v) for v in row) for row in gauge_rows)
                for gauge_rows in payload["data"]
            ),
        )


class GaugeSampler:
    """Schedules itself every ``interval_s`` and snapshots all gauges.

    Created by the builder when the scenario's ``observability`` component
    asks for probes; the first sample fires at t=0 (initial conditions)
    and the last at the final tick not beyond ``horizon_s``.  Sampling is
    read-only — it adds events to the schedule but never perturbs the
    dispatch order of protocol events.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence["Node"],
        *,
        interval_s: float,
        horizon_s: float,
        gauges: Iterable[str] = (),
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        names = tuple(gauges) or DEFAULT_GAUGES
        unknown = [n for n in names if n not in GAUGE_FNS]
        if unknown:
            raise ValueError(
                f"unknown gauge(s): {', '.join(unknown)}; "
                f"available: {', '.join(GAUGE_FNS)}"
            )
        self.sim = sim
        self.nodes = list(nodes)
        self.interval_s = float(interval_s)
        self.horizon_s = float(horizon_s)
        self.names = names
        self._fns = tuple(GAUGE_FNS[n] for n in names)
        self.times: list[float] = []
        self._columns: list[list[tuple[float, ...]]] = [[] for _ in names]
        sim.schedule(0.0, self._sample, label="obs.sample")

    def _sample(self) -> None:
        now = self.sim.now
        self.times.append(now)
        nodes = self.nodes
        for column, fn in zip(self._columns, self._fns):
            column.append(tuple(fn(node, now) for node in nodes))
        if now + self.interval_s <= self.horizon_s:
            self.sim.schedule_in(self.interval_s, self._sample, label="obs.sample")

    def timeseries(self) -> TimeSeries:
        """Freeze everything sampled so far into a :class:`TimeSeries`."""
        return TimeSeries(
            interval_s=self.interval_s,
            gauges=self.names,
            times=tuple(self.times),
            data=tuple(tuple(column) for column in self._columns),
        )
