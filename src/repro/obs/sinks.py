"""Streaming trace sinks: export records instead of truncating in memory.

A sink plugs into :attr:`repro.sim.trace.Tracer.sink`.  The contract is a
single method, ``write(record) -> bool``: return True to consume the record
(it then bypasses the in-memory ring *and* the ``max_records`` cap — sunk
records are never dropped), or False to decline it (it falls back to the
ring under the usual cap).  Declining is how per-category filters compose
with in-memory collection: a sink can stream the bulk categories to disk
while the rare ones stay queryable in memory.

Counters are unaffected either way — they live on the
:class:`~repro.sim.trace.TraceChannel` handles and stay exact whether
records are stored, sunk, or dropped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable

from repro.sim.trace import TraceRecord


class TraceSink:
    """Base streaming sink: consumes every record offered to it.

    Subclasses override :meth:`write` (and usually :meth:`close`).  The
    base class is also usable directly as a null sink that swallows
    records while counting them — handy for overhead measurements.
    """

    def __init__(self) -> None:
        #: Records consumed by this sink.
        self.written = 0

    def write(self, record: TraceRecord) -> bool:
        """Consume ``record``; return False to decline it instead."""
        self.written += 1
        return True

    def flush(self) -> None:
        """Push buffered output to its destination (no-op by default)."""

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""
        self.flush()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class JsonlSink(TraceSink):
    """Stream trace records to a JSONL file (the NS-2 trace-file analogue).

    One JSON object per line, in emission order, with the
    :meth:`~repro.sim.trace.TraceRecord.as_dict` shape (``time``,
    ``category``, ``node``, plus the record's detail fields).  Writes are
    buffered through the underlying text stream, so per-record cost is one
    ``json.dumps`` — cheap enough for full-category exports of long runs.

    Args:
        path: output file (parent directories are created); an existing
            file is overwritten, matching a fresh run's expectations.
        categories: when given, only these categories are consumed — other
            records are declined and fall back to the tracer's in-memory
            ring.  Default: consume everything.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        categories: Iterable[str] | None = None,
    ) -> None:
        super().__init__()
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.categories: frozenset[str] | None = (
            frozenset(categories) if categories is not None else None
        )
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")

    def write(self, record: TraceRecord) -> bool:
        """Append one record as a JSON line; declines filtered categories."""
        if self.categories is not None and record.category not in self.categories:
            return False
        fh = self._fh
        if fh is None:
            raise ValueError(f"JsonlSink({self.path}) is closed")
        fh.write(json.dumps(record.as_dict(), separators=(",", ":")))
        fh.write("\n")
        self.written += 1
        return True

    def flush(self) -> None:
        """Flush the underlying file buffer."""
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Flush and close the file; further writes raise."""
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


def read_jsonl_trace(path: str | Path) -> list[dict]:
    """Load a :class:`JsonlSink` file back as a list of record dicts.

    The inverse of the sink for analysis scripts and tests; a torn final
    line (interrupted run) is skipped rather than raising.
    """
    records: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records
