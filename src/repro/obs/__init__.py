"""The flight recorder: streaming sinks, probes, profiling, telemetry.

Everything in this package is *opt-in observability* — instrumentation that
watches a run without changing what is simulated.  It is wired through the
``observability`` scenario slot (default ``null``: zero instrumentation,
event-schedule bit-identical, guarded by ``tools/bench_obs.py``):

* :mod:`repro.obs.sinks` — streaming trace sinks.  A
  :class:`~repro.obs.sinks.JsonlSink` attached to a
  :class:`~repro.sim.trace.Tracer` exports every record of its categories
  to disk instead of truncating at ``max_records``.
* :mod:`repro.obs.probes` — periodic per-node gauge sampling
  (:class:`~repro.obs.probes.GaugeSampler`) into a columnar
  :class:`~repro.obs.probes.TimeSeries` that rides
  ``ExperimentResult.timeseries`` through the campaign store.
* :mod:`repro.obs.profile` — wall-clock attribution per event-handler kind
  from the kernel's opt-in profiled loop, rendered as a
  :class:`~repro.obs.profile.ProfileReport`.
* :mod:`repro.obs.telemetry` — live per-run progress
  (:class:`~repro.obs.telemetry.RunProgress`) streamed from campaign
  workers to the parent, plus the sliced heartbeat runner that produces it
  without perturbing the event schedule.

The split from :mod:`repro.sim.trace` is deliberate: the tracer stays a
dependency-free hot-path primitive; this package holds everything with I/O,
wall clocks, or cross-process concerns.
"""

from repro.obs.probes import DEFAULT_GAUGES, GaugeSampler, TimeSeries
from repro.obs.profile import ProfileEntry, ProfileReport
from repro.obs.sinks import JsonlSink, TraceSink
from repro.obs.telemetry import RunProgress, run_with_heartbeat

__all__ = [
    "DEFAULT_GAUGES",
    "GaugeSampler",
    "JsonlSink",
    "ProfileEntry",
    "ProfileReport",
    "RunProgress",
    "TimeSeries",
    "TraceSink",
    "run_with_heartbeat",
]
