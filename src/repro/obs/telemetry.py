"""Live campaign telemetry: per-run progress streamed while a cell runs.

The enabling observation: the kernel dispatches an identical event sequence
whether ``run_until(T)`` is called once or as a monotone series of slices
``run_until(t_1), ..., run_until(T)`` — events at exactly a slice boundary
run in the earlier call, and the clock advance between calls schedules
nothing.  So a worker can execute a cell in sim-time slices and emit a
:class:`RunProgress` between slices — sim-time rate, events/sec, ETA, peak
RSS — without perturbing determinism (regression-tested in
``tests/obs/test_telemetry.py``).

The campaign runner wires this into its worker pool: workers push
progress over a queue, the parent renders a live line.  Everything here is
also usable serially (``jobs=1``) with a plain callback.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.spec import RunSpec
    from repro.experiments.scenario import ExperimentResult


def peak_rss_kb() -> int:
    """This process's peak resident set size [KiB] (0 where unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        peak //= 1024
    return int(peak)


@dataclass(frozen=True)
class RunProgress:
    """One heartbeat from a running cell."""

    #: The cell's content key (matches the result store's addressing).
    key: str
    #: Short human label (``RunSpec.label()``).
    label: str
    #: Simulated seconds completed so far.
    sim_time_s: float
    #: The cell's horizon [simulated s].
    duration_s: float
    #: Events dispatched so far.
    events: int
    #: Wall-clock seconds elapsed so far.
    wall_s: float
    #: Peak resident set size of the executing process [KiB].
    peak_rss_kb: int
    #: True on the final heartbeat (the cell just finished).
    done: bool = False

    @property
    def events_per_sec(self) -> float:
        """Dispatch rate so far [events per wall-clock second]."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def sim_rate(self) -> float:
        """Simulated seconds per wall-clock second."""
        return self.sim_time_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def eta_s(self) -> float:
        """Estimated wall-clock seconds remaining (0 when done/unknown)."""
        if self.done or self.sim_time_s <= 0 or self.wall_s <= 0:
            return 0.0
        remaining = self.duration_s - self.sim_time_s
        return max(0.0, self.wall_s * remaining / self.sim_time_s)

    def line(self) -> str:
        """A compact single-line rendering for live progress displays."""
        if self.done:
            return (
                f"{self.label}: done  {self.events:,} ev in {self.wall_s:.1f}s "
                f"({self.events_per_sec:,.0f} ev/s, rss {self.peak_rss_kb // 1024} MiB)"
            )
        return (
            f"{self.label}: t={self.sim_time_s:.1f}/{self.duration_s:.0f}s  "
            f"{self.events_per_sec:,.0f} ev/s  eta {self.eta_s:.0f}s  "
            f"rss {self.peak_rss_kb // 1024} MiB"
        )


TelemetryFn = Callable[[RunProgress], Any]

#: Heartbeats per run — sized so a typical cell reports every few hundred
#: milliseconds without the slicing overhead becoming measurable.
DEFAULT_SLICES = 20


def run_with_heartbeat(
    spec: "RunSpec",
    emit: TelemetryFn,
    *,
    slices: int = DEFAULT_SLICES,
) -> tuple["ExperimentResult", dict]:
    """Execute one cell in sim-time slices, emitting progress between them.

    Returns ``(result, runtime)`` where ``result`` is bit-identical to
    ``spec.run()`` (wallclock aside — the recorded wallclock covers the
    whole sliced execution) and ``runtime`` is the plain-dict per-run
    runtime stats the result store persists alongside the cell.
    """
    if slices < 1:
        raise ValueError(f"slices must be >= 1, got {slices!r}")
    key = spec.key()
    label = spec.label()
    net = spec.scenario.build()
    duration = net.cfg.duration_s
    sim = net.sim
    t0 = time.perf_counter()
    for i in range(1, slices + 1):
        sim.run_until(min(duration, duration * i / slices))
        emit(
            RunProgress(
                key=key,
                label=label,
                sim_time_s=sim.now,
                duration_s=duration,
                events=sim.events_executed,
                wall_s=time.perf_counter() - t0,
                peak_rss_kb=peak_rss_kb(),
            )
        )
    # The horizon is already reached: run() dispatches nothing further and
    # just assembles the summary; restore the true whole-run wallclock.
    result = net.run()
    wall = time.perf_counter() - t0
    result = replace(result, wallclock_s=wall)
    final = RunProgress(
        key=key,
        label=label,
        sim_time_s=sim.now,
        duration_s=duration,
        events=sim.events_executed,
        wall_s=wall,
        peak_rss_kb=peak_rss_kb(),
        done=True,
    )
    emit(final)
    return result, runtime_stats(result)


def runtime_stats(result: "ExperimentResult") -> dict:
    """The per-run runtime stats dict the result store persists."""
    return {
        "wall_s": round(result.wallclock_s, 4),
        "events": result.events_executed,
        "events_per_sec": round(
            result.events_executed / result.wallclock_s, 1
        )
        if result.wallclock_s > 0
        else 0.0,
        "peak_rss_kb": peak_rss_kb(),
    }
