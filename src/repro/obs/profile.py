"""Kernel self-profiling: wall-clock attribution per event-handler kind.

The kernel's opt-in profiled loop (``Simulator.enable_profiling()``)
accumulates call counts and cumulative seconds per event *label* — the
``label`` every scheduler call site already supplies ("mac.access",
"phy.sig_end", "obs.sample", ...), falling back to the handler's qualified
name.  That answers the question cProfile answers per *function* at the
granularity the simulator actually thinks in — per event kind — with two
orders of magnitude less overhead, so it can stay on during real
experiments.

A :class:`ProfileReport` is the frozen, JSON-round-trippable summary; it
rides ``ExperimentResult.profile`` through the campaign store like the
energy report does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class ProfileEntry:
    """Attribution for one event-handler kind."""

    #: The event label (or handler qualname for unlabelled events).
    kind: str
    #: Events of this kind dispatched.
    calls: int
    #: Cumulative wall-clock seconds inside the handler.
    cum_s: float

    @property
    def per_call_us(self) -> float:
        """Mean handler cost [µs/event]."""
        return (self.cum_s / self.calls) * 1e6 if self.calls else 0.0


@dataclass(frozen=True)
class ProfileReport:
    """Per-kind wall-clock attribution for one run's event dispatch."""

    #: Total events dispatched under the profiled loop.
    total_events: int
    #: Total attributed wall-clock seconds (handler bodies only — loop
    #: overhead and the perf-counter reads themselves are excluded).
    attributed_s: float
    #: Entries sorted by cumulative seconds, hottest first.
    entries: tuple[ProfileEntry, ...]

    @property
    def events_per_sec(self) -> float:
        """Dispatch rate over attributed time [events/s]."""
        return self.total_events / self.attributed_s if self.attributed_s else 0.0

    @classmethod
    def from_sim(cls, sim: "Simulator") -> "ProfileReport | None":
        """Snapshot a simulator's profile accumulator (None if disabled)."""
        raw = sim.profile
        if raw is None:
            return None
        return cls.from_raw(raw)

    @classmethod
    def from_raw(cls, raw: Mapping[str, list]) -> "ProfileReport":
        """Build from the kernel's ``{kind: [calls, cum_s]}`` accumulator."""
        entries = tuple(
            sorted(
                (
                    ProfileEntry(kind=kind, calls=int(c), cum_s=float(s))
                    for kind, (c, s) in raw.items()
                ),
                key=lambda e: (-e.cum_s, e.kind),
            )
        )
        return cls(
            total_events=sum(e.calls for e in entries),
            attributed_s=sum(e.cum_s for e in entries),
            entries=entries,
        )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ProfileReport":
        """Rebuild from the JSON shape ``dataclasses.asdict`` produced."""
        return cls(
            total_events=int(payload["total_events"]),
            attributed_s=float(payload["attributed_s"]),
            entries=tuple(ProfileEntry(**e) for e in payload["entries"]),
        )

    def table(self, top: int = 20) -> str:
        """A formatted per-kind table, hottest kinds first."""
        lines = [
            f"{'event kind':<22} {'calls':>10} {'cum [s]':>9} "
            f"{'µs/call':>8} {'share':>6}"
        ]
        total = self.attributed_s or 1.0
        for entry in self.entries[:top]:
            lines.append(
                f"{entry.kind:<22} {entry.calls:>10,} {entry.cum_s:>9.3f} "
                f"{entry.per_call_us:>8.1f} {entry.cum_s / total:>6.1%}"
            )
        lines.append(
            f"{'total':<22} {self.total_events:>10,} {self.attributed_s:>9.3f} "
            f"{'':>8} {'':>6}  ({self.events_per_sec:,.0f} ev/s attributed)"
        )
        return "\n".join(lines)
