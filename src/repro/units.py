"""Unit conversions and physical constants used throughout the simulator.

All internal power book-keeping is in **watts** (linear scale) because the
SINR arithmetic (adding interference contributions) is linear.  dBm is used
only at API boundaries and in traces, via the converters here.

Times are in **seconds** (floats); data sizes in **bytes** unless a name says
otherwise; rates in **bits per second**.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Boltzmann constant [J/K] — used by the thermal noise model.
BOLTZMANN = 1.380649e-23

#: Reference temperature for thermal noise [K].
T0_KELVIN = 290.0

#: Microseconds → seconds multiplier, for readable MAC timing constants.
USEC = 1e-6

#: Milliseconds → seconds.
MSEC = 1e-3

#: One kilobit per second in bits per second.
KBPS = 1_000.0

#: One megabit per second in bits per second.
MBPS = 1_000_000.0


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts.

    >>> round(dbm_to_watts(0.0), 6)
    0.001
    >>> round(dbm_to_watts(30.0), 6)
    1.0
    """
    return 10.0 ** (dbm / 10.0) / 1000.0


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm.

    Raises :class:`ValueError` for non-positive powers (log of zero is
    undefined; a zero-power signal has no dBm representation).
    """
    if watts <= 0.0:
        raise ValueError(f"power must be positive to express in dBm, got {watts!r}")
    return 10.0 * math.log10(watts * 1000.0)


def db_to_ratio(db: float) -> float:
    """Convert a dB value to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def ratio_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises :class:`ValueError` for non-positive ratios.
    """
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive to express in dB, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def mw_to_watts(mw: float) -> float:
    """Convert milliwatts to watts."""
    return mw * 1e-3


def watts_to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts * 1e3


def wavelength(frequency_hz: float) -> float:
    """Carrier wavelength [m] for a given frequency [Hz].

    >>> round(wavelength(914e6), 4)
    0.328
    """
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return SPEED_OF_LIGHT / frequency_hz


def bits(nbytes: int) -> int:
    """Size in bits of ``nbytes`` bytes."""
    if nbytes < 0:
        raise ValueError(f"byte count must be non-negative, got {nbytes!r}")
    return nbytes * 8


def tx_duration(nbytes: int, bitrate_bps: float) -> float:
    """Airtime [s] to serialise ``nbytes`` at ``bitrate_bps`` (payload only;
    PHY preamble is added by :class:`repro.phy.frame.PhyFrame`)."""
    if bitrate_bps <= 0.0:
        raise ValueError(f"bitrate must be positive, got {bitrate_bps!r}")
    return bits(nbytes) / bitrate_bps


def thermal_noise_watts(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise floor k·T0·B [W], optionally raised by a noise figure."""
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz!r}")
    return BOLTZMANN * T0_KELVIN * bandwidth_hz * db_to_ratio(noise_figure_db)
