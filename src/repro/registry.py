"""Uniform component registries: named factories with typed param schemas.

Scenario construction is assembled from pluggable components, one per
**slot**: ``mac``, ``mobility``, ``placement``, ``traffic``, ``routing``,
``propagation``, ``energy``, ``observability``, ``faults``, ``reception``
and ``engine``.  Each slot
owns a
:class:`Registry`; each
registered
component is a :class:`ComponentEntry` — a named factory plus a declared
:class:`Param` schema, so a scenario can be described entirely as data
(component name + params per slot, see :class:`~repro.scenariospec.ScenarioSpec`)
and validated *before* anything is built.

Registering a new component requires **zero builder changes**::

    from repro.registry import Param, registry

    @registry("placement").register(
        "ring",
        params=(Param("radius_m", float, 300.0),),
        doc="nodes equally spaced on a circle",
    )
    def _ring(ctx, radius_m):
        ...
        return positions

The per-slot factory contracts (what ``ctx`` provides and what the factory
must return) are documented in :mod:`repro.builder`; the built-in components
live in :mod:`repro.components` and are imported lazily on first registry
access, so importing this module alone stays cheap and cycle-free.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

#: Sentinel for parameters without a default (the caller must supply them).
REQUIRED = object()

#: Slot names, in the order scenario construction consumes them.
SLOTS: tuple[str, ...] = (
    "mac",
    "placement",
    "mobility",
    "routing",
    "traffic",
    "propagation",
    "energy",
    "observability",
    "faults",
    "reception",
    "engine",
)


class RegistryError(ValueError):
    """Base class for registry lookup/validation failures."""


class UnknownComponentError(RegistryError, KeyError):
    """A component name that is not registered in the slot's registry."""

    def __init__(self, slot: str, name: str, available: tuple[str, ...]) -> None:
        self.slot = slot
        self.name = name
        self.available = available
        super().__init__(
            f"unknown {slot} component {name!r}; "
            f"available: {', '.join(available) or '(none)'}"
        )


class ParamError(RegistryError):
    """A component param that is unknown, missing or of the wrong type."""

    def __init__(self, slot: str, component: str, key: str, message: str) -> None:
        self.slot = slot
        self.component = component
        self.key = key
        super().__init__(f"{slot}:{component} param {key!r}: {message}")


@dataclass(frozen=True)
class Param:
    """One declared component parameter.

    ``type`` is checked with ``isinstance`` (an ``int`` is accepted where a
    ``float`` is declared, mirroring Python numerics); ``default`` of
    :data:`REQUIRED` makes the parameter mandatory.
    """

    name: str
    type: type | tuple[type, ...] = float
    default: Any = REQUIRED

    @property
    def required(self) -> bool:
        """Whether the caller must supply this parameter."""
        return self.default is REQUIRED

    def describe(self) -> str:
        """Human-readable ``name:type[=default]`` rendering."""
        tname = (
            "|".join(t.__name__ for t in self.type)
            if isinstance(self.type, tuple)
            else self.type.__name__
        )
        if self.required:
            return f"{self.name}:{tname} (required)"
        return f"{self.name}:{tname}={self.default!r}"

    def check(self, value: Any) -> Any:
        """Validate ``value`` against the declared type; returns it unchanged."""
        expected = self.type if isinstance(self.type, tuple) else (self.type,)
        # Accept ints where floats are declared, but never bools-as-ints.
        if float in expected and isinstance(value, int) and not isinstance(value, bool):
            return value
        if isinstance(value, bool) and bool not in expected:
            raise TypeError
        if not isinstance(value, expected):
            raise TypeError
        return value


@dataclass(frozen=True)
class ComponentEntry:
    """A registered component: named factory + param schema + metadata."""

    slot: str
    name: str
    factory: Callable[..., Any]
    params: tuple[Param, ...] = ()
    doc: str = ""
    #: Structural flags the builder consults (e.g. ``control_channel`` on the
    #: pcmac MAC, ``immobile`` on static mobility).
    meta: Mapping[str, Any] = field(default_factory=dict)

    def validate(self, overrides: Mapping[str, Any] | None) -> dict[str, Any]:
        """Merge ``overrides`` over declared defaults, checking names/types.

        Raises :class:`ParamError` naming the offending key on any unknown
        parameter, missing required parameter, or type mismatch.
        """
        declared = {p.name: p for p in self.params}
        overrides = dict(overrides or {})
        for key in overrides:
            if key not in declared:
                raise ParamError(
                    self.slot,
                    self.name,
                    key,
                    f"unknown parameter; declared: "
                    f"{', '.join(sorted(declared)) or '(none)'}",
                )
        out: dict[str, Any] = {}
        for param in self.params:
            if param.name in overrides:
                try:
                    out[param.name] = param.check(overrides[param.name])
                except TypeError:
                    expected = (
                        "|".join(t.__name__ for t in param.type)
                        if isinstance(param.type, tuple)
                        else param.type.__name__
                    )
                    raise ParamError(
                        self.slot,
                        self.name,
                        param.name,
                        f"expected {expected}, got {overrides[param.name]!r}",
                    ) from None
            elif param.required:
                raise ParamError(
                    self.slot, self.name, param.name, "required parameter missing"
                )
            else:
                out[param.name] = param.default
        return out

    def signature(self) -> str:
        """Param schema rendering for ``repro list`` (empty string if none)."""
        return ", ".join(p.describe() for p in self.params)


class Registry:
    """Named components for one scenario slot."""

    def __init__(self, slot: str) -> None:
        self.slot = slot
        self._entries: dict[str, ComponentEntry] = {}

    def register(
        self,
        name: str,
        *,
        params: tuple[Param, ...] = (),
        doc: str = "",
        meta: Mapping[str, Any] | None = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering ``factory`` under ``name``.

        Duplicate names are rejected — a silently replaced component would
        change content-hashed scenario semantics out from under stored
        results.
        """

        def _decorate(factory: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._entries:
                raise RegistryError(
                    f"{self.slot} component {name!r} is already registered"
                )
            resolved_doc = doc
            if not resolved_doc and factory.__doc__:
                resolved_doc = factory.__doc__.strip().splitlines()[0]
            self._entries[name] = ComponentEntry(
                slot=self.slot,
                name=name,
                factory=factory,
                params=tuple(params),
                doc=resolved_doc,
                meta=dict(meta or {}),
            )
            return factory

        return _decorate

    def get(self, name: str) -> ComponentEntry:
        """Look up a component; unknown names list what *is* available."""
        _ensure_builtins()
        entry = self._entries.get(name)
        if entry is None:
            raise UnknownComponentError(self.slot, name, self.names())
        return entry

    def names(self) -> tuple[str, ...]:
        """Registered component names, sorted."""
        _ensure_builtins()
        return tuple(sorted(self._entries))

    def entries(self) -> Iterator[ComponentEntry]:
        """Registered entries in name order."""
        _ensure_builtins()
        for name in sorted(self._entries):
            yield self._entries[name]

    def __contains__(self, name: str) -> bool:
        _ensure_builtins()
        return name in self._entries


#: The scenario-slot registries, keyed by slot name.
_REGISTRIES: dict[str, Registry] = {slot: Registry(slot) for slot in SLOTS}

_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import :mod:`repro.components` once, populating the registries.

    A failed import rolls the registries back to their pre-import state
    (preserving components users registered before the failure) and resets
    the flag, so the *real* ``ImportError`` resurfaces on every retry
    instead of later lookups degenerating into misleading "unknown
    component" errors.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    snapshots = {slot: dict(reg._entries) for slot, reg in _REGISTRIES.items()}
    try:
        importlib.import_module("repro.components")
    except BaseException:
        _builtins_loaded = False
        for slot, reg in _REGISTRIES.items():
            reg._entries.clear()
            reg._entries.update(snapshots[slot])
        raise


def registry(slot: str) -> Registry:
    """The :class:`Registry` for ``slot`` (one of :data:`SLOTS`)."""
    try:
        return _REGISTRIES[slot]
    except KeyError:
        raise RegistryError(
            f"unknown slot {slot!r}; slots: {', '.join(SLOTS)}"
        ) from None


def all_registries() -> dict[str, Registry]:
    """Every slot registry, in :data:`SLOTS` order (builtins loaded)."""
    _ensure_builtins()
    return dict(_REGISTRIES)
