"""The simulation kernel: a clock plus an event queue.

Design notes
------------
The kernel is intentionally tiny — all protocol behaviour lives in the PHY /
MAC / routing layers, which interact with the kernel only through
:meth:`Simulator.schedule` / :meth:`Simulator.cancel` and :attr:`Simulator.now`.
That keeps the hot loop (pop event, advance clock, call handler) free of
indirection, which matters: a full paper-scale run executes tens of millions
of events.  Profiling (per the optimisation guide: measure first) showed the
heap operations and handler dispatch dominate, so the hot loop is *fused*:
:meth:`~repro.sim.event.EventQueue.pop_next` folds the historical
``peek_time()`` + ``pop()`` pair into a single heap traversal, and
:meth:`schedule` / :meth:`schedule_in` inline the queue push (one C-level
heap operation per event instead of two Python frames).

The pre-fusion loop survives as ``Simulator(fused=False)`` — the reference
kernel.  Both dispatch the exact same event sequence (same ``(time,
priority, seq)`` total order, same ``events_executed``); the equivalence
suite in ``tests/sim/test_kernel_equivalence.py`` runs whole paper scenarios
through both and compares results field by field.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable

from repro.sim.event import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        fused: use the fused single-traversal hot loop (default).  The
            reference loop (``fused=False``) peeks then pops — bit-identical
            dispatch, kept as the oracle for equivalence tests.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
        >>> sim.run_until(10.0)
        >>> fired
        [1.5]
    """

    __slots__ = (
        "_queue",
        "_now",
        "_running",
        "_events_executed",
        "_stopped",
        "_fused",
        "_profile",
    )

    def __init__(self, *, fused: bool = True) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._fused = fused
        self._profile: dict[str, list] | None = None

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time [s]."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events dispatched so far (for perf accounting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    @property
    def fused(self) -> bool:
        """Whether :meth:`run_until` uses the fused hot loop."""
        return self._fused

    # -- self-profiling ------------------------------------------------------

    def enable_profiling(self) -> None:
        """Switch :meth:`run_until` to the self-timing loop.

        Accumulates wall-clock time per event kind (the schedule ``label``,
        falling back to the handler's qualified name).  Dispatch order and
        ``events_executed`` are identical to the normal loops — only wall
        time changes, so profiling must stay off for benchmark runs.
        """
        if self._profile is None:
            self._profile = {}

    @property
    def profile(self) -> dict[str, list] | None:
        """Raw ``{kind: [calls, cumulative_seconds]}`` data, or None if off."""
        return self._profile

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        time: float,
        fn: Callable[..., Any],
        priority: int = 0,
        label: str = "",
        args: tuple | None = None,
    ) -> Event:
        """Schedule ``fn`` at absolute simulation time ``time``.

        Scheduling in the past raises :class:`SimulationError`; scheduling at
        exactly ``now`` is allowed and fires after the current handler returns.
        ``args`` are passed positionally to ``fn`` at fire time — high-rate
        callers use this instead of allocating a closure per event.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} < now={self._now!r} ({label or fn!r})"
            )
        # Manually inlined EventQueue.push — this is the single hottest
        # allocation site in a run (every signal edge and timer lands here).
        q = self._queue
        seq = q._seq
        ev = Event(time, priority, seq, fn, label, q, args)
        heappush(q._heap, (time, priority, seq, ev))
        q._seq = seq + 1
        q._live += 1
        return ev

    def schedule_in(
        self,
        delay: float,
        fn: Callable[..., Any],
        priority: int = 0,
        label: str = "",
        args: tuple | None = None,
    ) -> Event:
        """Schedule ``fn`` after a non-negative relative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r} for {label or fn!r}")
        q = self._queue
        seq = q._seq
        ev = Event(self._now + delay, priority, seq, fn, label, q, args)
        heappush(q._heap, (ev.time, priority, seq, ev))
        q._seq = seq + 1
        q._live += 1
        return ev

    def cancel(self, event: Event | None) -> None:
        """Cancel a previously scheduled event (no-op on None / already done).

        Equivalent to ``event.cancel()`` — queue bookkeeping lives on the
        event itself, so cancelling directly is equally safe.
        """
        if event is not None:
            event.cancel()

    # -- execution -----------------------------------------------------------

    def run_until(self, end_time: float) -> None:
        """Dispatch events in order until the queue drains or ``end_time``.

        The clock is left at ``end_time`` (or the last event time if the
        queue drained earlier and that is later — it cannot be).
        """
        if self._running:
            raise SimulationError("run_until re-entered — simulator is not reentrant")
        self._running = True
        self._stopped = False
        try:
            if self._profile is not None:
                self._run_profiled(end_time)
            elif self._fused:
                self._run_fused(end_time)
            else:
                self._run_reference(end_time)
            if not self._stopped and self._now < end_time:
                # A drained queue still advances the clock to the horizon; a
                # stop() leaves it at the stopping event's time.
                self._now = end_time
        finally:
            self._running = False

    def _run_fused(self, end_time: float) -> None:
        """Hot loop: the ``pop_next`` traversal inlined over the raw heap.

        Semantically identical to calling :meth:`EventQueue.pop_next` per
        event; inlining removes one Python frame per event, which profiling
        showed is measurable at paper scale.  Queue bookkeeping (``_live`` /
        ``_dead``) is maintained exactly as ``pop_next`` does.
        """
        queue = self._queue
        heap = queue._heap
        while heap:
            entry = heap[0]
            ev = entry[3]
            if ev.fn is None:
                heappop(heap)
                queue._dead -= 1
                continue
            if entry[0] > end_time:
                break
            heappop(heap)
            queue._live -= 1
            self._now = ev.time
            fn = ev.fn
            ev.fn = None  # mark consumed; cheap guard against re-fire
            self._events_executed += 1
            args = ev.args
            if args is None:
                fn()
            else:
                fn(*args)
            if self._stopped:
                break

    def _run_profiled(self, end_time: float) -> None:
        """The fused loop with a ``perf_counter`` pair around each dispatch.

        Same event order as :meth:`_run_fused`; attribution is keyed by the
        schedule ``label`` (empty labels fall back to the handler's
        ``__qualname__``).  The timing overhead is real wall time — results
        feed :class:`repro.obs.profile.ProfileReport`, never benchmarks.
        """
        queue = self._queue
        heap = queue._heap
        profile = self._profile
        assert profile is not None
        while heap:
            entry = heap[0]
            ev = entry[3]
            if ev.fn is None:
                heappop(heap)
                queue._dead -= 1
                continue
            if entry[0] > end_time:
                break
            heappop(heap)
            queue._live -= 1
            self._now = ev.time
            fn = ev.fn
            ev.fn = None
            self._events_executed += 1
            kind = ev.label or getattr(fn, "__qualname__", "") or type(fn).__name__
            args = ev.args
            t0 = perf_counter()
            if args is None:
                fn()
            else:
                fn(*args)
            dt = perf_counter() - t0
            cell = profile.get(kind)
            if cell is None:
                profile[kind] = [1, dt]
            else:
                cell[0] += 1
                cell[1] += dt
            if self._stopped:
                break

    def _run_reference(self, end_time: float) -> None:
        """The pre-fusion loop (peek, compare, pop) — the dispatch oracle."""
        queue = self._queue
        while True:
            if self._stopped:
                break
            nxt = queue.peek_time()
            if nxt is None or nxt > end_time:
                break
            ev = queue.pop()
            assert ev is not None and ev.fn is not None
            self._now = ev.time
            fn = ev.fn
            ev.fn = None
            self._events_executed += 1
            args = ev.args
            if args is None:
                fn()
            else:
                fn(*args)

    def step(self) -> bool:
        """Dispatch exactly one event.  Returns False if the queue is empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        assert ev.fn is not None
        self._now = ev.time
        fn = ev.fn
        ev.fn = None
        self._events_executed += 1
        args = ev.args
        if args is None:
            fn()
        else:
            fn(*args)
        return True

    def stop(self) -> None:
        """Request that :meth:`run_until` return after the current handler."""
        self._stopped = True
