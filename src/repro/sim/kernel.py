"""The simulation kernel: a clock plus an event queue.

Design notes
------------
The kernel is intentionally tiny — all protocol behaviour lives in the PHY /
MAC / routing layers, which interact with the kernel only through
:meth:`Simulator.schedule` / :meth:`Simulator.cancel` and :attr:`Simulator.now`.
That keeps the hot loop (pop event, advance clock, call handler) free of
indirection, which matters: a full paper-scale run executes tens of millions
of events.  Profiling (per the optimisation guide: measure first) showed the
heap operations and handler dispatch dominate; both are already minimal here.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.event import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
        >>> sim.run_until(10.0)
        >>> fired
        [1.5]
    """

    __slots__ = ("_queue", "_now", "_running", "_events_executed", "_stopped")

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._events_executed = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time [s]."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events dispatched so far (for perf accounting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        time: float,
        fn: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``fn`` at absolute simulation time ``time``.

        Scheduling in the past raises :class:`SimulationError`; scheduling at
        exactly ``now`` is allowed and fires after the current handler returns.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} < now={self._now!r} ({label or fn!r})"
            )
        return self._queue.push(time, fn, priority=priority, label=label)

    def schedule_in(
        self,
        delay: float,
        fn: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``fn`` after a non-negative relative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r} for {label or fn!r}")
        return self._queue.push(self._now + delay, fn, priority=priority, label=label)

    def cancel(self, event: Event | None) -> None:
        """Cancel a previously scheduled event (no-op on None / already done)."""
        if event is not None and not event.cancelled:
            event.cancel()
            self._queue.note_cancelled()

    # -- execution -----------------------------------------------------------

    def run_until(self, end_time: float) -> None:
        """Dispatch events in order until the queue drains or ``end_time``.

        The clock is left at ``end_time`` (or the last event time if the
        queue drained earlier and that is later — it cannot be).
        """
        if self._running:
            raise SimulationError("run_until re-entered — simulator is not reentrant")
        self._running = True
        self._stopped = False
        queue = self._queue
        try:
            while True:
                if self._stopped:
                    break
                nxt = queue.peek_time()
                if nxt is None or nxt > end_time:
                    break
                ev = queue.pop()
                assert ev is not None and ev.fn is not None
                self._now = ev.time
                fn = ev.fn
                ev.fn = None  # mark consumed; cheap guard against re-fire
                self._events_executed += 1
                fn()
            if not self._stopped and self._now < end_time:
                # A drained queue still advances the clock to the horizon; a
                # stop() leaves it at the stopping event's time.
                self._now = end_time
        finally:
            self._running = False

    def step(self) -> bool:
        """Dispatch exactly one event.  Returns False if the queue is empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        assert ev.fn is not None
        self._now = ev.time
        fn = ev.fn
        ev.fn = None
        self._events_executed += 1
        fn()
        return True

    def stop(self) -> None:
        """Request that :meth:`run_until` return after the current handler."""
        self._stopped = True
