"""The simulation kernel: a clock plus an event queue.

Design notes
------------
The kernel is intentionally tiny — all protocol behaviour lives in the PHY /
MAC / routing layers, which interact with the kernel only through
:meth:`Simulator.schedule` / :meth:`Simulator.cancel` and :attr:`Simulator.now`.
That keeps the hot loop (pop event, advance clock, call handler) free of
indirection, which matters: a full paper-scale run executes tens of millions
of events.  Profiling (per the optimisation guide: measure first) showed the
heap operations and handler dispatch dominate, so the hot loop is *fused*:
:meth:`~repro.sim.event.EventQueue.pop_next` folds the historical
``peek_time()`` + ``pop()`` pair into a single heap traversal, and
:meth:`schedule` / :meth:`schedule_in` inline the queue push (one C-level
heap operation per event instead of two Python frames).

The pre-fusion loop survives as ``Simulator(fused=False)`` — the reference
kernel.  Both dispatch the exact same event sequence (same ``(time,
priority, seq)`` total order, same ``events_executed``); the equivalence
suite in ``tests/sim/test_kernel_equivalence.py`` runs whole paper scenarios
through both and compares results field by field.

Mega-scale knobs (all default off, all dispatch-order preserving):

* ``scheduler="calendar"`` swaps the binary heap for
  :class:`~repro.sim.event.CalendarQueue` — O(1) pushes into future time
  buckets instead of O(log n) sifts, with the heap kept as the oracle.
* ``pool_events=True`` recycles fired *transient* events (those scheduled
  with ``transient=True`` — sites that keep no reference and never cancel)
  through a bounded freelist, killing the per-event allocation that
  dominates dense fan-outs.  Non-transient events are never pooled, so a
  held reference can never be mutated under its owner.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable

from repro.sim.event import CalendarQueue, Event, EventQueue

#: Freelist cap for ``pool_events=True`` — bounds idle memory while easily
#: covering the in-flight transient population of a dense fan-out burst.
_FREELIST_MAX = 4096


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        fused: use the fused single-traversal hot loop (default).  The
            reference loop (``fused=False``) peeks then pops — bit-identical
            dispatch, kept as the oracle for equivalence tests.
        scheduler: ``"heap"`` (default, the oracle) or ``"calendar"`` for
            the bucketed :class:`~repro.sim.event.CalendarQueue`.  Both
            dispatch the identical event sequence.
        pool_events: recycle fired transient events through a bounded
            freelist (see the module docstring).  Off by default.
        bucket_width_s: calendar bucket width [s]; ignored for the heap.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
        >>> sim.run_until(10.0)
        >>> fired
        [1.5]
    """

    __slots__ = (
        "_queue",
        "_now",
        "_running",
        "_events_executed",
        "_stopped",
        "_fused",
        "_profile",
        "_heap_sched",
        "_free",
    )

    def __init__(
        self,
        *,
        fused: bool = True,
        scheduler: str = "heap",
        pool_events: bool = False,
        bucket_width_s: float = 1e-3,
    ) -> None:
        if scheduler == "heap":
            self._queue: EventQueue | CalendarQueue = EventQueue()
        elif scheduler == "calendar":
            self._queue = CalendarQueue(bucket_width_s)
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r} (expected 'heap' or 'calendar')"
            )
        self._heap_sched = scheduler == "heap"
        self._free: list[Event] | None = [] if pool_events else None
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._fused = fused
        self._profile: dict[str, list] | None = None

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time [s]."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events dispatched so far (for perf accounting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    @property
    def fused(self) -> bool:
        """Whether :meth:`run_until` uses the fused hot loop."""
        return self._fused

    @property
    def scheduler(self) -> str:
        """The active queue implementation: ``"heap"`` or ``"calendar"``."""
        return "heap" if self._heap_sched else "calendar"

    @property
    def pool_events(self) -> bool:
        """Whether fired transient events are recycled through the freelist."""
        return self._free is not None

    # -- self-profiling ------------------------------------------------------

    def enable_profiling(self) -> None:
        """Switch :meth:`run_until` to the self-timing loop.

        Accumulates wall-clock time per event kind (the schedule ``label``,
        falling back to the handler's qualified name).  Dispatch order and
        ``events_executed`` are identical to the normal loops — only wall
        time changes, so profiling must stay off for benchmark runs.
        """
        if self._profile is None:
            self._profile = {}

    @property
    def profile(self) -> dict[str, list] | None:
        """Raw ``{kind: [calls, cumulative_seconds]}`` data, or None if off."""
        return self._profile

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        time: float,
        fn: Callable[..., Any],
        priority: int = 0,
        label: str = "",
        args: tuple | None = None,
        transient: bool = False,
    ) -> Event:
        """Schedule ``fn`` at absolute simulation time ``time``.

        Scheduling in the past raises :class:`SimulationError`; scheduling at
        exactly ``now`` is allowed and fires after the current handler returns.
        ``args`` are passed positionally to ``fn`` at fire time — high-rate
        callers use this instead of allocating a closure per event.
        ``transient=True`` is the caller's promise that it keeps no reference
        to the returned event and will never cancel it, which makes the event
        eligible for freelist recycling under ``pool_events=True``.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} < now={self._now!r} ({label or fn!r})"
            )
        # Manually inlined EventQueue.push — this is the single hottest
        # allocation site in a run (every signal edge and timer lands here).
        q = self._queue
        seq = q._seq
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.priority = priority
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.label = label
            ev.transient = transient
        else:
            ev = Event(time, priority, seq, fn, label, q, args, transient)
        if self._heap_sched:
            heappush(q._heap, (time, priority, seq, ev))
        else:
            # Manually inlined CalendarQueue._insert (same rationale as the
            # heappush above — one Python frame per event is measurable).
            entry = (time, priority, seq, ev)
            b = int(time // q._width)
            active = q._active
            if active is not None and b == q._active_id:
                insort(active, entry, lo=q._pos)
            else:
                bucket = q._buckets.get(b)
                if bucket is None:
                    q._buckets[b] = [entry]
                    heappush(q._bucket_heap, b)
                else:
                    bucket.append(entry)
        q._seq = seq + 1
        q._live += 1
        return ev

    def schedule_in(
        self,
        delay: float,
        fn: Callable[..., Any],
        priority: int = 0,
        label: str = "",
        args: tuple | None = None,
        transient: bool = False,
    ) -> Event:
        """Schedule ``fn`` after a non-negative relative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r} for {label or fn!r}")
        q = self._queue
        seq = q._seq
        time = self._now + delay
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.priority = priority
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev.label = label
            ev.transient = transient
        else:
            ev = Event(time, priority, seq, fn, label, q, args, transient)
        if self._heap_sched:
            heappush(q._heap, (time, priority, seq, ev))
        else:
            entry = (time, priority, seq, ev)
            b = int(time // q._width)
            active = q._active
            if active is not None and b == q._active_id:
                insort(active, entry, lo=q._pos)
            else:
                bucket = q._buckets.get(b)
                if bucket is None:
                    q._buckets[b] = [entry]
                    heappush(q._bucket_heap, b)
                else:
                    bucket.append(entry)
        q._seq = seq + 1
        q._live += 1
        return ev

    def cancel(self, event: Event | None) -> None:
        """Cancel a previously scheduled event (no-op on None / already done).

        Equivalent to ``event.cancel()`` — queue bookkeeping lives on the
        event itself, so cancelling directly is equally safe.
        """
        if event is not None:
            event.cancel()

    # -- execution -----------------------------------------------------------

    def run_until(self, end_time: float) -> None:
        """Dispatch events in order until the queue drains or ``end_time``.

        The clock is left at ``end_time`` (or the last event time if the
        queue drained earlier and that is later — it cannot be).
        """
        if self._running:
            raise SimulationError("run_until re-entered — simulator is not reentrant")
        self._running = True
        self._stopped = False
        try:
            if self._profile is not None:
                self._run_profiled(end_time)
            elif not self._fused:
                self._run_reference(end_time)
            elif self._heap_sched:
                self._run_fused(end_time)
            else:
                self._run_calendar(end_time)
            if not self._stopped and self._now < end_time:
                # A drained queue still advances the clock to the horizon; a
                # stop() leaves it at the stopping event's time.
                self._now = end_time
        finally:
            self._running = False

    def _run_fused(self, end_time: float) -> None:
        """Hot loop: the ``pop_next`` traversal inlined over the raw heap.

        Semantically identical to calling :meth:`EventQueue.pop_next` per
        event; inlining removes one Python frame per event, which profiling
        showed is measurable at paper scale.  Queue bookkeeping (``_live`` /
        ``_dead``) is maintained exactly as ``pop_next`` does.
        """
        queue = self._queue
        heap = queue._heap
        free = self._free
        while heap:
            entry = heap[0]
            ev = entry[3]
            if ev.fn is None:
                heappop(heap)
                queue._dead -= 1
                continue
            if entry[0] > end_time:
                break
            heappop(heap)
            queue._live -= 1
            self._now = ev.time
            fn = ev.fn
            ev.fn = None  # mark consumed; cheap guard against re-fire
            self._events_executed += 1
            args = ev.args
            if args is None:
                fn()
            else:
                fn(*args)
            if free is not None and ev.transient and len(free) < _FREELIST_MAX:
                ev.args = None  # drop arg refs so pooled events pin nothing
                free.append(ev)
            if self._stopped:
                break

    def _run_calendar(self, end_time: float) -> None:
        """Hot loop: calendar-bucket consumption inlined into the kernel.

        Semantically identical to calling :meth:`CalendarQueue.pop_next`
        per event (one ``_peek_entry`` + ``pop_next`` Python frame pair
        saved per dispatch); all queue bookkeeping (``_active`` / ``_pos`` /
        ``_live`` / ``_dead``) is maintained exactly as those methods do.
        Handlers may push (including into the active bucket via ``insort``,
        or into an *earlier* bucket), cancel, or trigger compaction while
        running, so after every dispatch the loop re-validates the active
        bucket identity and the bucket-heap front before continuing.
        """
        queue = self._queue
        free = self._free
        buckets = queue._buckets
        bucket_heap = queue._bucket_heap
        while True:
            active = queue._active
            if active is None:
                # Activate the earliest non-stale bucket (ids left behind by
                # compaction are skipped lazily, exactly as _peek_entry does).
                bucket = None
                while bucket_heap:
                    bid = bucket_heap[0]
                    bucket = buckets.pop(bid, None)
                    heappop(bucket_heap)
                    if bucket is not None:
                        break
                if bucket is None:
                    return
                bucket.sort()  # unique seq: Event objects are never compared
                queue._active = bucket
                queue._active_id = bid
                queue._pos = 0
                continue
            if bucket_heap and bucket_heap[0] < queue._active_id:
                # A push landed in an earlier bucket (possible after a prior
                # run_until stopped short): park the unconsumed tail.
                tail = active[queue._pos:]
                if tail:
                    buckets[queue._active_id] = tail
                    heappush(bucket_heap, queue._active_id)
                queue._active = None
                continue
            pos = queue._pos
            while True:
                if pos >= len(active):
                    queue._active = None
                    queue._pos = 0
                    break
                entry = active[pos]
                ev = entry[3]
                if ev.fn is None:
                    pos += 1
                    queue._pos = pos
                    queue._dead -= 1
                    continue
                if entry[0] > end_time:
                    queue._pos = pos
                    return
                pos += 1
                queue._pos = pos
                queue._live -= 1
                self._now = ev.time
                fn = ev.fn
                ev.fn = None  # mark consumed; cheap guard against re-fire
                self._events_executed += 1
                args = ev.args
                if args is None:
                    fn()
                else:
                    fn(*args)
                if free is not None and ev.transient and len(free) < _FREELIST_MAX:
                    ev.args = None  # drop arg refs so pooled events pin nothing
                    free.append(ev)
                if self._stopped:
                    return
                if queue._active is not active:
                    # Compaction rebuilt (or drained) the active bucket.
                    break
                if bucket_heap and bucket_heap[0] < queue._active_id:
                    break  # an earlier bucket appeared: outer loop parks us
                pos = queue._pos  # resync past same-bucket insorts

    def _run_profiled(self, end_time: float) -> None:
        """The fused loop with a ``perf_counter`` pair around each dispatch.

        Same event order as :meth:`_run_fused`; attribution is keyed by the
        schedule ``label`` (empty labels fall back to the handler's
        ``__qualname__``).  The timing overhead is real wall time — results
        feed :class:`repro.obs.profile.ProfileReport`, never benchmarks.
        Uses the generic ``pop_next`` so it works under either scheduler.
        """
        queue = self._queue
        profile = self._profile
        assert profile is not None
        pop_next = queue.pop_next
        while True:
            ev = pop_next(end_time)
            if ev is None:
                break
            self._now = ev.time
            fn = ev.fn
            ev.fn = None
            self._events_executed += 1
            kind = ev.label or getattr(fn, "__qualname__", "") or type(fn).__name__
            args = ev.args
            t0 = perf_counter()
            if args is None:
                fn()
            else:
                fn(*args)
            dt = perf_counter() - t0
            cell = profile.get(kind)
            if cell is None:
                profile[kind] = [1, dt]
            else:
                cell[0] += 1
                cell[1] += dt
            if self._stopped:
                break

    def _run_reference(self, end_time: float) -> None:
        """The pre-fusion loop (peek, compare, pop) — the dispatch oracle."""
        queue = self._queue
        while True:
            if self._stopped:
                break
            nxt = queue.peek_time()
            if nxt is None or nxt > end_time:
                break
            ev = queue.pop()
            assert ev is not None and ev.fn is not None
            self._now = ev.time
            fn = ev.fn
            ev.fn = None
            self._events_executed += 1
            args = ev.args
            if args is None:
                fn()
            else:
                fn(*args)

    def step(self) -> bool:
        """Dispatch exactly one event.  Returns False if the queue is empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        assert ev.fn is not None
        self._now = ev.time
        fn = ev.fn
        ev.fn = None
        self._events_executed += 1
        args = ev.args
        if args is None:
            fn()
        else:
            fn(*args)
        return True

    def stop(self) -> None:
        """Request that :meth:`run_until` return after the current handler."""
        self._stopped = True
