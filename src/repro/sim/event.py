"""Event primitives for the discrete-event kernel.

Events are ordered by ``(time, priority, sequence)``.  The monotonically
increasing sequence number guarantees a *stable, deterministic* ordering for
events scheduled at the same instant — a property the MAC layer relies on
(e.g. a carrier-sense BUSY edge must be observed before a same-instant
backoff expiry fires in scheduling order).

Performance note: the heap stores plain ``(time, priority, seq, event)``
tuples so ordering comparisons run entirely in C tuple comparison — the
unique ``seq`` guarantees the :class:`Event` object itself is never compared.
Profiling showed a dataclass ``__lt__`` here cost ~40 % of total runtime on
paper-scale runs.

Cancellation is O(1) lazy: a cancelled event stays in the heap but is skipped
when popped.  This is the standard approach for simulators with heavy timer
churn (every MAC frame sets and usually cancels a timeout).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires [s].
        priority: tie-break rank; lower fires first at equal time.
        seq: insertion sequence number (assigned by the queue).
        fn: zero-argument callable invoked when the event fires.
        label: human-readable tag for traces and debugging.
    """

    __slots__ = ("time", "priority", "seq", "fn", "label")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[[], Any] | None,
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.label = label

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (or the event fired)."""
        return self.fn is None

    def cancel(self) -> None:
        """Cancel the event; it is skipped when its heap entry surfaces."""
        self.fn = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"Event(t={self.time!r}, {self.label or 'anon'}, {state})"


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._live = 0

    def push(
        self,
        time: float,
        fn: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``fn`` at absolute time ``time`` and return the event."""
        ev = Event(time, priority, self._seq, fn, label)
        heapq.heappush(self._heap, (time, priority, self._seq, ev))
        self._seq += 1
        self._live += 1
        return ev

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty.

        Cancelled events are discarded transparently.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[3]
            if ev.fn is None:
                continue
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0][3].fn is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def note_cancelled(self) -> None:
        """Bookkeeping hook: a previously pushed event was cancelled."""
        self._live -= 1

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
