"""Event primitives for the discrete-event kernel.

Events are ordered by ``(time, priority, sequence)``.  The monotonically
increasing sequence number guarantees a *stable, deterministic* ordering for
events scheduled at the same instant — a property the MAC layer relies on
(e.g. a carrier-sense BUSY edge must be observed before a same-instant
backoff expiry fires in scheduling order).

Performance note: the heap stores plain ``(time, priority, seq, event)``
tuples so ordering comparisons run entirely in C tuple comparison — the
unique ``seq`` guarantees the :class:`Event` object itself is never compared.
Profiling showed a dataclass ``__lt__`` here cost ~40 % of total runtime on
paper-scale runs.

Cancellation is O(1) lazy: a cancelled event stays in the heap but is skipped
when popped.  This is the standard approach for simulators with heavy timer
churn (every MAC frame sets and usually cancels a timeout).  Two refinements
keep that approach honest on paper-scale runs:

* **Self-contained bookkeeping.**  :meth:`Event.cancel` notifies its owning
  queue directly, so ``len(queue)`` stays correct no matter which layer
  cancels (historically, cancelling an event without also calling the
  queue's ``note_cancelled`` silently corrupted the live count).
* **Periodic compaction.**  Lazily-cancelled entries are purged wholesale
  (filter + ``heapify``) once they outnumber live entries, so pop cost
  cannot degrade on long runs where timers are set and cancelled millions
  of times.  Compaction never reorders dispatch: ``(time, priority, seq)``
  is a total order, so any heap arrangement pops the same sequence.

Two queue implementations share that contract:

* :class:`EventQueue` — the binary heap.  O(log n) push/pop, no tuning
  knobs, the **dispatch-order oracle** for everything else.
* :class:`CalendarQueue` — a bucketed (calendar) queue: events hash into
  fixed-width time buckets; only the active bucket is kept sorted, so a
  push into a future bucket is an O(1) append and the sort cost is paid
  once per bucket instead of per event.  Dispatch order is *identical* to
  the heap's (``tests/sim/test_kernel_equivalence.py`` drives both through
  arbitrary schedule/cancel/compaction interleavings), selected with
  ``Simulator(scheduler="calendar")``.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable

#: Compaction trigger: purge cancelled heap entries once at least this many
#: have accumulated *and* they outnumber the live entries.  The floor keeps
#: tiny queues from compacting constantly; the ratio bounds amortised cost.
COMPACT_MIN_DEAD = 512


class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires [s].
        priority: tie-break rank; lower fires first at equal time.
        seq: insertion sequence number (assigned by the queue).
        fn: callable invoked when the event fires.
        args: positional arguments for ``fn`` (None = call with none).
            Passing the target method plus its arguments avoids allocating a
            per-event closure or wrapper object on high-rate schedule sites
            (each signal edge of every frame lands here).
        label: human-readable tag for traces and debugging.
        transient: the scheduling site promises it keeps **no reference** to
            the event and will never cancel it (e.g. the channel's signal
            edges).  Only such events may be recycled through the kernel's
            freelist (``Simulator(pool_events=True)``) after they fire —
            recycling an event someone still holds would let a stale
            ``cancel()`` kill an unrelated reused event.
    """

    __slots__ = (
        "time", "priority", "seq", "fn", "args", "label", "transient", "_queue"
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any] | None,
        label: str = "",
        queue: "EventQueue | None" = None,
        args: tuple | None = None,
        transient: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.label = label
        self.transient = transient
        self._queue = queue

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (or the event fired)."""
        return self.fn is None

    def cancel(self) -> None:
        """Cancel the event; it is skipped when its heap entry surfaces.

        Bookkeeping is self-contained: the owning queue's live count is
        updated here, exactly once, so calling ``cancel`` directly (instead
        of through :meth:`Simulator.cancel`) cannot corrupt ``len(queue)``.
        Cancelling an already-fired or already-cancelled event is a no-op.
        """
        if self.fn is None:
            return
        self.fn = None
        q = self._queue
        if q is not None:
            q._note_dead()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"Event(t={self.time!r}, {self.label or 'anon'}, {state})"


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._live = 0
        #: Cancelled entries still sitting in the heap (compaction trigger).
        self._dead = 0

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        *,
        priority: int = 0,
        label: str = "",
        args: tuple | None = None,
    ) -> Event:
        """Schedule ``fn`` at absolute time ``time`` and return the event."""
        seq = self._seq
        ev = Event(time, priority, seq, fn, label, self, args)
        heapq.heappush(self._heap, (time, priority, seq, ev))
        self._seq = seq + 1
        self._live += 1
        return ev

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty.

        Cancelled events are discarded transparently.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[3]
            if ev.fn is None:
                self._dead -= 1
                continue
            self._live -= 1
            return ev
        return None

    def pop_next(self, end_time: float) -> Event | None:
        """Fused peek+pop: the earliest live event with ``time <= end_time``.

        Returns None when the queue is drained or the next live event lies
        beyond ``end_time`` (which is then left in the heap).  One heap
        traversal replaces the historical ``peek_time()`` + ``pop()`` pair
        on the kernel's hot loop; cancelled entries encountered on the way
        are discarded exactly as :meth:`pop` would.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            ev = entry[3]
            if ev.fn is None:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            if entry[0] > end_time:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0][3].fn is None:
            heapq.heappop(heap)
            self._dead -= 1
        return heap[0][0] if heap else None

    def compact(self) -> None:
        """Purge every cancelled entry from the heap in one pass.

        O(n) filter + heapify.  Dispatch order is unaffected: entries are
        totally ordered by ``(time, priority, seq)``, so rebuilding the heap
        cannot change the pop sequence.
        """
        if self._dead == 0:
            return
        heap = self._heap
        # In-place (slice assignment, not rebinding): the kernel's hot loop
        # holds a direct reference to the heap list across handler calls,
        # and a handler's cancellations can trigger compaction mid-run.
        heap[:] = [entry for entry in heap if entry[3].fn is not None]
        heapq.heapify(heap)
        self._dead = 0

    def _note_dead(self) -> None:
        """Internal: an in-heap event was cancelled (called by Event.cancel)."""
        self._live -= 1
        self._dead += 1
        if self._dead >= COMPACT_MIN_DEAD and self._dead > len(self._heap) // 2:
            self.compact()

    def note_cancelled(self) -> None:
        """Deprecated no-op kept for API compatibility.

        Cancellation bookkeeping is now self-contained in
        :meth:`Event.cancel`; calling this as well must not double-count,
        so it does nothing.
        """

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class CalendarQueue:
    """A bucketed (calendar) queue dispatching in the heap's exact order.

    Events hash into fixed-width time buckets (``int(time // width)``).
    Future buckets are plain unsorted lists — a push is an amortised O(1)
    dict lookup + append — and a small heap of bucket ids tracks which
    bucket is next.  Only when a bucket becomes *active* (its turn to
    dispatch) is it sorted, once; same-instant pushes into the active
    bucket use ``bisect.insort`` over its unconsumed tail.  For workloads
    dominated by short-horizon timers (MAC backoffs, signal edges) this
    trades the heap's per-event O(log n) sift for one timsort per bucket
    over mostly-ordered data.

    Dispatch order is **identical** to :class:`EventQueue`: entries carry
    the same ``(time, priority, seq)`` total order, buckets partition time
    into disjoint ranges (so cross-bucket order is time order), and the
    active bucket's tail is kept sorted under insertion.  One subtlety: a
    ``run_until`` can stop *before* the active bucket's times (the clock
    parks at the horizon), so a later push may land in an **earlier**
    bucket; :meth:`_peek_entry` detects that and re-parks the active bucket
    behind it.  The equivalence suite drives both queues through arbitrary
    schedule/cancel/compaction interleavings.

    Cancellation and compaction follow the heap's contract: lazy O(1)
    cancel via :meth:`Event.cancel`, dead entries skipped on pop and purged
    wholesale once they outnumber live ones.
    """

    __slots__ = (
        "_width", "_buckets", "_bucket_heap", "_active", "_active_id",
        "_pos", "_seq", "_live", "_dead",
    )

    def __init__(self, bucket_width_s: float = 1e-3) -> None:
        if bucket_width_s <= 0:
            raise ValueError(f"bucket_width_s must be positive, got {bucket_width_s!r}")
        self._width = bucket_width_s
        #: Future buckets: bucket id -> unsorted entry list.
        self._buckets: dict[int, list[tuple[float, int, int, Event]]] = {}
        #: Min-heap of pending bucket ids (may hold stale ids of buckets
        #: emptied by compaction; activation skips those lazily).
        self._bucket_heap: list[int] = []
        #: The bucket currently being consumed: sorted, with ``_pos``
        #: marking the boundary between dispatched and pending entries.
        self._active: list[tuple[float, int, int, Event]] | None = None
        self._active_id = 0
        self._pos = 0
        self._seq = 0
        self._live = 0
        self._dead = 0

    @property
    def bucket_width_s(self) -> float:
        """Bucket width [s] — the calendar's only tuning knob."""
        return self._width

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        *,
        priority: int = 0,
        label: str = "",
        args: tuple | None = None,
    ) -> Event:
        """Schedule ``fn`` at absolute time ``time`` and return the event."""
        seq = self._seq
        ev = Event(time, priority, seq, fn, label, self, args)
        self._insert(time, priority, seq, ev)
        self._seq = seq + 1
        self._live += 1
        return ev

    def _insert(self, time: float, priority: int, seq: int, ev: Event) -> None:
        """Internal: file an entry into its bucket (kernel fast path hook)."""
        entry = (time, priority, seq, ev)
        b = int(time // self._width)
        active = self._active
        if active is not None and b == self._active_id:
            # Everything before _pos is already dispatched, so the tail
            # stays sorted and the new entry can never land in the past.
            insort(active, entry, lo=self._pos)
            return
        bucket = self._buckets.get(b)
        if bucket is None:
            self._buckets[b] = [entry]
            heapq.heappush(self._bucket_heap, b)
        else:
            bucket.append(entry)

    def _peek_entry(self) -> tuple[float, int, int, Event] | None:
        """The next live entry, activating/parking buckets as needed."""
        while True:
            active = self._active
            if active is None:
                bucket_heap = self._bucket_heap
                bucket = None
                while bucket_heap:
                    bid = bucket_heap[0]
                    bucket = self._buckets.pop(bid, None)
                    heapq.heappop(bucket_heap)
                    if bucket is not None:
                        break
                if bucket is None:
                    return None
                bucket.sort()  # unique seq: Event objects are never compared
                self._active = bucket
                self._active_id = bid
                self._pos = 0
                continue
            bucket_heap = self._bucket_heap
            if bucket_heap and bucket_heap[0] < self._active_id:
                # A push since the last pop landed in an earlier bucket
                # (possible after run_until stopped short of this bucket's
                # times).  Park the unconsumed tail and switch.
                tail = active[self._pos:]
                if tail:
                    self._buckets[self._active_id] = tail
                    heapq.heappush(bucket_heap, self._active_id)
                self._active = None
                continue
            pos = self._pos
            n = len(active)
            while pos < n and active[pos][3].fn is None:
                pos += 1
                self._dead -= 1
            self._pos = pos
            if pos == n:
                self._active = None
                continue
            return active[pos]

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty."""
        entry = self._peek_entry()
        if entry is None:
            return None
        self._pos += 1
        self._live -= 1
        return entry[3]

    def pop_next(self, end_time: float) -> Event | None:
        """Fused peek+pop: the earliest live event with ``time <= end_time``.

        Mirrors :meth:`EventQueue.pop_next` — returns None when drained or
        when the next live event lies beyond ``end_time`` (left in place).
        """
        entry = self._peek_entry()
        if entry is None or entry[0] > end_time:
            return None
        self._pos += 1
        self._live -= 1
        return entry[3]

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        entry = self._peek_entry()
        return entry[0] if entry is not None else None

    def compact(self) -> None:
        """Purge every cancelled entry (and the consumed active prefix).

        Empty buckets are dropped from the dict; their ids go stale in the
        bucket heap and are skipped lazily at activation.  Order is
        unaffected: filtering preserves each bucket's relative order and
        the active tail stays sorted.
        """
        if self._dead == 0:
            return
        buckets = self._buckets
        for bid in list(buckets):
            entries = [e for e in buckets[bid] if e[3].fn is not None]
            if entries:
                buckets[bid] = entries
            else:
                del buckets[bid]
        active = self._active
        if active is not None:
            tail = [e for e in active[self._pos:] if e[3].fn is not None]
            if tail:
                self._active = tail
                self._pos = 0
            else:
                self._active = None
        self._dead = 0

    def _note_dead(self) -> None:
        """Internal: an in-queue event was cancelled (called by Event.cancel)."""
        self._live -= 1
        self._dead += 1
        if self._dead >= COMPACT_MIN_DEAD and self._dead > self._live:
            self.compact()

    def note_cancelled(self) -> None:
        """Deprecated no-op kept for API compatibility (see EventQueue)."""

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
