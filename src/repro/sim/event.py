"""Event primitives for the discrete-event kernel.

Events are ordered by ``(time, priority, sequence)``.  The monotonically
increasing sequence number guarantees a *stable, deterministic* ordering for
events scheduled at the same instant — a property the MAC layer relies on
(e.g. a carrier-sense BUSY edge must be observed before a same-instant
backoff expiry fires in scheduling order).

Performance note: the heap stores plain ``(time, priority, seq, event)``
tuples so ordering comparisons run entirely in C tuple comparison — the
unique ``seq`` guarantees the :class:`Event` object itself is never compared.
Profiling showed a dataclass ``__lt__`` here cost ~40 % of total runtime on
paper-scale runs.

Cancellation is O(1) lazy: a cancelled event stays in the heap but is skipped
when popped.  This is the standard approach for simulators with heavy timer
churn (every MAC frame sets and usually cancels a timeout).  Two refinements
keep that approach honest on paper-scale runs:

* **Self-contained bookkeeping.**  :meth:`Event.cancel` notifies its owning
  queue directly, so ``len(queue)`` stays correct no matter which layer
  cancels (historically, cancelling an event without also calling the
  queue's ``note_cancelled`` silently corrupted the live count).
* **Periodic compaction.**  Lazily-cancelled entries are purged wholesale
  (filter + ``heapify``) once they outnumber live entries, so pop cost
  cannot degrade on long runs where timers are set and cancelled millions
  of times.  Compaction never reorders dispatch: ``(time, priority, seq)``
  is a total order, so any heap arrangement pops the same sequence.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: Compaction trigger: purge cancelled heap entries once at least this many
#: have accumulated *and* they outnumber the live entries.  The floor keeps
#: tiny queues from compacting constantly; the ratio bounds amortised cost.
COMPACT_MIN_DEAD = 512


class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires [s].
        priority: tie-break rank; lower fires first at equal time.
        seq: insertion sequence number (assigned by the queue).
        fn: callable invoked when the event fires.
        args: positional arguments for ``fn`` (None = call with none).
            Passing the target method plus its arguments avoids allocating a
            per-event closure or wrapper object on high-rate schedule sites
            (each signal edge of every frame lands here).
        label: human-readable tag for traces and debugging.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "label", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any] | None,
        label: str = "",
        queue: "EventQueue | None" = None,
        args: tuple | None = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.label = label
        self._queue = queue

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called (or the event fired)."""
        return self.fn is None

    def cancel(self) -> None:
        """Cancel the event; it is skipped when its heap entry surfaces.

        Bookkeeping is self-contained: the owning queue's live count is
        updated here, exactly once, so calling ``cancel`` directly (instead
        of through :meth:`Simulator.cancel`) cannot corrupt ``len(queue)``.
        Cancelling an already-fired or already-cancelled event is a no-op.
        """
        if self.fn is None:
            return
        self.fn = None
        q = self._queue
        if q is not None:
            q._note_dead()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"Event(t={self.time!r}, {self.label or 'anon'}, {state})"


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._live = 0
        #: Cancelled entries still sitting in the heap (compaction trigger).
        self._dead = 0

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        *,
        priority: int = 0,
        label: str = "",
        args: tuple | None = None,
    ) -> Event:
        """Schedule ``fn`` at absolute time ``time`` and return the event."""
        seq = self._seq
        ev = Event(time, priority, seq, fn, label, self, args)
        heapq.heappush(self._heap, (time, priority, seq, ev))
        self._seq = seq + 1
        self._live += 1
        return ev

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty.

        Cancelled events are discarded transparently.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[3]
            if ev.fn is None:
                self._dead -= 1
                continue
            self._live -= 1
            return ev
        return None

    def pop_next(self, end_time: float) -> Event | None:
        """Fused peek+pop: the earliest live event with ``time <= end_time``.

        Returns None when the queue is drained or the next live event lies
        beyond ``end_time`` (which is then left in the heap).  One heap
        traversal replaces the historical ``peek_time()`` + ``pop()`` pair
        on the kernel's hot loop; cancelled entries encountered on the way
        are discarded exactly as :meth:`pop` would.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            ev = entry[3]
            if ev.fn is None:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            if entry[0] > end_time:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0][3].fn is None:
            heapq.heappop(heap)
            self._dead -= 1
        return heap[0][0] if heap else None

    def compact(self) -> None:
        """Purge every cancelled entry from the heap in one pass.

        O(n) filter + heapify.  Dispatch order is unaffected: entries are
        totally ordered by ``(time, priority, seq)``, so rebuilding the heap
        cannot change the pop sequence.
        """
        if self._dead == 0:
            return
        heap = self._heap
        # In-place (slice assignment, not rebinding): the kernel's hot loop
        # holds a direct reference to the heap list across handler calls,
        # and a handler's cancellations can trigger compaction mid-run.
        heap[:] = [entry for entry in heap if entry[3].fn is not None]
        heapq.heapify(heap)
        self._dead = 0

    def _note_dead(self) -> None:
        """Internal: an in-heap event was cancelled (called by Event.cancel)."""
        self._live -= 1
        self._dead += 1
        if self._dead >= COMPACT_MIN_DEAD and self._dead > len(self._heap) // 2:
            self.compact()

    def note_cancelled(self) -> None:
        """Deprecated no-op kept for API compatibility.

        Cancellation bookkeeping is now self-contained in
        :meth:`Event.cancel`; calling this as well must not double-count,
        so it does nothing.
        """

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
