"""Named, reproducible random-number streams.

Every stochastic component (mobility, traffic, MAC backoff per node, AODV
jitter per node) draws from its *own* named stream derived from the scenario
seed with :class:`numpy.random.SeedSequence`.  This gives two properties the
experiments need:

* **Reproducibility** — the same scenario seed always yields the same run.
* **Variance isolation** — changing, say, the MAC protocol does not perturb
  the mobility pattern, because each consumer has an independent stream
  (common random numbers across protocol arms, the standard variance
  reduction for simulation comparisons).
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Factory of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed!r}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root scenario seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The stream key is derived from a CRC of the name so that stream
        identity depends only on the *name*, never on creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw from the named stream."""
        return float(self.stream(name).uniform(low, high))

    def randint(self, name: str, low: int, high: int) -> int:
        """One integer draw in [low, high] inclusive from the named stream."""
        return int(self.stream(name).integers(low, high, endpoint=True))
