"""Structured tracing and counters (the NS-2 trace-file analogue).

A :class:`Tracer` collects :class:`TraceRecord` tuples and integer counters.
Tracing is opt-in per category so that paper-scale runs pay nothing for
categories nobody subscribed to.

Fast-path contract
------------------
Counters are **always exact** (every emission counts, stored or not);
records are **opt-in** per category and capped by ``max_records`` — once the
cap is hit further records are dropped *and counted per category*
(``channel.dropped``, aggregated as ``tracer.dropped`` / the
``trace.dropped`` counter) so truncated runs are visible in analysis.  The
invariant, per *stored* category (disabled categories count exactly but
never store, sink, or drop)::

    channel.count == records stored + records sunk + channel.dropped

``trace.dropped`` is a *derived* counter — it cannot be emitted or handled
directly (:meth:`Tracer.handle` rejects it), which is what keeps the
aggregate single-sourced instead of double-counted when a caller both
bumps a handle and reads the fold-in.

Streaming sinks
---------------
Setting :attr:`Tracer.sink` (see :mod:`repro.obs.sinks`) streams records
out instead of accumulating them in memory: a sink that consumes a record
bypasses the ring buffer *and* the ``max_records`` cap entirely, so long
runs export every record rather than truncating.  A sink may decline a
record (per-category filters); declined records fall back to the in-memory
ring under the usual cap.

Hot emit sites do not call :meth:`Tracer.emit` (whose ``**detail`` kwargs
dict would be allocated even for disabled categories).  They pre-bind an
interned per-category :class:`TraceChannel` handle once, at construction::

    h = tracer.handle("phy.tx")      # interned: one handle per category
    ...
    h.count += 1                     # hot path: a single integer add
    if h.store:                      # only now is the detail dict built
        h.record(now, node, frame=fid, power_w=p)

``h.count`` *is* the category counter (pre-bound, no dict lookup), and the
guard means the kwargs dict is never allocated when the category is not
stored.  :meth:`Tracer.emit` remains as the convenient cold-path API and is
exactly equivalent.

Categories used by the stack:

====================  =====================================================
``phy.tx``            a radio began transmitting a frame
``phy.rx_ok``         a frame was received and decoded
``phy.rx_err``        a frame reception failed (collision / weak signal)
``phy.cs``            carrier sense busy/idle edges
``mac.send``          MAC accepted a packet for transmission
``mac.drop``          MAC dropped a packet (retries exhausted / queue full)
``mac.handshake``     RTS/CTS/DATA/ACK milestones
``mac.defer``         deferrals (NAV, EIFS, PCMAC admission)
``pcmac.pcn``         power-control notifications sent/heard
``net.route``         routing events (RREQ/RREP/RERR, route add/del)
``app.tx/app.rx``     application-layer send/deliver
``fault.crash``       the fault injector crashed a node
``fault.recover``     a crashed node rejoined the network
``fault.noise``       a noise-floor burst opened/closed at a radio
``fault.link``        a per-link gain fade opened/closed at a receiver
``fault.corrupt``     a corruption window edge, or an injected frame loss
``trace.dropped``     records lost to the ``max_records`` cap (counter only)
====================  =====================================================
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs imports sim)
    from repro.obs.sinks import TraceSink


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace line: time, category, node, and free-form detail fields."""

    time: float
    category: str
    node: int
    detail: tuple[tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        """Fetch a detail field by name."""
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict[str, Any]:
        """The record as a plain dict (for analysis / DataFrame-ish use)."""
        out: dict[str, Any] = {
            "time": self.time,
            "category": self.category,
            "node": self.node,
        }
        out.update(self.detail)
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kv = " ".join(f"{k}={v}" for k, v in self.detail)
        return f"{self.time:.6f} {self.category} n{self.node} {kv}"


class TraceChannel:
    """Interned per-category handle: pre-bound counter + store flag.

    Attributes:
        category: the category this handle counts.
        count: exact number of emissions (hot sites increment directly).
        store: True when records of this category are collected — the
            call-site guard that keeps disabled categories allocation-free.
        dropped: records of this category lost to the ``max_records`` cap.
    """

    __slots__ = ("category", "count", "store", "dropped", "_tracer")

    def __init__(self, tracer: "Tracer", category: str, store: bool) -> None:
        self.category = category
        self.count = 0
        self.store = store
        self.dropped = 0
        self._tracer = tracer

    def record(self, time: float, node: int, **detail: Any) -> None:
        """Store one record (call only under an ``if handle.store`` guard).

        Does *not* bump :attr:`count` — the caller already did.  A sink, if
        attached, gets first refusal and is never capped; otherwise records
        beyond the tracer's ``max_records`` cap are dropped and counted in
        :attr:`dropped` so truncation is never silent.
        """
        tracer = self._tracer
        rec = TraceRecord(time, self.category, node, tuple(detail.items()))
        sink = tracer.sink
        if sink is not None and sink.write(rec):
            return
        records = tracer.records
        if len(records) < tracer.max_records:
            records.append(rec)
        else:
            self.dropped += 1

    def emit(self, time: float, node: int, **detail: Any) -> None:
        """Count, and store a record when :attr:`store` is set."""
        self.count += 1
        if self.store:
            self.record(time, node, **detail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stored" if self.store else "counted"
        return f"TraceChannel({self.category!r}, n={self.count}, {state})"


class Tracer:
    """Collects trace records for enabled categories plus global counters."""

    __slots__ = (
        "enabled_categories",
        "records",
        "max_records",
        "sink",
        "_handles",
        "_extra",
    )

    #: Default hard cap on stored records to bound memory in long runs.
    DEFAULT_MAX_RECORDS = 2_000_000

    #: The derived truncation counter — not a real category (no handle).
    DROPPED = "trace.dropped"

    def __init__(
        self,
        enabled_categories: Iterable[str] | None = None,
        max_records: int = DEFAULT_MAX_RECORDS,
        sink: "TraceSink | None" = None,
    ) -> None:
        self.enabled_categories: set[str] = set(enabled_categories or ())
        self.records: list[TraceRecord] = []
        self.max_records = max_records
        #: Optional streaming sink (duck-typed: ``write(record) -> bool``);
        #: sunk records bypass the in-memory ring and its cap entirely.
        self.sink = sink
        self._handles: dict[str, TraceChannel] = {}
        self._extra: Counter = Counter()

    # ------------------------------------------------------------- categories

    def handle(self, category: str) -> TraceChannel:
        """The interned :class:`TraceChannel` for ``category``.

        Hot emit sites call this once at construction and keep the handle;
        repeated calls return the same object, so counts aggregate globally.
        ``"trace.dropped"`` is rejected: it is derived from the per-channel
        drop counters, and handing out a handle for it would let a caller
        double-count drops (bump the handle *and* rely on the fold-in).
        """
        h = self._handles.get(category)
        if h is None:
            if category == Tracer.DROPPED:
                raise ValueError(
                    f"{Tracer.DROPPED!r} is a derived counter (aggregated "
                    "from per-channel drops) — it cannot be emitted directly"
                )
            h = TraceChannel(self, category, category in self.enabled_categories)
            self._handles[category] = h
        return h

    def enable(self, *categories: str) -> None:
        """Enable record collection for the given categories."""
        self.enabled_categories.update(categories)
        for cat in categories:
            self.handle(cat).store = True

    def enabled(self, category: str) -> bool:
        """True if records of ``category`` are being stored."""
        return category in self.enabled_categories

    # ------------------------------------------------------------------- emit

    def emit(self, time: float, category: str, node: int, **detail: Any) -> None:
        """Store a record if its category is enabled (counters always bump).

        Cold-path convenience; hot sites pre-bind :meth:`handle` instead
        (see the module docstring for the pattern).
        """
        h = self._handles.get(category)
        if h is None:
            h = self.handle(category)
        h.count += 1
        if h.store:
            h.record(time, node, **detail)

    def count(self, category: str) -> int:
        """Number of emissions of ``category`` (whether or not stored).

        ``"trace.dropped"`` is the records lost to the ``max_records`` cap
        (aggregated across channels), matching :attr:`counters` — counted
        in exactly one place, so it can never be double-counted.
        """
        h = self._handles.get(category)
        total = (h.count if h is not None else 0) + self._extra[category]
        if category == Tracer.DROPPED:
            total += self.dropped
        return total

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named counter without a record."""
        self._extra[counter] += amount

    @property
    def counters(self) -> Counter:
        """All counters merged into one :class:`~collections.Counter`.

        Built on access (analysis-time, not hot-path): per-category handle
        counts, :meth:`bump` counters, and ``trace.dropped`` when any
        records were lost to the cap.  The returned Counter is a snapshot —
        mutating it does not affect the tracer; write through :meth:`bump`
        (or a handle's ``count``) instead.
        """
        merged = Counter()
        for cat, h in self._handles.items():
            if h.count:
                merged[cat] += h.count
        merged.update(self._extra)
        dropped = self.dropped
        if dropped:
            merged[Tracer.DROPPED] += dropped
        return merged

    @property
    def dropped(self) -> int:
        """Records lost to the ``max_records`` cap, across all categories.

        Read-only aggregate of the per-channel :attr:`TraceChannel.dropped`
        counters — the single source of truth for truncation accounting.
        """
        return sum(h.dropped for h in self._handles.values())

    @property
    def truncated(self) -> bool:
        """True when at least one record was dropped at the cap."""
        return self.dropped > 0

    # ------------------------------------------------------------------ query

    def query(
        self, category: str | None = None, node: int | None = None
    ) -> Iterable[TraceRecord]:
        """Iterate stored records filtered by category and/or node."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            yield rec

    def clear(self) -> None:
        """Drop all stored records and counters (the sink is untouched)."""
        self.records.clear()
        self._extra.clear()
        for h in self._handles.values():
            h.count = 0
            h.dropped = 0


#: A process-wide tracer that ignores everything; used as the default so the
#: hot path never needs a None check.
NULL_TRACER = Tracer()
