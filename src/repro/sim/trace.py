"""Structured tracing and counters (the NS-2 trace-file analogue).

A :class:`Tracer` collects :class:`TraceRecord` tuples and integer counters.
Tracing is opt-in per category so that paper-scale runs pay nothing for
categories nobody subscribed to: ``tracer.enabled(cat)`` is a set lookup and
the record is only constructed when enabled.

Categories used by the stack:

====================  =====================================================
``phy.tx``            a radio began transmitting a frame
``phy.rx_ok``         a frame was received and decoded
``phy.rx_err``        a frame reception failed (collision / weak signal)
``phy.cs``            carrier sense busy/idle edges
``mac.send``          MAC accepted a packet for transmission
``mac.drop``          MAC dropped a packet (retries exhausted / queue full)
``mac.handshake``     RTS/CTS/DATA/ACK milestones
``mac.defer``         deferrals (NAV, EIFS, PCMAC admission)
``pcmac.pcn``         power-control notifications sent/heard
``net.route``         routing events (RREQ/RREP/RERR, route add/del)
``app.tx/app.rx``     application-layer send/deliver
====================  =====================================================
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace line: time, category, node, and free-form detail fields."""

    time: float
    category: str
    node: int
    detail: tuple[tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        """Fetch a detail field by name."""
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict[str, Any]:
        """The record as a plain dict (for analysis / DataFrame-ish use)."""
        out: dict[str, Any] = {
            "time": self.time,
            "category": self.category,
            "node": self.node,
        }
        out.update(self.detail)
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kv = " ".join(f"{k}={v}" for k, v in self.detail)
        return f"{self.time:.6f} {self.category} n{self.node} {kv}"


@dataclass
class Tracer:
    """Collects trace records for enabled categories plus global counters."""

    enabled_categories: set[str] = field(default_factory=set)
    records: list[TraceRecord] = field(default_factory=list)
    counters: Counter = field(default_factory=Counter)
    #: Hard cap on stored records to bound memory in long runs.
    max_records: int = 2_000_000

    def enable(self, *categories: str) -> None:
        """Enable record collection for the given categories."""
        self.enabled_categories.update(categories)

    def enabled(self, category: str) -> bool:
        """True if records of ``category`` are being stored."""
        return category in self.enabled_categories

    def emit(self, time: float, category: str, node: int, **detail: Any) -> None:
        """Store a record if its category is enabled (counters always bump)."""
        self.counters[category] += 1
        if category in self.enabled_categories and len(self.records) < self.max_records:
            self.records.append(
                TraceRecord(time, category, node, tuple(detail.items()))
            )

    def count(self, category: str) -> int:
        """Number of emissions of ``category`` (whether or not stored)."""
        return self.counters[category]

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named counter without a record."""
        self.counters[counter] += amount

    def query(
        self, category: str | None = None, node: int | None = None
    ) -> Iterable[TraceRecord]:
        """Iterate stored records filtered by category and/or node."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            yield rec

    def clear(self) -> None:
        """Drop all stored records and counters."""
        self.records.clear()
        self.counters.clear()


#: A process-wide tracer that ignores everything; used as the default so the
#: hot path never needs a None check.
NULL_TRACER = Tracer()
