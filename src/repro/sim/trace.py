"""Structured tracing and counters (the NS-2 trace-file analogue).

A :class:`Tracer` collects :class:`TraceRecord` tuples and integer counters.
Tracing is opt-in per category so that paper-scale runs pay nothing for
categories nobody subscribed to.

Fast-path contract
------------------
Counters are **always exact** (every emission counts, stored or not);
records are **opt-in** per category and capped by ``max_records`` — once the
cap is hit further records are dropped *and counted* (``tracer.dropped`` /
the ``trace.dropped`` counter) so truncated runs are visible in analysis.

Hot emit sites do not call :meth:`Tracer.emit` (whose ``**detail`` kwargs
dict would be allocated even for disabled categories).  They pre-bind an
interned per-category :class:`TraceChannel` handle once, at construction::

    h = tracer.handle("phy.tx")      # interned: one handle per category
    ...
    h.count += 1                     # hot path: a single integer add
    if h.store:                      # only now is the detail dict built
        h.record(now, node, frame=fid, power_w=p)

``h.count`` *is* the category counter (pre-bound, no dict lookup), and the
guard means the kwargs dict is never allocated when the category is not
stored.  :meth:`Tracer.emit` remains as the convenient cold-path API and is
exactly equivalent.

Categories used by the stack:

====================  =====================================================
``phy.tx``            a radio began transmitting a frame
``phy.rx_ok``         a frame was received and decoded
``phy.rx_err``        a frame reception failed (collision / weak signal)
``phy.cs``            carrier sense busy/idle edges
``mac.send``          MAC accepted a packet for transmission
``mac.drop``          MAC dropped a packet (retries exhausted / queue full)
``mac.handshake``     RTS/CTS/DATA/ACK milestones
``mac.defer``         deferrals (NAV, EIFS, PCMAC admission)
``pcmac.pcn``         power-control notifications sent/heard
``net.route``         routing events (RREQ/RREP/RERR, route add/del)
``app.tx/app.rx``     application-layer send/deliver
``trace.dropped``     records lost to the ``max_records`` cap (counter only)
====================  =====================================================
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace line: time, category, node, and free-form detail fields."""

    time: float
    category: str
    node: int
    detail: tuple[tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        """Fetch a detail field by name."""
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict[str, Any]:
        """The record as a plain dict (for analysis / DataFrame-ish use)."""
        out: dict[str, Any] = {
            "time": self.time,
            "category": self.category,
            "node": self.node,
        }
        out.update(self.detail)
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kv = " ".join(f"{k}={v}" for k, v in self.detail)
        return f"{self.time:.6f} {self.category} n{self.node} {kv}"


class TraceChannel:
    """Interned per-category handle: pre-bound counter + store flag.

    Attributes:
        category: the category this handle counts.
        count: exact number of emissions (hot sites increment directly).
        store: True when records of this category are collected — the
            call-site guard that keeps disabled categories allocation-free.
    """

    __slots__ = ("category", "count", "store", "_tracer")

    def __init__(self, tracer: "Tracer", category: str, store: bool) -> None:
        self.category = category
        self.count = 0
        self.store = store
        self._tracer = tracer

    def record(self, time: float, node: int, **detail: Any) -> None:
        """Store one record (call only under an ``if handle.store`` guard).

        Does *not* bump :attr:`count` — the caller already did.  Records
        beyond the tracer's ``max_records`` cap are dropped and counted in
        ``tracer.dropped`` so truncation is never silent.
        """
        tracer = self._tracer
        records = tracer.records
        if len(records) < tracer.max_records:
            records.append(
                TraceRecord(time, self.category, node, tuple(detail.items()))
            )
        else:
            tracer.dropped += 1

    def emit(self, time: float, node: int, **detail: Any) -> None:
        """Count, and store a record when :attr:`store` is set."""
        self.count += 1
        if self.store:
            self.record(time, node, **detail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stored" if self.store else "counted"
        return f"TraceChannel({self.category!r}, n={self.count}, {state})"


class Tracer:
    """Collects trace records for enabled categories plus global counters."""

    __slots__ = (
        "enabled_categories",
        "records",
        "max_records",
        "dropped",
        "_handles",
        "_extra",
    )

    #: Default hard cap on stored records to bound memory in long runs.
    DEFAULT_MAX_RECORDS = 2_000_000

    def __init__(
        self,
        enabled_categories: Iterable[str] | None = None,
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> None:
        self.enabled_categories: set[str] = set(enabled_categories or ())
        self.records: list[TraceRecord] = []
        self.max_records = max_records
        #: Records lost to the ``max_records`` cap (0 = nothing truncated).
        self.dropped = 0
        self._handles: dict[str, TraceChannel] = {}
        self._extra: Counter = Counter()

    # ------------------------------------------------------------- categories

    def handle(self, category: str) -> TraceChannel:
        """The interned :class:`TraceChannel` for ``category``.

        Hot emit sites call this once at construction and keep the handle;
        repeated calls return the same object, so counts aggregate globally.
        """
        h = self._handles.get(category)
        if h is None:
            h = TraceChannel(self, category, category in self.enabled_categories)
            self._handles[category] = h
        return h

    def enable(self, *categories: str) -> None:
        """Enable record collection for the given categories."""
        self.enabled_categories.update(categories)
        for cat in categories:
            self.handle(cat).store = True

    def enabled(self, category: str) -> bool:
        """True if records of ``category`` are being stored."""
        return category in self.enabled_categories

    # ------------------------------------------------------------------- emit

    def emit(self, time: float, category: str, node: int, **detail: Any) -> None:
        """Store a record if its category is enabled (counters always bump).

        Cold-path convenience; hot sites pre-bind :meth:`handle` instead
        (see the module docstring for the pattern).
        """
        h = self._handles.get(category)
        if h is None:
            h = self.handle(category)
        h.count += 1
        if h.store:
            h.record(time, node, **detail)

    def count(self, category: str) -> int:
        """Number of emissions of ``category`` (whether or not stored).

        ``"trace.dropped"`` additionally includes records lost to the
        ``max_records`` cap, matching :attr:`counters`.
        """
        h = self._handles.get(category)
        total = (h.count if h is not None else 0) + self._extra[category]
        if category == "trace.dropped":
            total += self.dropped
        return total

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named counter without a record."""
        self._extra[counter] += amount

    @property
    def counters(self) -> Counter:
        """All counters merged into one :class:`~collections.Counter`.

        Built on access (analysis-time, not hot-path): per-category handle
        counts, :meth:`bump` counters, and ``trace.dropped`` when any
        records were lost to the cap.  The returned Counter is a snapshot —
        mutating it does not affect the tracer; write through :meth:`bump`
        (or a handle's ``count``) instead.
        """
        merged = Counter()
        for cat, h in self._handles.items():
            if h.count:
                merged[cat] += h.count
        merged.update(self._extra)
        if self.dropped:
            merged["trace.dropped"] += self.dropped
        return merged

    @property
    def truncated(self) -> bool:
        """True when at least one record was dropped at the cap."""
        return self.dropped > 0

    # ------------------------------------------------------------------ query

    def query(
        self, category: str | None = None, node: int | None = None
    ) -> Iterable[TraceRecord]:
        """Iterate stored records filtered by category and/or node."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            yield rec

    def clear(self) -> None:
        """Drop all stored records and counters."""
        self.records.clear()
        self.dropped = 0
        self._extra.clear()
        for h in self._handles.values():
            h.count = 0


#: A process-wide tracer that ignores everything; used as the default so the
#: hot path never needs a None check.
NULL_TRACER = Tracer()
