"""Timer and periodic-task helpers built on the kernel.

The MAC layer manages most of its timers inline (the pattern there is
set-and-usually-cancel, cheapest done directly against the kernel), but
application and routing layers use these wrappers for clarity.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.event import Event
from repro.sim.kernel import Simulator


class Timer:
    """A restartable one-shot timer.

    ``start`` (re)arms the timer; a running timer is cancelled first, so a
    Timer can be safely re-armed from any state.
    """

    __slots__ = ("_sim", "_fn", "_event", "label")

    def __init__(self, sim: Simulator, fn: Callable[[], Any], label: str = "") -> None:
        self._sim = sim
        self._fn = fn
        self._event: Event | None = None
        self.label = label

    @property
    def running(self) -> bool:
        """True while armed and not yet fired/cancelled."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> float | None:
        """Absolute expiry time, or None if not running."""
        return self._event.time if self.running else None

    def start(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule_in(delay, self._fire, label=self.label)

    def cancel(self) -> None:
        """Disarm without firing; safe when not running."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._fn()


class PeriodicTask:
    """Invoke a callback at a fixed period until stopped.

    The first invocation happens ``offset`` seconds after :meth:`start`
    (default: one full period).
    """

    __slots__ = ("_sim", "_fn", "_period", "_event", "label")

    def __init__(
        self,
        sim: Simulator,
        fn: Callable[[], Any],
        period: float,
        label: str = "",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self._sim = sim
        self._fn = fn
        self._period = period
        self._event: Event | None = None
        self.label = label

    @property
    def running(self) -> bool:
        """True while the task is scheduled."""
        return self._event is not None and not self._event.cancelled

    def start(self, offset: float | None = None) -> None:
        """Begin periodic invocation; ``offset`` defaults to one period."""
        self.stop()
        delay = self._period if offset is None else offset
        self._event = self._sim.schedule_in(delay, self._tick, label=self.label)

    def stop(self) -> None:
        """Stop invoking; safe when not running."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _tick(self) -> None:
        self._event = self._sim.schedule_in(self._period, self._tick, label=self.label)
        self._fn()
