"""Discrete-event simulation kernel.

This subpackage is the NS-2 substitute: a deterministic, binary-heap based
event scheduler (:class:`~repro.sim.kernel.Simulator`), named reproducible
random streams (:class:`~repro.sim.rng.RngRegistry`), structured tracing
(:mod:`repro.sim.trace`) and timer/periodic-task helpers
(:mod:`repro.sim.process`).
"""

from repro.sim.event import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTask, Timer
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "EventQueue",
    "PeriodicTask",
    "RngRegistry",
    "Simulator",
    "Timer",
    "TraceRecord",
    "Tracer",
]
