"""Deterministic fault injection: node churn, channel faults, corruption.

The ``faults`` scenario slot (default ``null`` — zero wiring, bit-identical
to a fault-free build, the energy/observability precedent) resolves to a
:class:`~repro.faults.plan.FaultPlan`: a frozen, fully pre-computed schedule
of node crash/recover churn, noise-floor bursts, per-link gain fades and
probabilistic packet corruption.  The plan is *data* — it is derived from
the scenario spec and the scenario seed alone, so the same (seed, spec)
always injects the same faults, and fault scenarios hash into the campaign
store's content keys like every other component choice.

Runtime pieces:

* :class:`~repro.faults.injector.FaultInjector` schedules the plan onto the
  simulator and drives the existing power-down machinery (channel detach,
  MAC shutdown, routing notification) plus the recover/rejoin path.
* :class:`~repro.faults.resilience.ResilienceMonitor` bins delivery over
  time and reduces it to a :class:`~repro.faults.resilience.ResilienceReport`
  (delivery during vs. outside fault windows, per-crash reroute/recovery
  times) that rides :class:`~repro.experiments.scenario.ExperimentResult`
  through the campaign store.

See ``docs/faults.md`` for the fault model and the determinism contract.
"""

from repro.faults.plan import (
    CorruptionWindow,
    CrashEvent,
    FaultPlan,
    LinkFade,
    NoiseBurst,
)
from repro.faults.resilience import CrashRecovery, ResilienceReport

__all__ = [
    "CorruptionWindow",
    "CrashEvent",
    "CrashRecovery",
    "FaultPlan",
    "LinkFade",
    "NoiseBurst",
    "ResilienceReport",
]
