"""The fault schedule as immutable data: what breaks, when, and how badly.

A :class:`FaultPlan` is what a (non-null) ``faults`` component factory
returns: four tuples of frozen event records, fully determined at build
time.  Nothing here touches the simulator — the plan is pure description,
which is what makes the determinism contract checkable: building the same
(seed, spec) twice yields ``==`` plans, and the injector replays a plan
into an identical event schedule.

Times are validated against the scenario horizon at wiring time (the plan
itself does not know the node count or duration; the builder does).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CrashEvent:
    """One node going down hard — and, optionally, coming back.

    A crash drives the same machinery as battery death: the node's radios
    detach from their channels, the MAC shuts down (dropping its queue),
    and routing is notified.  ``recover_at_s`` of ``None`` means the node
    never rejoins.
    """

    #: The node that crashes.
    node: int
    #: Crash instant [sim s].
    at_s: float
    #: Rejoin instant [sim s]; None = permanent failure.
    recover_at_s: float | None = None


@dataclass(frozen=True)
class NoiseBurst:
    """A timed rise of the noise floor at some (or all) receivers.

    During the window every affected radio evaluates SINR against
    ``noise_w`` instead of the ambient floor — weak links stop decoding,
    and a burst arriving mid-frame corrupts the lock exactly like an
    interference rise would.  Carrier sense is unaffected (the burst
    models front-end noise, not sensable energy).
    """

    #: Window start [sim s].
    start_s: float
    #: Window end [sim s].
    end_s: float
    #: Noise floor during the window [W].
    noise_w: float
    #: Affected node ids; empty tuple = every node.
    nodes: tuple[int, ...] = ()


@dataclass(frozen=True)
class LinkFade:
    """A timed multiplicative fade on one directed link.

    Frames from ``src`` arriving at ``dst`` during the window have their
    received power scaled by ``factor`` (attenuation only, so the channel's
    spatial-index culling stays a sound superset and its gain caches stay
    untouched — the fade is applied at the receiving radio).
    """

    #: Transmitting node id.
    src: int
    #: Receiving node id (where the fade is applied).
    dst: int
    #: Window start [sim s].
    start_s: float
    #: Window end [sim s].
    end_s: float
    #: Received-power multiplier in (0, 1].
    factor: float = 0.1


@dataclass(frozen=True)
class CorruptionWindow:
    """Probabilistic frame damage at some (or all) receivers.

    During the window each otherwise-successful decode at an affected
    radio is flipped to a failure with probability ``probability`` (drawn
    from the scenario's dedicated fault stream, so the damage pattern is
    deterministic per seed).
    """

    #: Window start [sim s].
    start_s: float
    #: Window end [sim s].
    end_s: float
    #: Per-frame corruption probability in [0, 1].
    probability: float
    #: Affected node ids; empty tuple = every node.
    nodes: tuple[int, ...] = ()


@dataclass(frozen=True)
class FaultPlan:
    """A complete, immutable fault schedule for one scenario.

    Equality is structural — two builds of the same (seed, spec) must
    produce ``==`` plans (regression-tested by a hypothesis property).
    """

    #: Node crash/recover churn, in schedule order.
    crashes: tuple[CrashEvent, ...] = ()
    #: Noise-floor bursts.
    noise_bursts: tuple[NoiseBurst, ...] = ()
    #: Per-link gain fades.
    link_fades: tuple[LinkFade, ...] = ()
    #: Probabilistic packet-corruption windows.
    corruption: tuple[CorruptionWindow, ...] = ()
    #: Resilience-metric bin width [sim s]; 0 disables the monitor (the
    #: injector still runs, but no ResilienceReport is produced).
    resilience_interval_s: float = 1.0

    @property
    def empty(self) -> bool:
        """True when the plan schedules nothing at all."""
        return not (
            self.crashes
            or self.noise_bursts
            or self.link_fades
            or self.corruption
        )

    def fault_windows(self, horizon_s: float) -> tuple[tuple[float, float], ...]:
        """Every degradation window as (start, end), clamped to the horizon.

        Crash windows run from the crash to the recovery (or the horizon
        for permanent failures).  Used by the resilience monitor to split
        delivery into during-fault vs. nominal time.
        """
        windows: list[tuple[float, float]] = []
        for c in self.crashes:
            end = horizon_s if c.recover_at_s is None else c.recover_at_s
            windows.append((c.at_s, min(end, horizon_s)))
        for b in self.noise_bursts:
            windows.append((b.start_s, min(b.end_s, horizon_s)))
        for f in self.link_fades:
            windows.append((f.start_s, min(f.end_s, horizon_s)))
        for w in self.corruption:
            windows.append((w.start_s, min(w.end_s, horizon_s)))
        return tuple(sorted(windows))

    def validate(self, node_count: int, duration_s: float) -> None:
        """Check node ids, window ordering and value ranges.

        Called by the builder at wiring time (the plan is constructible
        without knowing the topology, like a :class:`ScenarioSpec` naming
        an unregistered component).  Raises :class:`ValueError` naming the
        offending record.
        """
        def _node(n: int, what: str) -> None:
            if not (0 <= n < node_count):
                raise ValueError(
                    f"fault plan: {what} node {n} out of range for "
                    f"{node_count} nodes"
                )

        for c in self.crashes:
            _node(c.node, "crash")
            if c.at_s < 0 or c.at_s > duration_s:
                raise ValueError(
                    f"fault plan: crash of node {c.node} at {c.at_s}s is "
                    f"outside the scenario horizon [0, {duration_s}]"
                )
            if c.recover_at_s is not None and c.recover_at_s <= c.at_s:
                raise ValueError(
                    f"fault plan: node {c.node} recovery at "
                    f"{c.recover_at_s}s does not follow its crash at {c.at_s}s"
                )
        down: set[int] = set()
        for c in sorted(self.crashes, key=lambda c: c.at_s):
            if c.node in down:
                raise ValueError(
                    f"fault plan: node {c.node} crashes again before "
                    "recovering (overlapping crash windows)"
                )
            if c.recover_at_s is None:
                down.add(c.node)
        for b in self.noise_bursts:
            if b.end_s <= b.start_s:
                raise ValueError(
                    f"fault plan: noise burst window [{b.start_s}, "
                    f"{b.end_s}] is empty"
                )
            if b.noise_w <= 0:
                raise ValueError(
                    f"fault plan: noise burst power {b.noise_w!r} W must be "
                    "positive"
                )
            for n in b.nodes:
                _node(n, "noise burst")
        for f in self.link_fades:
            _node(f.src, "fade src")
            _node(f.dst, "fade dst")
            if f.end_s <= f.start_s:
                raise ValueError(
                    f"fault plan: fade window [{f.start_s}, {f.end_s}] "
                    "is empty"
                )
            if not (0.0 < f.factor <= 1.0):
                raise ValueError(
                    f"fault plan: fade factor {f.factor!r} must be in "
                    "(0, 1] (fades attenuate; they never amplify)"
                )
        for w in self.corruption:
            if w.end_s <= w.start_s:
                raise ValueError(
                    f"fault plan: corruption window [{w.start_s}, "
                    f"{w.end_s}] is empty"
                )
            if not (0.0 <= w.probability <= 1.0):
                raise ValueError(
                    f"fault plan: corruption probability {w.probability!r} "
                    "must be in [0, 1]"
                )
            for n in w.nodes:
                _node(n, "corruption")
