"""Resilience metrics: how delivery degrades under faults and recovers.

A :class:`ResilienceMonitor` samples the metrics collector's cumulative
sent/received counters on a fixed grid (the :class:`GaugeSampler` pattern —
scheduled events, so it runs only for fault scenarios, which already change
the event schedule by construction).  At the end of the run it reduces the
bins plus the plan's fault windows into a :class:`ResilienceReport`:

* per-bin offered/delivered curves (the degradation/recovery time series);
* delivery ratio inside vs. outside fault windows;
* per-crash reaction times — time to first post-crash delivery (the
  reroute proxy, resolved at bin granularity) and time for the windowed
  delivery ratio to return to 90 % of its pre-crash baseline.

The report is plain frozen data and rides
:attr:`~repro.experiments.scenario.ExperimentResult.resilience` through the
campaign store's JSON round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metrics.collector import MetricsCollector
    from repro.sim.kernel import Simulator

#: A crash is "recovered" when the windowed delivery ratio is back to this
#: fraction of its pre-crash baseline.
RECOVERY_FRACTION = 0.9


@dataclass(frozen=True)
class CrashRecovery:
    """Reaction times around one crash (bin-granular, None = never)."""

    #: The crashed node.
    node: int
    #: Crash instant [sim s].
    crashed_at_s: float
    #: Rejoin instant [sim s]; None for permanent failures.
    recovered_at_s: float | None
    #: Seconds from the crash to the first bin with a delivery — the
    #: time-to-reroute proxy; None if nothing was delivered afterwards.
    reroute_s: float | None
    #: Seconds from the crash until the per-bin delivery ratio returned to
    #: ``RECOVERY_FRACTION`` of the pre-crash baseline; None if it never did.
    recovery_s: float | None


@dataclass(frozen=True)
class ResilienceReport:
    """Binned delivery under faults, plus the reductions that matter."""

    #: Bin width [sim s].
    interval_s: float
    #: Bin end times [sim s].
    times: tuple[float, ...]
    #: Packets sent per bin (cumulative-counter deltas).
    sent: tuple[int, ...]
    #: Packets delivered per bin.
    received: tuple[int, ...]
    #: Every fault window as (start_s, end_s).
    fault_windows: tuple[tuple[float, float], ...]
    #: Delivery ratio over bins overlapping a fault window.
    delivery_during_faults: float
    #: Delivery ratio over bins entirely outside fault windows.
    delivery_outside_faults: float
    #: Per-crash reaction times, in crash order.
    crashes: tuple[CrashRecovery, ...]

    @property
    def degradation(self) -> float:
        """Fractional delivery loss inside fault windows vs. outside."""
        if self.delivery_outside_faults <= 0.0:
            return 0.0
        return 1.0 - self.delivery_during_faults / self.delivery_outside_faults

    @classmethod
    def from_payload(cls, data: dict) -> "ResilienceReport":
        """Rebuild from the campaign store's JSON dict."""
        return cls(
            interval_s=data["interval_s"],
            times=tuple(data["times"]),
            sent=tuple(int(v) for v in data["sent"]),
            received=tuple(int(v) for v in data["received"]),
            fault_windows=tuple(
                (w[0], w[1]) for w in data["fault_windows"]
            ),
            delivery_during_faults=data["delivery_during_faults"],
            delivery_outside_faults=data["delivery_outside_faults"],
            crashes=tuple(
                CrashRecovery(**crash) for crash in data["crashes"]
            ),
        )


class ResilienceMonitor:
    """Samples delivery counters on a grid and reduces them to a report."""

    def __init__(
        self,
        sim: "Simulator",
        metrics: "MetricsCollector",
        plan: FaultPlan,
        *,
        interval_s: float,
        horizon_s: float,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        self.sim = sim
        self.metrics = metrics
        self.plan = plan
        self.interval_s = interval_s
        self.horizon_s = horizon_s
        self._times: list[float] = []
        self._sent: list[int] = []
        self._received: list[int] = []
        self._last_sent = 0
        self._last_received = 0
        sim.schedule(0.0, self._sample, label="fault.sample")

    def _sample(self) -> None:
        now = self.sim.now
        sent = self.metrics.total_sent
        received = self.metrics.total_received
        if now > 0.0:
            # The t=0 tick only establishes the baseline; bins are deltas.
            self._times.append(now)
            self._sent.append(sent - self._last_sent)
            self._received.append(received - self._last_received)
        self._last_sent = sent
        self._last_received = received
        if now + self.interval_s <= self.horizon_s:
            self.sim.schedule(
                now + self.interval_s, self._sample, label="fault.sample"
            )

    # ---------------------------------------------------------------- report

    def report(self) -> ResilienceReport:
        """Reduce the samples to a :class:`ResilienceReport`."""
        windows = self.plan.fault_windows(self.horizon_s)
        times = tuple(self._times)
        sent = tuple(self._sent)
        received = tuple(self._received)

        def in_fault(t_end: float) -> bool:
            t_start = t_end - self.interval_s
            return any(s < t_end and e > t_start for s, e in windows)

        during_s = during_r = outside_s = outside_r = 0
        for t, s, r in zip(times, sent, received):
            if in_fault(t):
                during_s += s
                during_r += r
            else:
                outside_s += s
                outside_r += r
        return ResilienceReport(
            interval_s=self.interval_s,
            times=times,
            sent=sent,
            received=received,
            fault_windows=windows,
            delivery_during_faults=(during_r / during_s) if during_s else 0.0,
            delivery_outside_faults=(outside_r / outside_s) if outside_s else 0.0,
            crashes=tuple(
                self._crash_recovery(c, times, sent, received)
                for c in self.plan.crashes
            ),
        )

    def _crash_recovery(
        self,
        crash,
        times: tuple[float, ...],
        sent: tuple[int, ...],
        received: tuple[int, ...],
    ) -> CrashRecovery:
        """Reaction times for one crash, at bin granularity."""
        # Pre-crash baseline: delivery ratio over bins ending at/before the
        # crash (falls back to 1.0 when traffic had not started yet).
        base_s = base_r = 0
        for t, s, r in zip(times, sent, received):
            if t <= crash.at_s:
                base_s += s
                base_r += r
        baseline = (base_r / base_s) if base_s else 1.0

        reroute_s: float | None = None
        recovery_s: float | None = None
        target = RECOVERY_FRACTION * baseline
        for t, s, r in zip(times, sent, received):
            if t <= crash.at_s:
                continue
            if reroute_s is None and r > 0:
                reroute_s = t - crash.at_s
            if recovery_s is None and s > 0 and (r / s) >= target:
                recovery_s = t - crash.at_s
            if reroute_s is not None and recovery_s is not None:
                break
        return CrashRecovery(
            node=crash.node,
            crashed_at_s=crash.at_s,
            recovered_at_s=crash.recover_at_s,
            reroute_s=reroute_s,
            recovery_s=recovery_s,
        )
