"""Replays a :class:`FaultPlan` onto a built network, deterministically.

The injector schedules one kernel event per fault edge (crash, recover,
window open, window close) at arm time, in plan order — so the same plan
always produces the same event schedule.  Crashes drive the exact sequence
battery death uses (channel detach, MAC shutdown with orphan-drop
attribution, routing notification); recovery is the new inverse path
(channel re-attach, MAC restart, routing resume).  Channel-quality faults
are applied at the receiving radios (see
:class:`~repro.phy.radio.RadioFaultState`) so the channel's spatial-index
and gain caches stay untouched.

Every fault edge is emitted through the tracer (categories ``fault.crash``,
``fault.recover``, ``fault.noise``, ``fault.link``, ``fault.corrupt``), so
``repro trace`` / ``repro stats`` show the fault timeline alongside the
protocol's reaction to it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.faults.plan import FaultPlan
from repro.phy.radio import RadioFaultState
from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.node import Node
    from repro.phy.channel import Channel
    from repro.sim.kernel import Simulator


class FaultInjector:
    """Schedules and executes one scenario's fault plan.

    Built by the network builder when the ``faults`` slot is non-null;
    lives in ``BuiltNetwork.extras["faults"]``.

    Args:
        sim: the simulation kernel.
        nodes: every node, indexed by id.
        plan: the validated fault schedule.
        data_channel: the data channel (crash detach / rejoin attach).
        control_channel: PCMAC's control channel, if the MAC has one.
        tracer: trace sink for the fault timeline.
        rng: the scenario's dedicated runtime fault stream (packet
            corruption draws).
    """

    def __init__(
        self,
        sim: "Simulator",
        nodes: Sequence["Node"],
        *,
        plan: FaultPlan,
        data_channel: "Channel",
        control_channel: "Channel | None" = None,
        tracer: Tracer = NULL_TRACER,
        rng=None,
    ) -> None:
        self.sim = sim
        self.nodes = list(nodes)
        self.plan = plan
        self.data_channel = data_channel
        self.control_channel = control_channel
        self.tracer = tracer
        self.rng = rng
        #: Nodes currently down *because this injector crashed them* —
        #: battery deaths are not ours to recover.
        self._down: set[int] = set()
        #: Fault-edge counters (surfaced via :meth:`stats`).
        self.counts = {"crashes": 0, "recoveries": 0, "orphan_drops": 0}
        self._armed = False

    # ------------------------------------------------------------------ arm

    def arm(self, horizon_s: float) -> None:
        """Validate the plan and schedule every fault edge (idempotent-safe:
        arming twice is a bug and raises)."""
        if self._armed:
            raise RuntimeError("fault injector is already armed")
        self._armed = True
        self.plan.validate(len(self.nodes), horizon_s)
        sim = self.sim
        for c in self.plan.crashes:
            sim.schedule(
                c.at_s, _Edge(self._crash, c.node), label="fault.crash"
            )
            if c.recover_at_s is not None:
                sim.schedule(
                    c.recover_at_s,
                    _Edge(self._recover, c.node),
                    label="fault.recover",
                )
        for b in self.plan.noise_bursts:
            sim.schedule(
                b.start_s, _Edge(self._noise_on, b), label="fault.noise"
            )
            sim.schedule(
                b.end_s, _Edge(self._noise_off, b), label="fault.noise"
            )
        for f in self.plan.link_fades:
            sim.schedule(
                f.start_s, _Edge(self._fade_on, f), label="fault.link"
            )
            sim.schedule(f.end_s, _Edge(self._fade_off, f), label="fault.link")
        for w in self.plan.corruption:
            if w.probability <= 0.0:
                continue
            sim.schedule(
                w.start_s, _Edge(self._corrupt_on, w), label="fault.corrupt"
            )
            sim.schedule(
                w.end_s, _Edge(self._corrupt_off, w), label="fault.corrupt"
            )

    def stats(self) -> dict[str, int]:
        """Fault-edge counters (crashes executed, recoveries, orphan drops)."""
        return dict(self.counts)

    # ------------------------------------------------------------ crash path

    def _crash(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if node.mac.dead:
            # Already down (battery death, or an earlier permanent crash).
            return
        self._down.add(node_id)
        self.counts["crashes"] += 1
        radio = node.mac.radio
        self.data_channel.detach(radio)
        control = getattr(node.mac, "control", None)
        if control is not None and self.control_channel is not None:
            self.control_channel.detach(control.radio)

        def _drop_orphan(packet) -> None:
            # Mirror battery death's accounting: only data packets are
            # metered losses; routing control traffic just evaporates.
            if getattr(packet, "kind", None) == "data":
                self.counts["orphan_drops"] += 1
                node.metrics_drop(packet, "node_dead")

        node.mac.shutdown(on_packet_drop=_drop_orphan)
        node.routing.on_node_down()
        self.tracer.emit(self.sim.now, "fault.crash", node_id)

    def _recover(self, node_id: int) -> None:
        if node_id not in self._down:
            # The crash never happened (node was battery-dead first), so
            # the rejoin must not happen either.
            return
        self._down.discard(node_id)
        self.counts["recoveries"] += 1
        node = self.nodes[node_id]
        radio = node.mac.radio
        self.data_channel.attach(radio)
        control = getattr(node.mac, "control", None)
        if control is not None and self.control_channel is not None:
            self.control_channel.attach(control.radio)
        node.mac.restart()
        node.routing.on_node_up()
        self.tracer.emit(self.sim.now, "fault.recover", node_id)

    # --------------------------------------------------------- channel faults

    def _radios(self, node_ids: tuple[int, ...]):
        ids = node_ids if node_ids else range(len(self.nodes))
        for nid in ids:
            yield nid, self.nodes[nid].mac.radio

    def _fault_state(self, radio) -> RadioFaultState:
        state = radio.faults
        if state is None:
            state = RadioFaultState(self.rng)
            radio.faults = state
        return state

    @staticmethod
    def _maybe_uninstall(radio) -> None:
        state = radio.faults
        if state is not None and not state.active:
            # Drop the state object entirely so the fault-free hot path is
            # back to a single is-not-None check that fails fast.
            radio.faults = None

    def _noise_on(self, burst) -> None:
        for nid, radio in self._radios(burst.nodes):
            radio.set_noise_floor_w(burst.noise_w)
            self.tracer.emit(
                self.sim.now, "fault.noise", nid, on=True, noise_w=burst.noise_w
            )

    def _noise_off(self, burst) -> None:
        for nid, radio in self._radios(burst.nodes):
            radio.set_noise_floor_w(None)
            self.tracer.emit(self.sim.now, "fault.noise", nid, on=False)

    def _fade_on(self, fade) -> None:
        radio = self.nodes[fade.dst].mac.radio
        self._fault_state(radio).gains[fade.src] = fade.factor
        self.tracer.emit(
            self.sim.now,
            "fault.link",
            fade.dst,
            on=True,
            src=fade.src,
            factor=fade.factor,
        )

    def _fade_off(self, fade) -> None:
        state = self.nodes[fade.dst].mac.radio.faults
        if state is not None:
            state.gains.pop(fade.src, None)
        self._maybe_uninstall(self.nodes[fade.dst].mac.radio)
        self.tracer.emit(
            self.sim.now, "fault.link", fade.dst, on=False, src=fade.src
        )

    def _corrupt_on(self, window) -> None:
        for nid, radio in self._radios(window.nodes):
            self._fault_state(radio).corrupt_p = window.probability
            self.tracer.emit(
                self.sim.now,
                "fault.corrupt",
                nid,
                on=True,
                probability=window.probability,
            )

    def _corrupt_off(self, window) -> None:
        for nid, radio in self._radios(window.nodes):
            state = radio.faults
            if state is not None:
                state.corrupt_p = 0.0
            self._maybe_uninstall(radio)
            self.tracer.emit(self.sim.now, "fault.corrupt", nid, on=False)


class _Edge:
    """A pre-bound fault-edge callback (no per-event closure allocation)."""

    __slots__ = ("_fn", "_arg")

    def __init__(self, fn, arg) -> None:
        self._fn = fn
        self._arg = arg

    def __call__(self) -> None:
        self._fn(self._arg)
