"""Application-layer traffic generators (the paper's CBR/UDP workload)."""

from repro.traffic.cbr import CbrSource
from repro.traffic.poisson import PoissonSource

__all__ = ["CbrSource", "PoissonSource"]
