"""Constant-bit-rate source over the UDP-like datagram service.

The paper's workload: 512-byte packets at a constant rate, 10 flows.  There
is no transport-layer reliability — losses are losses, which is what the
aggregate-throughput metric measures.
"""

from __future__ import annotations

from repro.net.node import Node
from repro.net.packet import Packet


class CbrSource:
    """Emits fixed-size packets at a fixed interval from ``node`` to ``dst``."""

    def __init__(
        self,
        node: Node,
        flow_id: int,
        dst: int,
        *,
        interval_s: float,
        size_bytes: int,
        start_s: float,
        stop_s: float | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s!r}")
        if dst == node.node_id:
            raise ValueError("source and destination must differ")
        self.node = node
        self.flow_id = flow_id
        self.dst = dst
        self.interval_s = interval_s
        self.size_bytes = size_bytes
        self.stop_s = stop_s
        self._seq = 0
        self.sent = 0
        self._label = f"cbr.{flow_id}"  # built once, not per packet
        node.sim.schedule(start_s, self._emit, label=self._label)

    def _emit(self) -> None:
        now = self.node.sim.now
        if self.stop_s is not None and now >= self.stop_s:
            return
        self._seq += 1
        packet = Packet(
            flow_id=self.flow_id,
            seq=self._seq,
            src=self.node.node_id,
            dst=self.dst,
            size_bytes=self.size_bytes,
            created_at=now,
            kind="data",
        )
        self.sent += 1
        self.node.app_send(packet)
        self.node.sim.schedule_in(self.interval_s, self._emit, label=self._label)
