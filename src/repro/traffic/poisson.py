"""Poisson (exponential inter-arrival) traffic source.

Not used by the paper's headline figures, but included for robustness
studies: CBR's perfectly periodic arrivals can phase-lock with MAC timing;
Poisson arrivals break that artefact.
"""

from __future__ import annotations

import numpy as np

from repro.net.node import Node
from repro.net.packet import Packet


class PoissonSource:
    """Emits fixed-size packets with exponential gaps at a mean rate."""

    def __init__(
        self,
        node: Node,
        flow_id: int,
        dst: int,
        *,
        mean_interval_s: float,
        size_bytes: int,
        start_s: float,
        rng: np.random.Generator,
        stop_s: float | None = None,
    ) -> None:
        if mean_interval_s <= 0:
            raise ValueError(f"mean interval must be positive, got {mean_interval_s!r}")
        if dst == node.node_id:
            raise ValueError("source and destination must differ")
        self.node = node
        self.flow_id = flow_id
        self.dst = dst
        self.mean_interval_s = mean_interval_s
        self.size_bytes = size_bytes
        self.stop_s = stop_s
        self._rng = rng
        self._seq = 0
        self.sent = 0
        self._label = f"poisson.{flow_id}"  # built once, not per packet
        node.sim.schedule(start_s, self._emit, label=self._label)

    def _emit(self) -> None:
        now = self.node.sim.now
        if self.stop_s is not None and now >= self.stop_s:
            return
        self._seq += 1
        packet = Packet(
            flow_id=self.flow_id,
            seq=self._seq,
            src=self.node.node_id,
            dst=self.dst,
            size_bytes=self.size_bytes,
            created_at=now,
            kind="data",
        )
        self.sent += 1
        self.node.app_send(packet)
        gap = float(self._rng.exponential(self.mean_interval_s))
        self.node.sim.schedule_in(gap, self._emit, label=self._label)
