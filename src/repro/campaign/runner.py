"""Campaign executor: fan specs out to a worker pool, memoise in a store.

The executor is deliberately dumb about *what* it runs: a spec is a sealed
description, the worker just calls :meth:`RunSpec.run`.  Determinism falls
out of the spec design — every cell carries its own seed and the simulator
is single-threaded per run — so a campaign at ``jobs=8`` produces results
identical to the serial path, merely sooner.  Results are keyed by content
hash, which also makes the executor indifferent to completion order.

``jobs=1`` bypasses ``multiprocessing`` entirely (no pickling, no fork), so
the serial path stays debuggable and usable on platforms without working
process pools.

Live telemetry (``telemetry=...``) swaps the worker entry point for
:func:`repro.obs.telemetry.run_with_heartbeat`: each cell runs in sim-time
slices and streams :class:`~repro.obs.telemetry.RunProgress` heartbeats
back to the parent (over a manager queue in the pooled case), which also
records per-run runtime stats into the store.  Results are bit-identical
either way — slicing ``run_until`` does not change the dispatch order.

Failure containment
-------------------
A cell that raises does not kill the campaign: the worker catches the
exception and ships a structured error back, the parent retries it up to
``retries`` times with exponential backoff, and a cell that fails every
attempt is recorded in the store as an error line (``ResultStore.put_error``
— key, spec, exception kind/message/traceback, attempt count) while the
remaining cells run to completion.  In the pooled path ``timeout_s`` bounds
each cell's wall time; a hung (or hard-killed) worker is detected at the
deadline, the pool is torn down and rebuilt, the overdue cell is charged an
attempt, and innocent in-flight cells are resubmitted for free.  A
``should_stop`` callback makes shutdown cooperative: once it returns True no
new cell starts, in-flight cells drain, and the report covers everything
that finished — the store then resumes the rest on the next invocation.

Fleet mode
----------
``fleet=True`` swaps the worker pool for the fault-tolerant fleet
(:mod:`repro.fleet`): pending cells are **enqueued** into the store's
durable work queue, ``jobs`` supervised worker processes claim them under
expiring leases, and the parent **drains** — polling the store and
recording results/errors exactly as the serial and pooled paths do, so
``run_specs``' API, progress lines, and telemetry are preserved.  The
difference is what survives: a SIGKILLed worker's lease lapses and a
sibling steals the run; a dead worker process is respawned (bounded) by
the parent; external ``repro fleet work`` processes — same machine or a
shared filesystem — can join the same queue and their results are picked
up here; and identical cells from overlapping campaigns are executed once
and shared through the content-addressed store.
"""

from __future__ import annotations

import multiprocessing
import signal
import sys
import threading
import time
import traceback as _traceback
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.campaign.spec import Campaign, RunSpec
from repro.campaign.store import ResultStore
from repro.obs.telemetry import DEFAULT_SLICES, TelemetryFn, run_with_heartbeat

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.scenario import ExperimentResult

ProgressFn = Callable[[str], None]
StopFn = Callable[[], bool]


def _execute(spec: RunSpec) -> tuple[str, "ExperimentResult"]:
    """Worker entry point: run one cell (module-level for picklability)."""
    return spec.key(), spec.run()


#: Largest traceback stored in an error record [chars].  Hung or killed
#: workers can surface tracebacks through arbitrarily deep retry wrappers;
#: bounding keeps the store's JSONL lines small and greppable.
MAX_TRACEBACK_CHARS = 4000


def _bound_traceback(text: str, limit: int = MAX_TRACEBACK_CHARS) -> str:
    """Cap ``text`` at ``limit`` chars, keeping the head and the tail.

    The head names the call site, the tail names the exception — the middle
    frames are the expendable part, replaced by an elision marker that
    records how much was cut.
    """
    if len(text) <= limit:
        return text
    half = (limit - 60) // 2
    elided = len(text) - 2 * half
    return (
        text[:half]
        + f"\n... [{elided} chars elided] ...\n"
        + text[-half:]
    )


def error_record(
    exc: BaseException, attempts: int, *, label: str | None = None
) -> dict:
    """Structured description of a cell's permanent failure.

    This is the shape :meth:`ResultStore.put_error` persists and
    :attr:`CampaignReport.errors` carries: exception kind, message,
    bounded traceback (head + tail, capped at
    :data:`MAX_TRACEBACK_CHARS`), how many attempts were made, and — when
    the caller knows it — the spec's human label, so error lines from
    hung or killed workers stay greppable by cell.
    """
    record = {
        "kind": type(exc).__name__,
        "message": str(exc),
        "traceback": _bound_traceback(
            "".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
        ),
        "attempts": attempts,
    }
    if label is not None:
        record["label"] = label
    return record


def _execute_safe(
    args: tuple[RunSpec, int | None],
) -> tuple[str, str, object, dict | None]:
    """Pooled worker entry point that never raises.

    Runs one cell (with heartbeats when ``slices`` is not None) and returns
    ``("ok", key, result, runtime)`` — or catches the exception and returns
    ``("err", key, error_dict, None)`` so one bad cell cannot poison the
    pool's result stream.
    """
    spec, slices = args
    key = spec.key()
    try:
        if slices is None:
            return ("ok", key, spec.run(), None)
        queue = _WORKER_QUEUE
        emit = queue.put if queue is not None else (lambda progress: None)
        result, runtime = run_with_heartbeat(spec, emit, slices=slices)
        return ("ok", key, result, runtime)
    except Exception as exc:  # noqa: BLE001 - containment is the point
        return ("err", key, error_record(exc, attempts=0, label=spec.label()), None)


#: Per-worker heartbeat queue, installed by the pool initializer.
_WORKER_QUEUE = None


def _init_worker(queue=None) -> None:
    """Pool initializer: shield the worker from SIGINT and stash the
    parent's heartbeat queue (None when telemetry is off).

    Ctrl-C reaches the whole foreground process group; ignoring it in
    workers lets in-flight cells finish while the parent's ``should_stop``
    drains the campaign cooperatively.

    SIGTERM must go back to SIG_DFL: forked workers inherit whatever
    handler the parent CLI installed, and an inherited no-kill handler
    would neuter ``Pool.terminate()`` — the parent would then block
    forever in ``pool.join()`` waiting on an unkillable worker.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    global _WORKER_QUEUE
    _WORKER_QUEUE = queue


def _start_method() -> str:
    """Fork on Linux (cheap), spawn everywhere else.

    macOS nominally offers fork too, but forking a process that has touched
    the system frameworks (numpy links Accelerate) can deadlock — the reason
    CPython made spawn the macOS default in 3.8.  Workers are re-imported
    under spawn, which is safe here: the worker entry point is module-level
    and ``repro.__main__`` guards its CLI dispatch.
    """
    return "fork" if sys.platform.startswith("linux") else "spawn"


@dataclass
class CampaignReport:
    """Outcome of one campaign invocation."""

    #: spec key → result, covering every requested cell.
    results: dict[str, "ExperimentResult"] = field(default_factory=dict)
    #: Cells actually simulated this invocation.
    executed: int = 0
    #: Cells served from the store without simulation.
    cached: int = 0
    #: Wall-clock time of the whole invocation [s].
    wallclock_s: float = 0.0
    #: spec key → :func:`error_record` for cells that failed every attempt.
    errors: dict[str, dict] = field(default_factory=dict)
    #: True when a ``should_stop`` callback ended the campaign early —
    #: cells neither in ``results`` nor ``errors`` were simply not started.
    stopped: bool = False

    @property
    def total(self) -> int:
        """Requested cell count (executed + cached)."""
        return self.executed + self.cached

    def in_spec_order(self, specs: Sequence[RunSpec]) -> list["ExperimentResult"]:
        """Results reordered to match ``specs`` (the grid's nesting order)."""
        return [self.results[spec.key()] for spec in specs]


def run_specs(
    specs: Sequence[RunSpec],
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    resume: bool = True,
    progress: ProgressFn | None = None,
    telemetry: TelemetryFn | None = None,
    slices: int = DEFAULT_SLICES,
    timeout_s: float | None = None,
    retries: int = 0,
    backoff_s: float = 0.5,
    should_stop: StopFn | None = None,
    fleet: bool = False,
    lease_ttl_s: float | None = None,
) -> CampaignReport:
    """Execute every spec, reusing stored results where possible.

    Args:
        specs: the cells to ensure results for (duplicates collapse).
        jobs: worker process count; 1 = run serially in this process.
        store: optional on-disk memo; finished cells are appended as they
            complete, so an interrupted campaign resumes on the next call.
        resume: when False, stored results are ignored (and overwritten) —
            every cell is re-simulated.
        progress: optional callback receiving one line per finished cell.
        telemetry: optional callback receiving
            :class:`~repro.obs.telemetry.RunProgress` heartbeats while
            cells execute (live progress).  Enables per-run runtime stats
            in the store.  Called from a drainer thread when ``jobs > 1``.
        slices: heartbeats per run when telemetry is on.
        timeout_s: per-cell wall-clock budget (pooled path only — a single
            process cannot interrupt its own run).  An overdue cell is
            treated as a crashed attempt: the pool is rebuilt and the cell
            retried or recorded as an error.
        retries: extra attempts per failing cell before it is recorded as
            a permanent error (0 = record on the first failure).
        backoff_s: base delay before a retry; attempt ``n`` waits
            ``backoff_s * 2**(n-1)``.
        should_stop: cooperative-shutdown poll — once it returns True no
            new cell starts; in-flight cells drain and the report's
            ``stopped`` flag is set.
        fleet: route pending cells through the durable fleet queue
            (lease-based work-stealing, supervised workers, shared
            content-addressed cache) instead of a plain pool.  Requires a
            ``store``; ``retries`` maps to the fleet's per-run attempt
            budget (``retries + 1`` claims) and ``timeout_s`` is
            subsumed by lease expiry.
        lease_ttl_s: fleet-mode lease validity window [s] (None = the
            fleet default); leases are renewed every telemetry slice.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    if fleet and store is None:
        raise ValueError("fleet=True requires a store (the queue lives in it)")
    t0 = time.perf_counter()
    report = CampaignReport()

    pending: list[RunSpec] = []
    seen: set[str] = set()
    for spec in specs:
        key = spec.key()
        if key in seen:
            continue
        seen.add(key)
        cached = store.get(key) if (store is not None and resume) else None
        if cached is not None:
            report.results[key] = cached
            report.cached += 1
            if progress is not None:
                progress(f"[cached] {cached.row()}  seed={cached.seed}")
        else:
            pending.append(spec)

    def record(
        spec: RunSpec,
        key: str,
        result: "ExperimentResult",
        runtime: dict | None = None,
        *,
        persist: bool = True,
    ) -> None:
        report.results[key] = result
        report.executed += 1
        if store is not None and persist:
            store.put(spec, result, runtime=runtime)
        if progress is not None:
            progress(
                f"[{report.executed}/{len(pending)}] {result.row()}"
                f"  seed={result.seed}"
            )

    def record_error(
        spec: RunSpec, key: str, error: dict, *, persist: bool = True
    ) -> None:
        report.errors[key] = error
        if store is not None and persist:
            store.put_error(spec, error)
        if progress is not None:
            progress(
                f"[failed] {spec.protocol} load={spec.load_kbps} "
                f"seed={spec.seed}: {error['kind']}: {error['message']} "
                f"(attempts={error['attempts']})"
            )

    def stopping() -> bool:
        if should_stop is not None and should_stop():
            report.stopped = True
            return True
        return False

    if fleet:
        _run_fleet(
            pending,
            jobs=jobs,
            store=store,
            report=report,
            record=record,
            record_error=record_error,
            stopping=stopping,
            telemetry=telemetry,
            slices=slices,
            retries=retries,
            lease_ttl_s=lease_ttl_s,
        )
    elif jobs == 1 or len(pending) <= 1:
        for spec in pending:
            if stopping():
                break
            attempt = 0
            while True:
                attempt += 1
                try:
                    if telemetry is not None:
                        result, runtime = run_with_heartbeat(
                            spec, telemetry, slices=slices
                        )
                        record(spec, spec.key(), result, runtime)
                    else:
                        key, result = _execute(spec)
                        record(spec, key, result)
                    break
                except Exception as exc:  # noqa: BLE001 - containment
                    if attempt > retries or stopping():
                        record_error(
                            spec,
                            spec.key(),
                            error_record(exc, attempt, label=spec.label()),
                        )
                        break
                    time.sleep(backoff_s * 2 ** (attempt - 1))
    else:
        _run_pooled(
            pending,
            jobs=jobs,
            record=record,
            record_error=record_error,
            stopping=stopping,
            telemetry=telemetry,
            slices=slices,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
        )

    report.wallclock_s = time.perf_counter() - t0
    return report


def _fleet_worker_entry(
    store_root: str,
    options: dict,
    queue=None,
) -> None:
    """Entry point of one fleet worker process (module-level: picklable).

    Reconstructs the shared store/queue from the filesystem and runs the
    claim loop until the queue drains or a STOP is requested.  Signal
    policy matches the pool workers: SIGINT ignored (the parent drains
    cooperatively), SIGTERM back to SIG_DFL so the parent can reap a
    stuck worker.
    """
    from repro.fleet.queue import WorkQueue
    from repro.fleet.shards import open_store
    from repro.fleet.worker import FleetWorker

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    store = open_store(store_root)
    work_queue = WorkQueue(store.root / "fleet")
    telemetry = queue.put if queue is not None else None
    FleetWorker(
        store,
        work_queue,
        lease_ttl_s=options["lease_ttl_s"],
        max_attempts=options["max_attempts"],
        slices=options["slices"],
        telemetry=telemetry,
    ).run()


def _run_fleet(
    pending: Sequence[RunSpec],
    *,
    jobs: int,
    store: ResultStore,
    report: CampaignReport,
    record: Callable,
    record_error: Callable,
    stopping: StopFn,
    telemetry: TelemetryFn | None,
    slices: int,
    retries: int,
    lease_ttl_s: float | None,
) -> None:
    """Enqueue-then-drain through the durable fleet queue.

    The parent never executes cells: it enqueues them, spawns ``jobs``
    supervised worker processes, and polls the store — recording each key
    the moment some worker (ours or anyone else's on the shared
    filesystem) lands its result.  Worker death is survivable twice over:
    the dead worker's leases lapse and are stolen by siblings, and the
    parent respawns missing processes (bounded) while claimable work
    remains.  A cooperative stop raises the queue's STOP flag: workers
    finish their current run and exit; unclaimed tasks stay queued for
    the next invocation to resume.
    """
    from repro.fleet.queue import DEFAULT_LEASE_TTL_S, WorkQueue

    work_queue = WorkQueue(store.root / "fleet")
    work_queue.clear_stop()
    for spec in pending:
        work_queue.enqueue(spec)
    by_key = {spec.key(): spec for spec in pending}

    options = {
        "lease_ttl_s": lease_ttl_s or DEFAULT_LEASE_TTL_S,
        "max_attempts": retries + 1,
        "slices": slices,
    }
    ctx = multiprocessing.get_context(_start_method())
    manager = queue = drainer = None
    if telemetry is not None:
        manager = ctx.Manager()
        queue = manager.Queue()

        def drain() -> None:
            while True:
                item = queue.get()
                if item is None:
                    return
                telemetry(item)

        drainer = threading.Thread(target=drain, daemon=True)
        drainer.start()

    def spawn():
        proc = ctx.Process(
            target=_fleet_worker_entry,
            args=(str(store.root), options, queue),
        )
        proc.start()
        return proc

    workers = [spawn() for _ in range(max(1, min(jobs, len(pending))))]
    #: Supervision budget: a crashed worker is replaced, but a hard fault
    #: that kills every replacement cannot respawn forever.
    respawns_left = 2 * len(workers)
    done: set[str] = set()
    stop_sent = False
    try:
        while len(done) < len(by_key):
            if not stop_sent and stopping():
                work_queue.request_stop()
                stop_sent = True
            store.refresh()
            for key, spec in by_key.items():
                if key in done:
                    continue
                result = store.get(key)
                if result is not None:
                    # The worker already persisted it — report only.
                    record(
                        spec, key, result,
                        store.runtime_stats(key) or None,
                        persist=False,
                    )
                    done.add(key)
                    continue
                error = store.error(key)
                if error is not None and work_queue.task(key) is None:
                    # Terminal: the error is recorded AND the task retired
                    # (an error line alone may predate a re-enqueue).  The
                    # worker already persisted it — report only.
                    record_error(spec, key, error, persist=False)
                    done.add(key)
            alive = [w for w in workers if w.is_alive()]
            if not stop_sent and len(done) < len(by_key):
                for i, proc in enumerate(workers):
                    if (
                        not proc.is_alive()
                        and not work_queue.drained()
                        and respawns_left > 0
                    ):
                        respawns_left -= 1
                        workers[i] = spawn()
                        alive.append(workers[i])
            if not alive:
                if stop_sent:
                    break
                if not work_queue.drained() and respawns_left <= 0:
                    # Every worker (and every replacement) died with work
                    # still queued: stop rather than spin forever.  The
                    # unfinished cells stay queued for a resume.
                    report.stopped = True
                    break
                # Queue drained with workers gone: the remaining keys are
                # terminal on disk — the next refresh records them.
            if len(done) < len(by_key):
                time.sleep(0.05)
    finally:
        for proc in workers:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - defensive teardown
                proc.terminate()
                proc.join()
        # Our STOP must not wedge external `repro fleet work` processes
        # that outlive this invocation.
        if stop_sent:
            work_queue.clear_stop()
        if queue is not None:
            queue.put(None)
            drainer.join()
            manager.shutdown()


def _run_pooled(
    pending: Sequence[RunSpec],
    *,
    jobs: int,
    record: Callable,
    record_error: Callable,
    stopping: StopFn,
    telemetry: TelemetryFn | None,
    slices: int,
    timeout_s: float | None,
    retries: int,
    backoff_s: float,
) -> None:
    """Bounded-submission pool loop with retry, timeout, and clean drain.

    Cells are submitted via ``apply_async`` (at most ``jobs`` in flight) so
    the parent can watch each cell's wall clock.  A cell whose worker
    raised comes back as a structured error (see :func:`_execute_safe`) and
    is retried with exponential backoff; a cell that blows ``timeout_s``
    means a hung or hard-killed worker, which ``Pool`` cannot surface — the
    whole pool is terminated and rebuilt, the overdue cell is charged an
    attempt, and innocent in-flight cells are resubmitted without penalty.
    """
    ctx = multiprocessing.get_context(_start_method())
    manager = queue = drainer = None
    if telemetry is not None:
        # Workers stream heartbeats over a manager queue; a drainer thread
        # in the parent forwards them to the callback so the result loop
        # below never blocks on telemetry.
        manager = ctx.Manager()
        queue = manager.Queue()

        def drain() -> None:
            while True:
                item = queue.get()
                if item is None:
                    return
                telemetry(item)

        drainer = threading.Thread(target=drain, daemon=True)
        drainer.start()

    def make_pool():
        return ctx.Pool(
            processes=min(jobs, len(pending)),
            initializer=_init_worker,
            initargs=(queue,),
        )

    worker_slices = slices if telemetry is not None else None
    attempts: dict[str, int] = {}
    #: (spec, earliest monotonic submit time) — retries wait out backoff.
    todo: deque[tuple[RunSpec, float]] = deque((s, 0.0) for s in pending)
    #: key → (async result, spec, monotonic start time).
    inflight: dict[str, tuple] = {}
    pool = make_pool()
    try:
        draining = False
        while todo or inflight:
            if not draining and stopping():
                # Cooperative shutdown: drop queued cells, drain in-flight.
                draining = True
                todo.clear()
            now = time.monotonic()
            while todo and len(inflight) < jobs:
                spec, not_before = todo[0]
                if not_before > now:
                    break  # head is backing off; poll in-flight meanwhile
                todo.popleft()
                async_result = pool.apply_async(
                    _execute_safe, ((spec, worker_slices),)
                )
                inflight[spec.key()] = (async_result, spec, time.monotonic())

            done = [k for k, (ar, _, _) in inflight.items() if ar.ready()]
            for k in done:
                async_result, spec, _ = inflight.pop(k)
                status, key, payload, runtime = async_result.get()
                if status == "ok":
                    record(spec, key, payload, runtime)
                    continue
                attempts[key] = attempts.get(key, 0) + 1
                if attempts[key] > retries or draining:
                    # Out of retries — or shutting down, where starting a
                    # fresh attempt would silently restart work the user
                    # just asked to stop.
                    payload["attempts"] = attempts[key]
                    record_error(spec, key, payload)
                else:
                    delay = backoff_s * 2 ** (attempts[key] - 1)
                    todo.append((spec, time.monotonic() + delay))

            if timeout_s is not None and inflight:
                now = time.monotonic()
                overdue = [
                    (k, spec)
                    for k, (_, spec, started) in inflight.items()
                    if now - started > timeout_s
                ]
                if overdue:
                    # A hung worker holds its pool slot forever; the only
                    # recovery multiprocessing offers is a full teardown.
                    pool.terminate()
                    pool.join()
                    victims = {k for k, _ in overdue}
                    for k, (_, spec, _) in inflight.items():
                        if k in victims:
                            attempts[k] = attempts.get(k, 0) + 1
                            if attempts[k] > retries or draining:
                                record_error(
                                    spec,
                                    k,
                                    {
                                        "kind": "Timeout",
                                        "message": (
                                            f"cell exceeded timeout_s="
                                            f"{timeout_s}"
                                        ),
                                        "traceback": "",
                                        "attempts": attempts[k],
                                        "label": spec.label(),
                                    },
                                )
                                continue
                            delay = backoff_s * 2 ** (attempts[k] - 1)
                            todo.append((spec, time.monotonic() + delay))
                        else:
                            # Innocent bystander: resubmit without penalty.
                            todo.appendleft((spec, 0.0))
                    inflight.clear()
                    pool = make_pool()

            if inflight or todo:
                time.sleep(0.02)
        pool.close()
        pool.join()
    finally:
        pool.terminate()
        pool.join()
        if queue is not None:
            queue.put(None)
            drainer.join()
            manager.shutdown()


def run_campaign(
    campaign: Campaign,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    resume: bool = True,
    progress: ProgressFn | None = None,
    telemetry: TelemetryFn | None = None,
    slices: int = DEFAULT_SLICES,
) -> CampaignReport:
    """Expand a grid campaign and execute it (see :func:`run_specs`)."""
    return run_specs(
        campaign.specs(),
        jobs=jobs,
        store=store,
        resume=resume,
        progress=progress,
        telemetry=telemetry,
        slices=slices,
    )
