"""Campaign executor: fan specs out to a worker pool, memoise in a store.

The executor is deliberately dumb about *what* it runs: a spec is a sealed
description, the worker just calls :meth:`RunSpec.run`.  Determinism falls
out of the spec design — every cell carries its own seed and the simulator
is single-threaded per run — so a campaign at ``jobs=8`` produces results
identical to the serial path, merely sooner.  Results are keyed by content
hash, which also makes the executor indifferent to completion order.

``jobs=1`` bypasses ``multiprocessing`` entirely (no pickling, no fork), so
the serial path stays debuggable and usable on platforms without working
process pools.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.campaign.spec import Campaign, RunSpec
from repro.campaign.store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.scenario import ExperimentResult

ProgressFn = Callable[[str], None]


def _execute(spec: RunSpec) -> tuple[str, "ExperimentResult"]:
    """Worker entry point: run one cell (module-level for picklability)."""
    return spec.key(), spec.run()


def _start_method() -> str:
    """Fork on Linux (cheap), spawn everywhere else.

    macOS nominally offers fork too, but forking a process that has touched
    the system frameworks (numpy links Accelerate) can deadlock — the reason
    CPython made spawn the macOS default in 3.8.  Workers are re-imported
    under spawn, which is safe here: the worker entry point is module-level
    and ``repro.__main__`` guards its CLI dispatch.
    """
    return "fork" if sys.platform.startswith("linux") else "spawn"


@dataclass
class CampaignReport:
    """Outcome of one campaign invocation."""

    #: spec key → result, covering every requested cell.
    results: dict[str, "ExperimentResult"] = field(default_factory=dict)
    #: Cells actually simulated this invocation.
    executed: int = 0
    #: Cells served from the store without simulation.
    cached: int = 0
    #: Wall-clock time of the whole invocation [s].
    wallclock_s: float = 0.0

    @property
    def total(self) -> int:
        """Requested cell count (executed + cached)."""
        return self.executed + self.cached

    def in_spec_order(self, specs: Sequence[RunSpec]) -> list["ExperimentResult"]:
        """Results reordered to match ``specs`` (the grid's nesting order)."""
        return [self.results[spec.key()] for spec in specs]


def run_specs(
    specs: Sequence[RunSpec],
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    resume: bool = True,
    progress: ProgressFn | None = None,
) -> CampaignReport:
    """Execute every spec, reusing stored results where possible.

    Args:
        specs: the cells to ensure results for (duplicates collapse).
        jobs: worker process count; 1 = run serially in this process.
        store: optional on-disk memo; finished cells are appended as they
            complete, so an interrupted campaign resumes on the next call.
        resume: when False, stored results are ignored (and overwritten) —
            every cell is re-simulated.
        progress: optional callback receiving one line per finished cell.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    t0 = time.perf_counter()
    report = CampaignReport()

    pending: list[RunSpec] = []
    seen: set[str] = set()
    for spec in specs:
        key = spec.key()
        if key in seen:
            continue
        seen.add(key)
        cached = store.get(key) if (store is not None and resume) else None
        if cached is not None:
            report.results[key] = cached
            report.cached += 1
            if progress is not None:
                progress(f"[cached] {cached.row()}  seed={cached.seed}")
        else:
            pending.append(spec)

    def record(spec: RunSpec, key: str, result: "ExperimentResult") -> None:
        report.results[key] = result
        report.executed += 1
        if store is not None:
            store.put(spec, result)
        if progress is not None:
            progress(
                f"[{report.executed}/{len(pending)}] {result.row()}"
                f"  seed={result.seed}"
            )

    if jobs == 1 or len(pending) <= 1:
        for spec in pending:
            key, result = _execute(spec)
            record(spec, key, result)
    else:
        by_key = {spec.key(): spec for spec in pending}
        ctx = multiprocessing.get_context(_start_method())
        with ctx.Pool(processes=min(jobs, len(pending))) as pool:
            for key, result in pool.imap_unordered(_execute, pending, chunksize=1):
                record(by_key[key], key, result)

    report.wallclock_s = time.perf_counter() - t0
    return report


def run_campaign(
    campaign: Campaign,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    resume: bool = True,
    progress: ProgressFn | None = None,
) -> CampaignReport:
    """Expand a grid campaign and execute it (see :func:`run_specs`)."""
    return run_specs(
        campaign.specs(), jobs=jobs, store=store, resume=resume, progress=progress
    )
