"""Campaign executor: fan specs out to a worker pool, memoise in a store.

The executor is deliberately dumb about *what* it runs: a spec is a sealed
description, the worker just calls :meth:`RunSpec.run`.  Determinism falls
out of the spec design — every cell carries its own seed and the simulator
is single-threaded per run — so a campaign at ``jobs=8`` produces results
identical to the serial path, merely sooner.  Results are keyed by content
hash, which also makes the executor indifferent to completion order.

``jobs=1`` bypasses ``multiprocessing`` entirely (no pickling, no fork), so
the serial path stays debuggable and usable on platforms without working
process pools.

Live telemetry (``telemetry=...``) swaps the worker entry point for
:func:`repro.obs.telemetry.run_with_heartbeat`: each cell runs in sim-time
slices and streams :class:`~repro.obs.telemetry.RunProgress` heartbeats
back to the parent (over a manager queue in the pooled case), which also
records per-run runtime stats into the store.  Results are bit-identical
either way — slicing ``run_until`` does not change the dispatch order.
"""

from __future__ import annotations

import multiprocessing
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.campaign.spec import Campaign, RunSpec
from repro.campaign.store import ResultStore
from repro.obs.telemetry import DEFAULT_SLICES, TelemetryFn, run_with_heartbeat

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.scenario import ExperimentResult

ProgressFn = Callable[[str], None]


def _execute(spec: RunSpec) -> tuple[str, "ExperimentResult"]:
    """Worker entry point: run one cell (module-level for picklability)."""
    return spec.key(), spec.run()


#: Per-worker heartbeat queue, installed by the pool initializer.
_WORKER_QUEUE = None


def _init_telemetry_worker(queue) -> None:
    """Pool initializer: stash the parent's heartbeat queue in the worker."""
    global _WORKER_QUEUE
    _WORKER_QUEUE = queue


def _execute_with_heartbeat(
    args: tuple[RunSpec, int],
) -> tuple[str, "ExperimentResult", dict]:
    """Telemetry worker entry point: run one cell in slices, stream progress."""
    spec, slices = args
    queue = _WORKER_QUEUE
    emit = queue.put if queue is not None else (lambda progress: None)
    result, runtime = run_with_heartbeat(spec, emit, slices=slices)
    return spec.key(), result, runtime


def _start_method() -> str:
    """Fork on Linux (cheap), spawn everywhere else.

    macOS nominally offers fork too, but forking a process that has touched
    the system frameworks (numpy links Accelerate) can deadlock — the reason
    CPython made spawn the macOS default in 3.8.  Workers are re-imported
    under spawn, which is safe here: the worker entry point is module-level
    and ``repro.__main__`` guards its CLI dispatch.
    """
    return "fork" if sys.platform.startswith("linux") else "spawn"


@dataclass
class CampaignReport:
    """Outcome of one campaign invocation."""

    #: spec key → result, covering every requested cell.
    results: dict[str, "ExperimentResult"] = field(default_factory=dict)
    #: Cells actually simulated this invocation.
    executed: int = 0
    #: Cells served from the store without simulation.
    cached: int = 0
    #: Wall-clock time of the whole invocation [s].
    wallclock_s: float = 0.0

    @property
    def total(self) -> int:
        """Requested cell count (executed + cached)."""
        return self.executed + self.cached

    def in_spec_order(self, specs: Sequence[RunSpec]) -> list["ExperimentResult"]:
        """Results reordered to match ``specs`` (the grid's nesting order)."""
        return [self.results[spec.key()] for spec in specs]


def run_specs(
    specs: Sequence[RunSpec],
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    resume: bool = True,
    progress: ProgressFn | None = None,
    telemetry: TelemetryFn | None = None,
    slices: int = DEFAULT_SLICES,
) -> CampaignReport:
    """Execute every spec, reusing stored results where possible.

    Args:
        specs: the cells to ensure results for (duplicates collapse).
        jobs: worker process count; 1 = run serially in this process.
        store: optional on-disk memo; finished cells are appended as they
            complete, so an interrupted campaign resumes on the next call.
        resume: when False, stored results are ignored (and overwritten) —
            every cell is re-simulated.
        progress: optional callback receiving one line per finished cell.
        telemetry: optional callback receiving
            :class:`~repro.obs.telemetry.RunProgress` heartbeats while
            cells execute (live progress).  Enables per-run runtime stats
            in the store.  Called from a drainer thread when ``jobs > 1``.
        slices: heartbeats per run when telemetry is on.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    t0 = time.perf_counter()
    report = CampaignReport()

    pending: list[RunSpec] = []
    seen: set[str] = set()
    for spec in specs:
        key = spec.key()
        if key in seen:
            continue
        seen.add(key)
        cached = store.get(key) if (store is not None and resume) else None
        if cached is not None:
            report.results[key] = cached
            report.cached += 1
            if progress is not None:
                progress(f"[cached] {cached.row()}  seed={cached.seed}")
        else:
            pending.append(spec)

    def record(
        spec: RunSpec,
        key: str,
        result: "ExperimentResult",
        runtime: dict | None = None,
    ) -> None:
        report.results[key] = result
        report.executed += 1
        if store is not None:
            store.put(spec, result, runtime=runtime)
        if progress is not None:
            progress(
                f"[{report.executed}/{len(pending)}] {result.row()}"
                f"  seed={result.seed}"
            )

    if jobs == 1 or len(pending) <= 1:
        for spec in pending:
            if telemetry is not None:
                result, runtime = run_with_heartbeat(spec, telemetry, slices=slices)
                record(spec, spec.key(), result, runtime)
            else:
                key, result = _execute(spec)
                record(spec, key, result)
    elif telemetry is None:
        by_key = {spec.key(): spec for spec in pending}
        ctx = multiprocessing.get_context(_start_method())
        with ctx.Pool(processes=min(jobs, len(pending))) as pool:
            for key, result in pool.imap_unordered(_execute, pending, chunksize=1):
                record(by_key[key], key, result)
    else:
        by_key = {spec.key(): spec for spec in pending}
        ctx = multiprocessing.get_context(_start_method())
        # Workers stream heartbeats over a manager queue; a drainer thread
        # in the parent forwards them to the callback so the result loop
        # below never blocks on telemetry.
        with ctx.Manager() as manager:
            queue = manager.Queue()

            def drain() -> None:
                while True:
                    item = queue.get()
                    if item is None:
                        return
                    telemetry(item)

            drainer = threading.Thread(target=drain, daemon=True)
            drainer.start()
            try:
                with ctx.Pool(
                    processes=min(jobs, len(pending)),
                    initializer=_init_telemetry_worker,
                    initargs=(queue,),
                ) as pool:
                    work = [(spec, slices) for spec in pending]
                    for key, result, runtime in pool.imap_unordered(
                        _execute_with_heartbeat, work, chunksize=1
                    ):
                        record(by_key[key], key, result, runtime)
            finally:
                queue.put(None)
                drainer.join()

    report.wallclock_s = time.perf_counter() - t0
    return report


def run_campaign(
    campaign: Campaign,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    resume: bool = True,
    progress: ProgressFn | None = None,
    telemetry: TelemetryFn | None = None,
    slices: int = DEFAULT_SLICES,
) -> CampaignReport:
    """Expand a grid campaign and execute it (see :func:`run_specs`)."""
    return run_specs(
        campaign.specs(),
        jobs=jobs,
        store=store,
        resume=resume,
        progress=progress,
        telemetry=telemetry,
        slices=slices,
    )
