"""On-disk result store, content-addressed by :meth:`RunSpec.key`.

Layout of a store directory::

    <root>/
        results.jsonl     # one JSON object per finished cell, append-only
        meta.json         # store format version + spec schema version

Each ``results.jsonl`` line is ``{"key", "spec", "result"}`` (plus an
optional ``"runtime"`` — machine-local execution stats recorded when the
campaign ran with telemetry) where ``spec``
is an audit record (protocol / load / seed plus the full serialized
:class:`~repro.scenariospec.ScenarioSpec` under ``"scenario"`` — re-runnable
via ``ScenarioSpec.from_dict``, though addressing is always by ``key``) and
``result`` the serialised
:class:`~repro.experiments.scenario.ExperimentResult`.  Appending after every
finished run makes interruption safe: a killed campaign keeps every completed
cell, and the next invocation against the same store resumes from there.  A
torn final line (e.g. the process died mid-write) is detected and ignored on
load.  When a key appears more than once the last line wins.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.campaign.spec import SPEC_SCHEMA_VERSION, RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.scenario import ExperimentResult

#: Bump when the on-disk layout itself changes shape.
STORE_FORMAT_VERSION = 1

RESULTS_FILE = "results.jsonl"
META_FILE = "meta.json"


def result_to_dict(result: "ExperimentResult") -> dict:
    """Serialise an :class:`ExperimentResult` to a JSON-able dict."""
    return asdict(result)


def result_from_dict(data: dict) -> "ExperimentResult":
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` output."""
    from repro.energy.report import EnergyReport, NodeEnergy
    from repro.experiments.scenario import ExperimentResult, FlowSummary
    from repro.obs.probes import TimeSeries
    from repro.obs.profile import ProfileReport

    payload = dict(data)
    payload["flows"] = tuple(
        FlowSummary(**flow) for flow in payload.get("flows", ())
    )
    payload["drops"] = {str(k): int(v) for k, v in payload["drops"].items()}
    energy = payload.get("energy")
    if energy is not None:
        payload["energy"] = EnergyReport(
            model=energy["model"],
            nodes=tuple(NodeEnergy(**node) for node in energy["nodes"]),
        )
    else:
        # Pre-energy store lines lack the key entirely.
        payload["energy"] = None
    # Observability payloads: absent on pre-obs lines, null on null-obs runs.
    timeseries = payload.get("timeseries")
    payload["timeseries"] = (
        TimeSeries.from_payload(timeseries) if timeseries is not None else None
    )
    profile = payload.get("profile")
    payload["profile"] = (
        ProfileReport.from_payload(profile) if profile is not None else None
    )
    return ExperimentResult(**payload)


class ResultStore:
    """Append-only JSONL store of finished campaign cells.

    The in-memory index mirrors the file, so lookups never touch disk after
    construction; ``put`` appends one line and fsyncs so a crash loses at
    most the cell being written.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / RESULTS_FILE
        self._index: dict[str, "ExperimentResult"] = {}
        self._specs: dict[str, dict] = {}
        self._runtimes: dict[str, dict] = {}
        self._write_meta()
        self._load()

    # ------------------------------------------------------------------ disk

    def _write_meta(self) -> None:
        meta_path = self.root / META_FILE
        meta = {
            "store_format": STORE_FORMAT_VERSION,
            "spec_schema": SPEC_SCHEMA_VERSION,
        }
        if meta_path.exists():
            try:
                if json.loads(meta_path.read_text()) == meta:
                    return
            except (OSError, json.JSONDecodeError):
                pass
            # Stale or unreadable meta (e.g. a store created under an older
            # spec schema, whose keys no longer match anyway): refresh so the
            # store's self-description matches what gets appended from now on.
        meta_path.write_text(json.dumps(meta, indent=2) + "\n")

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    result = result_from_dict(record["result"])
                except (json.JSONDecodeError, KeyError, TypeError):
                    # Torn tail from an interrupted write; everything before
                    # it is intact, so skip rather than fail the campaign.
                    continue
                self._index[record["key"]] = result
                self._specs[record["key"]] = record.get("spec", {})
                runtime = record.get("runtime")
                if runtime is not None:
                    self._runtimes[record["key"]] = runtime

    # ----------------------------------------------------------------- access

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def get(self, key: str) -> "ExperimentResult | None":
        """The stored result for ``key``, or None."""
        return self._index.get(key)

    def keys(self) -> Iterator[str]:
        """All stored cell keys."""
        return iter(self._index)

    def results(self) -> list["ExperimentResult"]:
        """Every stored result (load order; duplicates resolved last-wins)."""
        return list(self._index.values())

    def spec_summary(self, key: str) -> dict:
        """The audit summary recorded with ``key`` (may be empty)."""
        return self._specs.get(key, {})

    def runtime_stats(self, key: str) -> dict:
        """Per-run runtime stats (wall time, events/sec, peak RSS) for
        ``key`` — empty for cells recorded without telemetry."""
        return self._runtimes.get(key, {})

    def put(
        self,
        spec: RunSpec,
        result: "ExperimentResult",
        *,
        runtime: dict | None = None,
    ) -> str:
        """Record one finished cell; returns its key.

        ``runtime`` is an optional machine-local stats dict (see
        :func:`repro.obs.telemetry.runtime_stats`) persisted alongside the
        cell but excluded from the result — it describes *this* execution,
        not the scenario.
        """
        key = spec.key()
        record = {
            "key": key,
            "spec": {
                "protocol": spec.protocol,
                "load_kbps": spec.load_kbps,
                "seed": spec.seed,
                "node_count": spec.cfg.node_count,
                "duration_s": spec.cfg.duration_s,
                # The full serialized scenario (the hash pre-image), so a
                # store entry is auditable and re-runnable by *what* ran:
                # feed it back through ScenarioSpec.from_dict.
                "scenario": spec.scenario.to_dict(),
            },
            "result": result_to_dict(result),
        }
        if runtime is not None:
            record["runtime"] = runtime
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._index[key] = result
        self._specs[key] = record["spec"]
        if runtime is not None:
            self._runtimes[key] = runtime
        return key
