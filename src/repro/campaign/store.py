"""On-disk result store, content-addressed by :meth:`RunSpec.key`.

Layout of a store directory::

    <root>/
        results.jsonl     # one JSON object per finished cell, append-only
        meta.json         # store format version + spec schema version

Each ``results.jsonl`` line is ``{"key", "spec", "result"}`` (plus an
optional ``"runtime"`` — machine-local execution stats recorded when the
campaign ran with telemetry) where ``spec``
is an audit record (protocol / load / seed plus the full serialized
:class:`~repro.scenariospec.ScenarioSpec` under ``"scenario"`` — re-runnable
via ``ScenarioSpec.from_dict``, though addressing is always by ``key``) and
``result`` the serialised
:class:`~repro.experiments.scenario.ExperimentResult`.  A run that failed
permanently (worker crash after every retry) is recorded as a ``{"key",
"spec", "error"}`` line instead — the error is inspectable via
:meth:`ResultStore.error` but the key stays *absent* from the result index,
so a resumed campaign re-runs it.  Appending after every
finished run makes interruption safe: a killed campaign keeps every completed
cell, and the next invocation against the same store resumes from there.

Writes are durable before they are visible: ``_append`` flushes and fsyncs
the line (and, on file creation, the containing directory) *before* the
in-memory index is updated, so a crash mid-put leaves either a complete
line on disk or nothing — never an indexed-but-unwritten cell.

The store also supports **concurrent readers**: :meth:`ResultStore.refresh`
ingests lines appended by other processes since the last read (tracked by
per-file byte offsets; a file that shrank or changed inode — compaction or
quarantine by another process — triggers a full reload).  A trailing line
without a newline during ``refresh`` is treated as an in-flight append by
another writer and held back until it completes.

Unparseable lines (a torn tail from an interrupted write, or bytes mangled
by a filesystem fault) are **quarantined** on load: they are moved to a
``results.jsonl.corrupt`` sidecar, the main file is atomically rewritten
without them, and a warning reports the counts — nothing is silently
dropped, and the main file is clean again for the next append.  Lines
already present in the sidecar are not appended twice, and a sidecar that
merely persists across loads (without gaining new lines) does not re-warn.
When a key appears more than once the last line wins.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.campaign.spec import SPEC_SCHEMA_VERSION, RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.scenario import ExperimentResult

#: Bump when the on-disk layout itself changes shape.
STORE_FORMAT_VERSION = 1

RESULTS_FILE = "results.jsonl"
META_FILE = "meta.json"
#: Sidecar receiving lines the loader could not parse (never deleted).
CORRUPT_SUFFIX = ".corrupt"


def result_to_dict(result: "ExperimentResult") -> dict:
    """Serialise an :class:`ExperimentResult` to a JSON-able dict."""
    return asdict(result)


def result_from_dict(data: dict) -> "ExperimentResult":
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` output."""
    from repro.energy.report import EnergyReport, NodeEnergy
    from repro.experiments.scenario import ExperimentResult, FlowSummary
    from repro.obs.probes import TimeSeries
    from repro.obs.profile import ProfileReport

    payload = dict(data)
    payload["flows"] = tuple(
        FlowSummary(**flow) for flow in payload.get("flows", ())
    )
    payload["drops"] = {str(k): int(v) for k, v in payload["drops"].items()}
    energy = payload.get("energy")
    if energy is not None:
        payload["energy"] = EnergyReport(
            model=energy["model"],
            nodes=tuple(NodeEnergy(**node) for node in energy["nodes"]),
        )
    else:
        # Pre-energy store lines lack the key entirely.
        payload["energy"] = None
    # Observability payloads: absent on pre-obs lines, null on null-obs runs.
    timeseries = payload.get("timeseries")
    payload["timeseries"] = (
        TimeSeries.from_payload(timeseries) if timeseries is not None else None
    )
    profile = payload.get("profile")
    payload["profile"] = (
        ProfileReport.from_payload(profile) if profile is not None else None
    )
    resilience = payload.get("resilience")
    if resilience is not None:
        from repro.faults.resilience import ResilienceReport

        payload["resilience"] = ResilienceReport.from_payload(resilience)
    else:
        # Pre-faults store lines lack the key; null-faults runs store null.
        payload["resilience"] = None
    return ExperimentResult(**payload)


class ResultStore:
    """Append-only JSONL store of finished campaign cells.

    The in-memory index mirrors the file; ``put`` appends one durable line
    *then* updates the index, so a crash loses at most the cell being
    written and never leaves the index ahead of the disk.  ``refresh``
    ingests lines other processes appended since the last read.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / RESULTS_FILE
        self._index: dict[str, "ExperimentResult"] = {}
        self._specs: dict[str, dict] = {}
        self._runtimes: dict[str, dict] = {}
        self._errors: dict[str, dict] = {}
        #: path → (inode, byte offset) of the last ingested position.
        self._offsets: dict[Path, tuple[int, int]] = {}
        self._write_meta()
        self._load()

    # ------------------------------------------------------------------ disk

    def _meta(self) -> dict:
        """The store's self-description, persisted as ``meta.json``."""
        return {
            "store_format": STORE_FORMAT_VERSION,
            "spec_schema": SPEC_SCHEMA_VERSION,
        }

    def _write_meta(self) -> None:
        meta_path = self.root / META_FILE
        meta = self._meta()
        if meta_path.exists():
            try:
                if json.loads(meta_path.read_text()) == meta:
                    return
            except (OSError, json.JSONDecodeError):
                pass
            # Stale or unreadable meta (e.g. a store created under an older
            # spec schema, whose keys no longer match anyway): refresh so the
            # store's self-description matches what gets appended from now on.
        meta_path.write_text(json.dumps(meta, indent=2) + "\n")

    def _result_files(self) -> list[Path]:
        """Every JSONL file holding result lines (one for the flat layout)."""
        return [self.path]

    def _file_for(self, key: str) -> Path:
        """The JSONL file new lines for ``key`` are appended to."""
        return self.path

    def _load(self) -> None:
        for path in self._result_files():
            self._read_file(path, tail_is_torn=True)

    def refresh(self) -> None:
        """Ingest lines appended by other processes since the last read.

        Cheap when nothing changed (one ``stat`` per file).  A file that
        shrank or changed inode — rewritten by another process's compaction
        or quarantine — is fully reloaded, which is safe because ingesting
        a file's lines in order is idempotent.  A trailing line with no
        newline is an append in flight: it is held back, not quarantined.
        """
        for path in self._result_files():
            self._read_file(path, tail_is_torn=False)

    def refresh_key(self, key: str) -> None:
        """Like :meth:`refresh`, but only for the file holding ``key``.

        The cheap single-key staleness check fleet workers use on the
        cache-hit path — one ``stat`` for a sharded store instead of one
        per shard.
        """
        self._read_file(self._file_for(key), tail_is_torn=False)

    def _read_file(self, path: Path, *, tail_is_torn: bool) -> None:
        """Ingest ``path`` from its last-read offset.

        ``tail_is_torn`` selects how a trailing newline-less fragment is
        treated: on initial load it is a torn write from a crash (parse it,
        quarantine on failure); on refresh it may be another writer's
        in-flight append (hold it back until the newline lands).
        """
        if not path.exists():
            self._offsets.pop(path, None)
            return
        st = path.stat()
        ino, offset = self._offsets.get(path, (None, 0))
        if ino is not None and (st.st_ino != ino or st.st_size < offset):
            offset = 0  # rewritten behind our back: full (idempotent) reload
        if st.st_size == offset and st.st_ino == ino:
            return
        with path.open("rb") as fh:
            fh.seek(offset)
            data = fh.read()
        consumed = len(data)
        text = data.decode("utf-8", errors="replace")
        if text and not text.endswith("\n") and not tail_is_torn:
            cut = text.rfind("\n") + 1
            held_back = text[cut:]
            consumed -= len(held_back.encode("utf-8", errors="replace"))
            text = text[:cut]
        bad: list[str] = []
        for line in text.splitlines():
            line = line.strip()
            if line and not self._ingest_line(line):
                bad.append(line)
        self._offsets[path] = (st.st_ino, offset + consumed)
        if bad:
            self._quarantine(path)

    def _ingest_line(self, line: str) -> bool:
        """Index one JSONL line; False when it does not parse."""
        try:
            record = json.loads(line)
            key = record["key"]
            if "error" in record:
                # A permanently failed run: remember why, but keep
                # the key out of the result index so resume retries.
                # A success for the same (deterministic) key always
                # outranks an error, whichever was written later.
                if key not in self._index:
                    self._errors[key] = record["error"]
                self._specs.setdefault(key, record.get("spec", {}))
                return True
            result = result_from_dict(record["result"])
        except (json.JSONDecodeError, KeyError, TypeError):
            return False
        self._index[key] = result
        self._errors.pop(key, None)
        self._specs[key] = record.get("spec", {})
        runtime = record.get("runtime")
        if runtime is not None:
            self._runtimes[key] = runtime
        return True

    def _quarantine(self, path: Path) -> None:
        """Move unparseable lines to the sidecar; rewrite the file clean.

        The rewrite is atomic (tmp + fsync + rename) so a crash mid-cleanup
        leaves either the old file or the clean one, never a hybrid.  Lines
        the sidecar already holds are not appended twice, and no warning is
        emitted unless the sidecar actually grew — so reloading a store
        whose corruption was already quarantined stays silent.
        """
        good: list[str] = []
        bad: list[str] = []
        with path.open("r", encoding="utf-8") as fh:
            for raw in fh:
                line = raw.strip()
                if not line:
                    continue
                (good if self._parseable(line) else bad).append(line)
        sidecar = path.with_name(path.name + CORRUPT_SUFFIX)
        already: set[str] = set()
        if sidecar.exists():
            already = {
                line.strip()
                for line in sidecar.read_text(encoding="utf-8").splitlines()
                if line.strip()
            }
        fresh = [line for line in bad if line not in already]
        if fresh:
            with sidecar.open("a", encoding="utf-8") as fh:
                for line in fresh:
                    fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for line in good:
                fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(path)
        self._dirsync(path.parent)
        self._offsets[path] = (path.stat().st_ino, path.stat().st_size)
        if fresh:
            warnings.warn(
                f"result store {path}: quarantined {len(fresh)} corrupt "
                f"line(s) to {sidecar.name} (kept {len(good)} good line(s), "
                f"sidecar now holds {len(already) + len(fresh)})",
                RuntimeWarning,
                stacklevel=4,
            )

    @staticmethod
    def _parseable(line: str) -> bool:
        """True when ``line`` is a loadable store record."""
        try:
            record = json.loads(line)
            record["key"]
            if "error" not in record:
                result_from_dict(record["result"])
        except (json.JSONDecodeError, KeyError, TypeError):
            return False
        return True

    @staticmethod
    def _dirsync(directory: Path) -> None:
        """fsync a directory so a just-created/renamed entry is durable."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fsync on dirs unsupported
            pass
        finally:
            os.close(fd)

    # ----------------------------------------------------------------- access

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def get(self, key: str) -> "ExperimentResult | None":
        """The stored result for ``key``, or None."""
        return self._index.get(key)

    def keys(self) -> Iterator[str]:
        """All stored cell keys."""
        return iter(self._index)

    def results(self) -> list["ExperimentResult"]:
        """Every stored result (load order; duplicates resolved last-wins)."""
        return list(self._index.values())

    def spec_summary(self, key: str) -> dict:
        """The audit summary recorded with ``key`` (may be empty)."""
        return self._specs.get(key, {})

    def runtime_stats(self, key: str) -> dict:
        """Per-run runtime stats (wall time, events/sec, peak RSS) for
        ``key`` — empty for cells recorded without telemetry."""
        return self._runtimes.get(key, {})

    def error(self, key: str) -> dict | None:
        """The recorded permanent failure for ``key``, or None.

        Errored keys are *not* in the result index (``get`` returns None,
        ``in`` is False), so a resumed campaign re-runs them; the error
        record survives for post-mortems until a success overwrites it.
        """
        return self._errors.get(key)

    def errors(self) -> dict[str, dict]:
        """Every recorded permanent failure, keyed by cell key."""
        return dict(self._errors)

    def _append(self, record: dict) -> None:
        """Durably append one JSONL record to its home file."""
        self._append_to(self._file_for(record["key"]), record)

    def _append_to(self, path: Path, record: dict) -> None:
        """Durably append one JSONL record (write, flush, fsync).

        The containing directory is fsynced when the file is created, so
        the new directory entry survives a crash too.  Callers update the
        in-memory index only *after* this returns — disk first, index
        second — which is what makes a mid-put crash recoverable.
        """
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        created = not path.exists()
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if created:
            self._dirsync(path.parent)

    @staticmethod
    def _spec_summary(spec: RunSpec) -> dict:
        return {
            "protocol": spec.protocol,
            "load_kbps": spec.load_kbps,
            "seed": spec.seed,
            "node_count": spec.cfg.node_count,
            "duration_s": spec.cfg.duration_s,
            # The full serialized scenario (the hash pre-image), so a
            # store entry is auditable and re-runnable by *what* ran:
            # feed it back through ScenarioSpec.from_dict.
            "scenario": spec.scenario.to_dict(),
        }

    def put(
        self,
        spec: RunSpec,
        result: "ExperimentResult",
        *,
        runtime: dict | None = None,
    ) -> str:
        """Record one finished cell; returns its key.

        ``runtime`` is an optional machine-local stats dict (see
        :func:`repro.obs.telemetry.runtime_stats`) persisted alongside the
        cell but excluded from the result — it describes *this* execution,
        not the scenario.
        """
        key = spec.key()
        record = {
            "key": key,
            "spec": self._spec_summary(spec),
            "result": result_to_dict(result),
        }
        if runtime is not None:
            record["runtime"] = runtime
        self._append(record)
        self._index[key] = result
        self._errors.pop(key, None)
        self._specs[key] = record["spec"]
        if runtime is not None:
            self._runtimes[key] = runtime
        return key

    def put_error(self, spec: RunSpec, error: dict) -> str:
        """Record one permanently failed cell; returns its key.

        ``error`` is a structured failure description (see
        :func:`repro.campaign.runner.error_record` — kind, message,
        traceback, attempts).  The key stays absent from the result index
        so a later ``--resume`` re-runs the cell.
        """
        key = spec.key()
        self._append(
            {"key": key, "spec": self._spec_summary(spec), "error": error}
        )
        self._errors[key] = error
        self._specs.setdefault(key, self._spec_summary(spec))
        return key
