"""Run specifications: frozen, content-addressed descriptions of one run.

A :class:`RunSpec` wraps the declarative
:class:`~repro.scenariospec.ScenarioSpec` — the single input to
:class:`~repro.builder.NetworkBuilder` — and is what the campaign runner
executes and the result store addresses.  Because the spec is an immutable
value type it can be

* hashed into a stable content key (:meth:`RunSpec.key`) for the result
  store — the key is computed over the *serialized scenario*, so cached
  results stay addressable by **what** ran, not by the Python call-site
  that ran it (``repro quick --scenario spec.json`` and a campaign cell
  describing the same scenario share a key),
* pickled across process boundaries for the worker pool, and
* re-expanded into an identical simulation anywhere, any time.

The historical constructor ``RunSpec(cfg, protocol, positions=..., ...)``
still works: legacy keywords are translated through
:meth:`ScenarioSpec.from_legacy` exactly like the ``build_network`` shim.

:class:`Campaign` is the grid counterpart: protocols × loads × seeds over a
base config, expanded in the same nesting order the paper's serial sweep
used (load outermost, then protocol, then seed) so progress output and
result assembly stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Sequence

from repro.config import ScenarioConfig
from repro.registry import registry
from repro.scenariospec import SCENARIO_SCHEMA_VERSION, ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.scenario import BuiltNetwork, ExperimentResult

#: The schema governing content keys.  RunSpec.key() delegates to
#: ScenarioSpec.key(), so this is definitionally the scenario schema —
#: aliased (not hand-copied) to keep the store's meta.json self-description
#: from drifting when the scenario serialisation is bumped.
SPEC_SCHEMA_VERSION = SCENARIO_SCHEMA_VERSION


@dataclass(frozen=True, init=False)
class RunSpec:
    """One simulation cell: a content-addressable scenario description."""

    scenario: ScenarioSpec

    def __init__(
        self,
        cfg: ScenarioConfig | None = None,
        protocol: str | None = None,
        *,
        scenario: ScenarioSpec | None = None,
        positions: Sequence[tuple[float, float]] | None = None,
        mobile: bool = True,
        routing: str = "aodv",
        flow_pairs: Sequence[tuple[int, int]] | None = None,
        propagation: Any = None,
    ) -> None:
        if scenario is not None:
            if cfg is not None or protocol is not None:
                raise ValueError(
                    "pass either scenario= or the legacy (cfg, protocol, ...) "
                    "arguments, not both"
                )
        else:
            if cfg is None or protocol is None:
                raise ValueError(
                    "RunSpec needs scenario= or the legacy (cfg, protocol) pair"
                )
            scenario = ScenarioSpec.from_legacy(
                cfg,
                protocol,
                positions=positions,
                mobile=mobile,
                routing=routing,
                flow_pairs=flow_pairs,
                propagation=propagation,
            )
        object.__setattr__(self, "scenario", scenario)

    # -------------------------------------------------------------- accessors

    @property
    def cfg(self) -> ScenarioConfig:
        """The cell's numeric configuration."""
        return self.scenario.cfg

    @property
    def protocol(self) -> str:
        """The cell's MAC component name."""
        return self.scenario.mac.name

    @property
    def seed(self) -> int:
        """The cell's RNG seed (carried by the config)."""
        return self.scenario.cfg.seed

    @property
    def load_kbps(self) -> float:
        """The cell's aggregate offered load [kbps]."""
        return self.scenario.cfg.traffic.offered_load_bps / 1000.0

    # --------------------------------------------------------------- identity

    def describe(self) -> dict:
        """Canonical JSON-able description (the hash pre-image) — the
        serialized :class:`ScenarioSpec`."""
        return self.scenario.canonical()

    def key(self) -> str:
        """Stable content hash identifying this cell in a result store."""
        return self.scenario.key()

    def label(self) -> str:
        """Short human-readable cell name for progress lines."""
        return self.scenario.label()

    # -------------------------------------------------------------- execution

    def build(self) -> "BuiltNetwork":
        """Wire the network this spec describes."""
        return self.scenario.build()

    def run(self) -> "ExperimentResult":
        """Build and execute the cell, returning its summary."""
        return self.scenario.run()


@dataclass(frozen=True)
class Campaign:
    """A protocol × load × seed grid over one base scenario."""

    base: ScenarioConfig
    protocols: tuple[str, ...]
    loads_kbps: tuple[float, ...]
    seeds: tuple[int, ...]

    def __post_init__(self) -> None:
        mac_registry = registry("mac")
        for proto in self.protocols:
            if proto not in mac_registry:
                raise ValueError(
                    f"unknown protocol {proto!r}; "
                    f"choose from {', '.join(mac_registry.names())}"
                )
        if not (self.protocols and self.loads_kbps and self.seeds):
            raise ValueError("protocols, loads_kbps and seeds must be non-empty")

    @classmethod
    def build(
        cls,
        base: ScenarioConfig,
        protocols: Sequence[str],
        loads_kbps: Sequence[float],
        seeds: Sequence[int],
    ) -> "Campaign":
        """Normalising constructor (accepts any sequences)."""
        return cls(
            base=base,
            protocols=tuple(protocols),
            loads_kbps=tuple(float(x) for x in loads_kbps),
            seeds=tuple(int(s) for s in seeds),
        )

    @property
    def size(self) -> int:
        """Number of cells in the grid."""
        return len(self.protocols) * len(self.loads_kbps) * len(self.seeds)

    def specs(self) -> list[RunSpec]:
        """Expand the grid (load outermost, then protocol, then seed)."""
        out: list[RunSpec] = []
        for load in self.loads_kbps:
            for proto in self.protocols:
                for seed in self.seeds:
                    cfg = replace(
                        self.base,
                        seed=seed,
                        traffic=replace(
                            self.base.traffic, offered_load_bps=load * 1000.0
                        ),
                    )
                    out.append(
                        RunSpec(scenario=ScenarioSpec(cfg=cfg, mac=proto))
                    )
        return out
