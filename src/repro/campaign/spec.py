"""Run specifications: frozen, content-addressed descriptions of one run.

A :class:`RunSpec` captures everything :func:`~repro.experiments.scenario.build_network`
needs — the :class:`~repro.config.ScenarioConfig` (which embeds the seed and
offered load) plus the builder overrides the controlled experiments use
(explicit positions, static routing, named flow pairs, alternative
propagation).  Because every field is an immutable value type, a spec can be

* hashed into a stable content key (:meth:`RunSpec.key`) for the result store,
* pickled across process boundaries for the worker pool, and
* re-expanded into an identical simulation anywhere, any time.

:class:`Campaign` is the grid counterpart: protocols × loads × seeds over a
base config, expanded in the same nesting order the paper's serial sweep
used (load outermost, then protocol, then seed) so progress output and
result assembly stay comparable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, is_dataclass, replace
from typing import TYPE_CHECKING, Sequence

from repro.config import ScenarioConfig
from repro.phy.propagation import PropagationModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.scenario import BuiltNetwork, ExperimentResult

#: Bump whenever the spec serialisation or the simulation semantics change
#: incompatibly — old store entries then stop matching and are recomputed.
SPEC_SCHEMA_VERSION = 1


def _canonical(obj):
    """Recursively convert a spec field into canonical JSON-able form."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__kind__": type(obj).__name__,
            **{k: _canonical(v) for k, v in asdict(obj).items()},
        }
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell: config + protocol + builder overrides."""

    cfg: ScenarioConfig
    protocol: str
    #: Explicit initial positions (controlled geometries); None = uniform.
    positions: tuple[tuple[float, float], ...] | None = None
    #: Random waypoint motion when True, static nodes when False.
    mobile: bool = True
    #: "aodv" (paper) or "static" (requires ``mobile=False``).
    routing: str = "aodv"
    #: Explicit (src, dst) flows; None = random distinct pairs.
    flow_pairs: tuple[tuple[int, int], ...] | None = None
    #: Propagation model override (a frozen dataclass from
    #: :mod:`repro.phy.propagation`); None = the paper's two-ray from ``cfg``.
    propagation: PropagationModel | None = None

    @property
    def seed(self) -> int:
        """The cell's RNG seed (carried by the config)."""
        return self.cfg.seed

    @property
    def load_kbps(self) -> float:
        """The cell's aggregate offered load [kbps]."""
        return self.cfg.traffic.offered_load_bps / 1000.0

    def describe(self) -> dict:
        """Canonical JSON-able description (the hash pre-image)."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "cfg": _canonical(self.cfg),
            "protocol": self.protocol,
            "positions": _canonical(self.positions),
            "mobile": self.mobile,
            "routing": self.routing,
            "flow_pairs": _canonical(self.flow_pairs),
            "propagation": _canonical(self.propagation),
        }

    def key(self) -> str:
        """Stable content hash identifying this cell in a result store."""
        blob = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        ).encode()
        return hashlib.sha256(blob).hexdigest()[:32]

    def label(self) -> str:
        """Short human-readable cell name for progress lines."""
        return (
            f"{self.protocol}@{self.load_kbps:g}kbps/seed{self.seed}"
        )

    def build(self) -> "BuiltNetwork":
        """Wire the network this spec describes."""
        from repro.experiments.scenario import build_network

        return build_network(
            self.cfg,
            self.protocol,
            positions=list(self.positions) if self.positions is not None else None,
            mobile=self.mobile,
            routing=self.routing,
            flow_pairs=(
                list(self.flow_pairs) if self.flow_pairs is not None else None
            ),
            propagation=self.propagation,
        )

    def run(self) -> "ExperimentResult":
        """Build and execute the cell, returning its summary."""
        return self.build().run()


@dataclass(frozen=True)
class Campaign:
    """A protocol × load × seed grid over one base scenario."""

    base: ScenarioConfig
    protocols: tuple[str, ...]
    loads_kbps: tuple[float, ...]
    seeds: tuple[int, ...]

    def __post_init__(self) -> None:
        from repro.experiments.scenario import MAC_REGISTRY

        for proto in self.protocols:
            if proto not in MAC_REGISTRY:
                raise ValueError(
                    f"unknown protocol {proto!r}; choose from {sorted(MAC_REGISTRY)}"
                )
        if not (self.protocols and self.loads_kbps and self.seeds):
            raise ValueError("protocols, loads_kbps and seeds must be non-empty")

    @classmethod
    def build(
        cls,
        base: ScenarioConfig,
        protocols: Sequence[str],
        loads_kbps: Sequence[float],
        seeds: Sequence[int],
    ) -> "Campaign":
        """Normalising constructor (accepts any sequences)."""
        return cls(
            base=base,
            protocols=tuple(protocols),
            loads_kbps=tuple(float(x) for x in loads_kbps),
            seeds=tuple(int(s) for s in seeds),
        )

    @property
    def size(self) -> int:
        """Number of cells in the grid."""
        return len(self.protocols) * len(self.loads_kbps) * len(self.seeds)

    def specs(self) -> list[RunSpec]:
        """Expand the grid (load outermost, then protocol, then seed)."""
        out: list[RunSpec] = []
        for load in self.loads_kbps:
            for proto in self.protocols:
                for seed in self.seeds:
                    cfg = replace(
                        self.base,
                        seed=seed,
                        traffic=replace(
                            self.base.traffic, offered_load_bps=load * 1000.0
                        ),
                    )
                    out.append(RunSpec(cfg=cfg, protocol=proto))
        return out
