"""Campaign orchestration: content-addressed runs over protocol × load × seed grids.

A *campaign* is a declarative grid of simulation runs.  Each cell is a
:class:`~repro.campaign.spec.RunSpec` — a frozen, hashable description of one
simulation (scenario config + protocol + optional scenario overrides) whose
stable content hash keys a :class:`~repro.campaign.store.ResultStore`.  The
:mod:`~repro.campaign.runner` fans specs out to a ``multiprocessing`` worker
pool and memoises every finished cell in the store, so interrupted campaigns
resume where they stopped and repeated invocations are pure cache hits.

This is the architectural seam for scaling the reproduction: every future
backend (remote executors, sharded stores) plugs in behind the same
``specs → runner → store`` contract.  :mod:`repro.fleet` is the first such
backend — lease-based work-stealing workers over a sharded store, reached
through ``run_specs(fleet=True)`` or the ``repro fleet`` CLI.
"""

from repro.campaign.runner import CampaignReport, run_campaign, run_specs
from repro.campaign.spec import SPEC_SCHEMA_VERSION, Campaign, RunSpec
from repro.campaign.store import ResultStore, result_from_dict, result_to_dict

__all__ = [
    "Campaign",
    "CampaignReport",
    "ResultStore",
    "RunSpec",
    "SPEC_SCHEMA_VERSION",
    "result_from_dict",
    "result_to_dict",
    "run_campaign",
    "run_specs",
]
